"""Deterministic, seedable fault injection for the evaluation pipeline.

The recovery paths of a fault-tolerant tuner are only trustworthy if
they can be *exercised on demand*: this harness wraps the evaluation
engine (see ``PlanEvaluator(fault_injector=...)``) and injects
configurable exceptions, latency spikes and hangs into candidate
evaluations.

Injection decisions are **content-addressed, not sequence-addressed**:
whether a candidate faults is a pure function of ``(seed, candidate
fingerprint)``, so the same candidates fault regardless of evaluation
order, worker count, or memoization — chaos runs are reproducible even
under parallel batch evaluation.

Fault kinds:

* ``error``   — raise :class:`~repro.resilience.errors.InjectedFault`;
* ``latency`` — sleep ``latency_s`` before the evaluation proceeds;
* ``hang``    — sleep ``hang_s`` (pair with the evaluator's
  per-evaluation timeout to exercise the timeout path).

``transient_failures=N`` makes injected errors clear after ``N``
failures per candidate — the shape of a real transient fault, and what
lets retry/backoff recover to *bit-identical* tuning results.  By
default, injection is disarmed during degraded-mode re-evaluation
(``spare_degraded``), modelling faults that live in the fast path the
degraded mode bypasses.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Callable, Dict, Optional

from .errors import InjectedFault, UsageError

__all__ = ["FAULT_KINDS", "FaultInjector"]

FAULT_KINDS = ("error", "latency", "hang")


class FaultInjector:
    """Injects faults into evaluations, deterministically by seed.

    Parameters
    ----------
    rate:
        Fraction of candidates faulted, decided per candidate key.
    seed:
        Injection seed; same seed + same keys = same faults.
    kind:
        ``error`` | ``latency`` | ``hang``.
    latency_s / hang_s:
        Sleep durations for the two delay kinds.
    transient_failures:
        When > 0, an ``error`` fault clears after this many failures of
        the same candidate (retries then succeed).  0 = persistent.
    after:
        Skip injection for the first ``after`` invocations — lets a test
        let a run proceed, then "crash" it mid-search.
    max_faults:
        Stop injecting after this many faults (None = unlimited).
    match:
        Optional predicate on the candidate key restricting injection.
    spare_degraded:
        Disarm injection for degraded-mode attempts (default True).
    """

    def __init__(
        self,
        rate: float = 0.0,
        seed: int = 0,
        kind: str = "error",
        latency_s: float = 0.0,
        hang_s: float = 30.0,
        transient_failures: int = 0,
        after: int = 0,
        max_faults: Optional[int] = None,
        match: Optional[Callable[[str], bool]] = None,
        spare_degraded: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if kind not in FAULT_KINDS:
            raise UsageError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if not (0.0 <= rate <= 1.0):
            raise UsageError("fault rate must be in [0, 1]")
        if transient_failures < 0:
            raise UsageError("transient_failures must be >= 0")
        self.rate = rate
        self.seed = seed
        self.kind = kind
        self.latency_s = latency_s
        self.hang_s = hang_s
        self.transient_failures = transient_failures
        self.after = after
        self.max_faults = max_faults
        self.match = match
        self.spare_degraded = spare_degraded
        self._sleep = sleep
        self._lock = threading.Lock()
        self._failures_by_key: Dict[str, int] = {}
        #: observable tallies, for assertions and the obs counters
        self.invocations = 0
        self.injected = 0
        self.recovered = 0  # transient faults that have cleared

    # -- decision ---------------------------------------------------------------

    def selects(self, key: str) -> bool:
        """Whether this candidate key is in the faulted set (pure)."""
        if self.rate <= 0.0:
            return False
        if self.match is not None and not self.match(key):
            return False
        digest = hashlib.sha256(f"{self.seed}:{key}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < self.rate

    # -- injection --------------------------------------------------------------

    def invoke(self, key: str, degraded: bool = False) -> None:
        """Called by the engine once per evaluation attempt.

        Either returns (possibly after an injected delay) or raises
        :class:`InjectedFault`.
        """
        with self._lock:
            self.invocations += 1
            invocation = self.invocations
        if invocation <= self.after:
            return
        if degraded and self.spare_degraded:
            return
        if not self.selects(key):
            return
        with self._lock:
            if self.max_faults is not None and self.injected >= self.max_faults:
                return
            if self.transient_failures:
                failures = self._failures_by_key.get(key, 0)
                if failures >= self.transient_failures:
                    self.recovered += 1
                    return
                self._failures_by_key[key] = failures + 1
            self.injected += 1
            injected = self.injected
        self._count("faults.injected")
        if self.kind == "latency":
            self._sleep(self.latency_s)
            return
        if self.kind == "hang":
            self._sleep(self.hang_s)
            return
        raise InjectedFault(
            f"injected fault #{injected}",
            fault_seed=self.seed,
            fault_kind=self.kind,
            candidate=key,
        )

    @staticmethod
    def _count(name: str) -> None:
        from ..obs import counter, metrics_enabled

        if metrics_enabled():
            counter(name).add(1)
