"""Retry, backoff and failure-budget policies for candidate evaluation.

The evaluation engine treats three classes of outcomes differently:

* *infeasible* — the candidate cannot run at all; deterministic, never
  retried, never a failure;
* *transient failures* — an evaluation raised unexpectedly (or timed
  out); retried up to :attr:`RetryPolicy.max_retries` times with
  exponential backoff;
* *persistent failures* — still failing after the retries; resolved by
  the evaluator's ``on_error`` policy and charged against the
  :class:`FailureBudget`.

All delays are deterministic (no jitter): chaos tests must reproduce
bit-for-bit, and the analytical evaluator has no thundering-herd
problem for jitter to solve.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from .errors import FailureBudgetExceeded, UsageError

__all__ = [
    "ON_ERROR_POLICIES",
    "FailureBudget",
    "RetryPolicy",
]

#: Batch-evaluation error policies:
#:
#: * ``fail-fast`` — the first persistent failure aborts the batch
#:   (wrapped as :class:`~repro.resilience.errors.EvaluationError` with
#:   the candidate attached);
#: * ``skip``      — the failing candidate is quarantined (reported as
#:   infeasible) and the search continues;
#: * ``degrade``   — one more attempt runs on the degraded path (memo
#:   cache bypassed, occupancy prescreen off, fault injection disarmed)
#:   before the candidate is quarantined.
ON_ERROR_POLICIES = ("fail-fast", "skip", "degrade")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    ``delay(n)`` for retry *n* (0-based) is
    ``min(base_delay_s * factor**n, max_delay_s)``; total added latency
    is therefore bounded by ``sum(delay(n) for n in range(max_retries))``
    per candidate, which :meth:`total_delay` exposes so callers (and the
    property-based tests) can budget worst-case batch latency.
    """

    max_retries: int = 2
    base_delay_s: float = 0.01
    factor: float = 2.0
    max_delay_s: float = 1.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise UsageError("max_retries must be >= 0")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise UsageError("backoff delays must be >= 0")
        if self.factor < 1.0:
            raise UsageError("backoff factor must be >= 1")

    def delay(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based), in seconds."""
        return min(
            self.base_delay_s * (self.factor ** retry_index), self.max_delay_s
        )

    def delays(self) -> List[float]:
        """Every backoff this policy can sleep, in order."""
        return [self.delay(n) for n in range(self.max_retries)]

    def total_delay(self) -> float:
        """Worst-case backoff added per candidate."""
        return sum(self.delays())

    def sleep(self, retry_index: int, sleep: Callable[[float], None] = time.sleep):
        """Back off before retry ``retry_index`` (injectable for tests)."""
        delay = self.delay(retry_index)
        if delay > 0:
            sleep(delay)


class FailureBudget:
    """Thread-safe cap on persistent evaluation failures.

    ``charge()`` records one failure and raises
    :class:`FailureBudgetExceeded` once more than ``limit`` failures
    accumulate — under ``on_error=skip`` a budget keeps a systematically
    broken run (model regression, corrupt device spec) from silently
    degrading into a search over no candidates.  ``limit=None`` is
    unlimited.
    """

    def __init__(self, limit: Optional[int] = None):
        if limit is not None and limit < 0:
            raise UsageError("failure budget must be >= 0")
        self.limit = limit
        self.spent = 0
        self._lock = threading.Lock()

    def charge(self, **context) -> None:
        """Record one persistent failure; raise once over budget."""
        with self._lock:
            self.spent += 1
            spent = self.spent
        if self.limit is not None and spent > self.limit:
            raise FailureBudgetExceeded(
                f"evaluation failure budget exhausted "
                f"({spent} failures > limit {self.limit})",
                limit=self.limit,
                failures=spent,
                **context,
            )

    @property
    def remaining(self) -> Optional[int]:
        if self.limit is None:
            return None
        with self._lock:
            return max(0, self.limit - self.spent)
