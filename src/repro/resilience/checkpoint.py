"""Journaled checkpoint/resume for long autotuning runs.

A :class:`TuningJournal` is an append-only JSONL file recording every
candidate a tuning run has already priced — one self-contained record
per line, flushed (and fsynced) as soon as it is known, so a crash at
any instant loses at most the record being written.  An interrupted run
restarted with the same journal replays the recorded outcomes instead
of re-evaluating, then continues the search from where it died.

Crash model and recovery:

* appends are single ``write()`` calls of one ``\\n``-terminated line —
  a torn write therefore leaves an *unterminated tail*, which the loader
  drops and truncates away (at most one candidate is re-evaluated);
* a terminated line that fails to parse means the file was damaged by
  something other than a torn append, and the journal refuses to load
  (:class:`CheckpointCorruptError`) rather than resume from a history
  it cannot trust;
* records are keyed by content (IR fingerprint + operation + plan
  fingerprint), never by sequence number, so resumed runs may evaluate
  in a different order, with different worker counts, and still hit.

Record kinds: ``header`` (version/device sanity), ``candidate`` (one
priced plan: the escalated plan chosen plus its time/TFLOPS, or
``null`` for infeasible), ``failure`` (diagnostic only — failed
candidates are *re-evaluated* on resume, since their failure may have
been transient), and ``degree`` (a completed deep-tuning fusion
degree, including its roofline classification).
"""

from __future__ import annotations

import json
import os
import threading
from hashlib import sha256
from typing import Any, Dict, Optional

from .errors import (
    CheckpointCorruptError,
    CheckpointDeviceMismatch,
    CheckpointError,
    CheckpointLockedError,
)

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "JOURNAL_VERSION",
    "TuningJournal",
    "ir_fingerprint",
    "plan_from_dict",
    "plan_to_dict",
]

JOURNAL_VERSION = 1


def ir_fingerprint(ir) -> str:
    """Stable content fingerprint of a program IR.

    The IR is a tree of frozen dataclasses of primitives, so its repr
    is deterministic across processes — good enough to key journal
    records so a journal recorded for one stencil can never satisfy
    lookups for another.
    """
    return sha256(repr(ir).encode()).hexdigest()[:16]


def plan_to_dict(plan) -> Dict[str, Any]:
    """JSON-serializable form of a :class:`KernelPlan`."""
    return {
        "kernel_names": list(plan.kernel_names),
        "block": list(plan.block),
        "time_tile": plan.time_tile,
        "streaming": plan.streaming,
        "stream_axis": plan.stream_axis,
        "concurrent_chunks": plan.concurrent_chunks,
        "unroll": list(plan.unroll),
        "unroll_blocked": plan.unroll_blocked,
        "prefetch": plan.prefetch,
        "perspective": plan.perspective,
        "placements": [list(item) for item in plan.placements],
        "retime": plan.retime,
        "fold_groups": [
            {"members": list(group.members), "op": group.op}
            for group in plan.fold_groups
        ],
        "max_registers": plan.max_registers,
    }


def plan_from_dict(data: Dict[str, Any]):
    """Reconstruct a :class:`KernelPlan` recorded by :func:`plan_to_dict`."""
    from ..codegen.plan import KernelPlan
    from ..ir.folding import FoldGroup

    return KernelPlan(
        kernel_names=tuple(data["kernel_names"]),
        block=tuple(data["block"]),
        time_tile=data["time_tile"],
        streaming=data["streaming"],
        stream_axis=data["stream_axis"],
        concurrent_chunks=data["concurrent_chunks"],
        unroll=tuple(data["unroll"]),
        unroll_blocked=data["unroll_blocked"],
        prefetch=data["prefetch"],
        perspective=data["perspective"],
        placements=tuple(
            (array, storage) for array, storage in data["placements"]
        ),
        retime=data["retime"],
        fold_groups=tuple(
            FoldGroup(members=tuple(group["members"]), op=group["op"])
            for group in data["fold_groups"]
        ),
        max_registers=data["max_registers"],
    )


class TuningJournal:
    """Append-only JSONL checkpoint of evaluated tuning candidates.

    Opening an existing journal resumes it: prior records become
    lookup hits.  Opening a fresh path starts one.  ``device`` (a
    device name) is recorded in the header and verified on resume — a
    journal of P100 timings must not satisfy a V100 run.
    """

    def __init__(self, path: str, device: Optional[str] = None):
        self.path = os.fspath(path)
        self.device = device
        #: device name the journal's header declares (== ``device`` for
        #: a fresh journal; the on-disk value when resuming).  Opening
        #: with ``device=None`` skips the mismatch check — the
        #: sanctioned way for transfer tuning to *read* a foreign
        #: device's journal without replaying it.
        self.recorded_device: Optional[str] = device
        self._lock = threading.Lock()
        self._records: Dict[str, Dict[str, Any]] = {}
        self._failures: Dict[str, Dict[str, Any]] = {}
        self.replayable = 0  # non-failure records loaded from disk
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if existed:
            self._load()
        self._handle = open(self.path, "a", encoding="utf-8")
        self._acquire_lock()
        if not existed:
            self._append(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "tool": "repro",
                    "device": device,
                }
            )

    def _acquire_lock(self) -> None:
        """Take an advisory exclusive lock on the append handle.

        A second live writer on the same path would interleave its
        appends with ours mid-record; the lock makes the misuse loud
        (:class:`CheckpointLockedError`, exit 2) instead of silent.
        Advisory only — readers (``_load``, torn-tail repair, offline
        merges of *closed* journals) are unaffected.  Platforms without
        ``fcntl`` skip the check.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        try:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._handle.close()
            raise CheckpointLockedError(
                f"checkpoint journal {self.path} is already open for "
                f"writing by another process; give each run its own "
                f"--checkpoint path (distributed workers journal to "
                f"sibling files and merge)",
                path=self.path,
            ) from None

    # -- loading ----------------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "rb") as handle:
            raw = handle.read()
        keep = len(raw)
        if raw and not raw.endswith(b"\n"):
            # Torn trailing append: drop the partial record and truncate
            # so future appends start on a clean line boundary.
            cut = raw.rfind(b"\n")
            keep = cut + 1 if cut >= 0 else 0
            raw = raw[:keep]
            with open(self.path, "r+b") as handle:
                handle.truncate(keep)
        lines = raw.decode("utf-8").splitlines()
        if not lines:
            return
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CheckpointCorruptError(
                    f"checkpoint journal {self.path} is corrupt: "
                    f"line {number} is not valid JSON",
                    path=self.path,
                    line=number,
                ) from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise CheckpointCorruptError(
                    f"checkpoint journal {self.path} is corrupt: "
                    f"line {number} is not a journal record",
                    path=self.path,
                    line=number,
                )
            self._absorb(record, number)

    def _absorb(self, record: Dict[str, Any], number: int) -> None:
        kind = record["kind"]
        if kind == "header":
            version = record.get("version")
            if version != JOURNAL_VERSION:
                raise CheckpointCorruptError(
                    f"checkpoint journal {self.path} has version "
                    f"{version!r}; this build reads version "
                    f"{JOURNAL_VERSION}",
                    path=self.path,
                )
            recorded = record.get("device")
            self.recorded_device = recorded
            if (
                self.device is not None
                and recorded is not None
                and recorded != self.device
            ):
                raise CheckpointDeviceMismatch(
                    f"checkpoint journal {self.path} was recorded for "
                    f"device {recorded!r}, not {self.device!r}; resume "
                    f"on {recorded!r}, start a fresh checkpoint, or "
                    f"warm-start via transfer tuning",
                    path=self.path,
                    recorded=recorded,
                    requested=self.device,
                )
            return
        key = record.get("key")
        if not isinstance(key, str):
            raise CheckpointCorruptError(
                f"checkpoint journal {self.path} is corrupt: line "
                f"{number} has no record key",
                path=self.path,
                line=number,
            )
        if kind == "failure":
            self._failures[key] = record
        else:
            self._records[key] = record
            self.replayable += 1

    # -- writing ----------------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def record_candidate(
        self,
        key: str,
        plan: Optional[Dict[str, Any]],
        time_s: Optional[float] = None,
        tflops: Optional[float] = None,
    ) -> None:
        """Journal one priced candidate (``plan=None`` = infeasible)."""
        record = {
            "kind": "candidate",
            "key": key,
            "plan": plan,
            "time_s": time_s,
            "tflops": tflops,
        }
        with self._lock:
            self._records[key] = record
        self._append(record)

    def record_failure(self, key: str, error: BaseException) -> None:
        """Journal a persistent failure (diagnostic; re-tried on resume)."""
        record = {
            "kind": "failure",
            "key": key,
            "error": type(error).__name__,
            "message": str(error),
        }
        with self._lock:
            self._failures[key] = record
        self._append(record)

    def record_degree(self, key: str, payload: Dict[str, Any]) -> None:
        """Journal a completed deep-tuning fusion degree."""
        record = {"kind": "degree", "key": key}
        record.update(payload)
        with self._lock:
            self._records[key] = record
        self._append(record)

    def append_record(self, record: Dict[str, Any]) -> None:
        """Journal a pre-built record verbatim (distributed workers).

        The record must carry a ``kind`` and a string ``key``; extra
        fields (worker id, shard id, per-candidate stats deltas) ride
        along untouched so the merge can account for them.
        """
        kind = record.get("kind")
        key = record.get("key")
        if kind not in ("candidate", "failure", "degree") or not isinstance(
            key, str
        ):
            raise CheckpointError(
                f"cannot journal record kind={kind!r} key={key!r}",
                path=self.path,
            )
        with self._lock:
            if kind == "failure":
                self._failures[key] = record
            else:
                self._records[key] = record
        self._append(record)

    def merge_record(self, record: Dict[str, Any]) -> bool:
        """Fold one foreign record in; return False for duplicates.

        The crash-safe merge invariant: the *first* record for a
        content-addressed key wins, later arrivals (a stolen shard
        re-evaluated by a second worker) are dropped so their
        evaluation cost is never double-billed.  A failure record is a
        duplicate if the key already has *any* record — a successful
        re-evaluation after a steal supersedes the victim's failure.
        """
        kind = record.get("kind")
        key = record.get("key")
        if kind == "header" or not isinstance(key, str):
            return False
        with self._lock:
            if key in self._records:
                return False
            if kind == "failure":
                if key in self._failures:
                    return False
                self._failures[key] = record
            else:
                self._records[key] = record
                self.replayable += 1
        self._append(record)
        return True

    # -- lookup -----------------------------------------------------------------

    def records(self, kind: Optional[str] = None) -> list:
        """Snapshot of the non-failure records (optionally one ``kind``).

        A read-only view for offline consumers: transfer tuning mines a
        foreign journal's ``candidate``/``degree`` records for winners
        without replaying them into a live search.
        """
        with self._lock:
            items = list(self._records.values())
        if kind is not None:
            items = [item for item in items if item.get("kind") == kind]
        return items

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The journaled record for ``key``, or None.

        Failure records never satisfy lookups: a candidate that failed
        in the previous run is re-evaluated, since the failure may have
        been transient.
        """
        with self._lock:
            return self._records.get(key)

    def failure(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._failures.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "TuningJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
