"""Fault tolerance for the ARTEMIS pipeline.

A production autotuner evaluates thousands of candidate plans per run;
a single malformed candidate, a hung evaluation, or a crashed process
must not destroy hours of search.  This package holds the four pieces
that make the pipeline survivable:

* :mod:`~repro.resilience.errors` — the unified exception taxonomy
  (:class:`ReproError` and friends) with structured diagnostic context
  and CLI exit-code mapping;
* :mod:`~repro.resilience.faults` — a deterministic, seedable
  fault-injection harness for exercising every recovery path;
* :mod:`~repro.resilience.retry` — retry/backoff policies, the
  ``on_error`` policy names and the failure budget used by
  ``PlanEvaluator``;
* :mod:`~repro.resilience.checkpoint` — the crash-safe JSONL tuning
  journal behind ``--checkpoint`` / ``--resume``;
* :mod:`~repro.resilience.atomic` — write-tmp-then-rename helpers used
  for every JSON/report artifact the pipeline emits.

See ``docs/robustness.md`` for the operator-facing guide.
"""

from .errors import (
    CheckpointCorruptError,
    CheckpointDeviceMismatch,
    CheckpointError,
    CheckpointLockedError,
    EvaluationError,
    EvaluationTimeout,
    FailureBudgetExceeded,
    InfeasiblePlanError,
    InjectedFault,
    ReproError,
    UsageError,
)
from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_text
from .retry import ON_ERROR_POLICIES, FailureBudget, RetryPolicy
from .faults import FAULT_KINDS, FaultInjector
from .checkpoint import (
    JOURNAL_VERSION,
    TuningJournal,
    ir_fingerprint,
    plan_from_dict,
    plan_to_dict,
)

__all__ = [
    "CheckpointCorruptError",
    "CheckpointDeviceMismatch",
    "CheckpointError",
    "CheckpointLockedError",
    "EvaluationError",
    "EvaluationTimeout",
    "FAULT_KINDS",
    "FailureBudget",
    "FailureBudgetExceeded",
    "FaultInjector",
    "InfeasiblePlanError",
    "InjectedFault",
    "JOURNAL_VERSION",
    "ON_ERROR_POLICIES",
    "ReproError",
    "RetryPolicy",
    "TuningJournal",
    "UsageError",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "ir_fingerprint",
    "plan_from_dict",
    "plan_to_dict",
]
