"""Crash-safe artifact writes: write-tmp-then-``os.replace``.

Every JSON/report artifact the pipeline produces (trace exports, metrics
dumps, ``BENCH_*.json``, pipeline reports, checkpoint snapshots) goes
through these helpers so a crash mid-write can never leave a truncated
file where a previous good artifact used to be: the new content is
written to a temporary sibling, flushed and fsynced, then atomically
renamed over the destination.  ``os.replace`` is atomic on POSIX and
Windows for same-filesystem paths, which the sibling placement
guarantees.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_bytes", "atomic_write_json", "atomic_write_text"]


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: str, document: Any, indent: int = 1, **dump_kwargs: Any
) -> None:
    """Atomically replace ``path`` with ``document`` serialized as JSON.

    Serialization happens *before* the destination is touched, so a
    non-serializable document cannot clobber an existing artifact
    either.
    """
    text = json.dumps(document, indent=indent, **dump_kwargs) + "\n"
    atomic_write_text(path, text)
