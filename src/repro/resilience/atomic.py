"""Crash-safe artifact writes: write-tmp-then-``os.replace``.

Every JSON/report artifact the pipeline produces (trace exports, metrics
dumps, ``BENCH_*.json``, pipeline reports, checkpoint snapshots) goes
through these helpers so a crash mid-write can never leave a truncated
file where a previous good artifact used to be: the new content is
written to a temporary sibling, flushed and fsynced, then atomically
renamed over the destination.  ``os.replace`` is atomic on POSIX and
Windows for same-filesystem paths, which the sibling placement
guarantees.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_bytes", "atomic_write_json", "atomic_write_text"]


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    descriptor, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry so the rename survives power loss.

    ``os.replace`` makes the *content* swap atomic, but the new
    directory entry itself lives in the parent directory's metadata —
    without this fsync a crash shortly after the rename can roll the
    directory back and the file (a lease, a journal shard) vanishes.
    Platforms that cannot open directories read-only (Windows) skip
    the sync; they have no O_DIRECTORY semantics to flush anyway.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(dir_fd)


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: str, document: Any, indent: int = 1, **dump_kwargs: Any
) -> None:
    """Atomically replace ``path`` with ``document`` serialized as JSON.

    Serialization happens *before* the destination is touched, so a
    non-serializable document cannot clobber an existing artifact
    either.
    """
    text = json.dumps(document, indent=indent, **dump_kwargs) + "\n"
    atomic_write_text(path, text)
