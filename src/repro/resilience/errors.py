"""Unified exception taxonomy for the ARTEMIS pipeline.

Every failure the pipeline can produce descends from :class:`ReproError`
and carries *structured diagnostic context* — which stencil, which plan,
which phase — so a failure deep inside a thousand-candidate batch is
attributable without re-running anything.  The taxonomy replaces the
ad-hoc ``ValueError`` / ``RuntimeError`` mix the seed implementation
used across ``dsl/``, ``codegen/``, ``gpu/`` and ``tuning/``.

Design constraints:

* **Backward compatibility** — the pre-existing exception types
  (:class:`repro.gpu.simulator.PlanInfeasible`,
  :class:`repro.codegen.resources.InvalidPlan`) subclassed ``ValueError``
  and are caught as such throughout the codebase and its tests, so the
  taxonomy classes that replace their bases keep ``ValueError`` (or
  ``RuntimeError``) in their MRO.
* **Exit-code mapping** — every class carries an ``exit_code`` the CLI
  maps to: ``2`` usage errors, ``3`` infeasible input, ``4`` evaluation
  / runtime failures (see ``docs/robustness.md``).
* **No heavy imports** — this module is imported by the DSL frontend and
  must stay dependency-free.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "CheckpointCorruptError",
    "CheckpointDeviceMismatch",
    "CheckpointError",
    "CheckpointLockedError",
    "EvaluationError",
    "EvaluationTimeout",
    "FailureBudgetExceeded",
    "InfeasiblePlanError",
    "InjectedFault",
    "ReproError",
    "UsageError",
]


class ReproError(Exception):
    """Root of the repro exception taxonomy.

    ``context`` holds structured diagnostic key/values (``stencil``,
    ``plan``, ``phase``, ``attempts``, ...).  :meth:`describe` renders
    the one-line operator-facing message the CLI prints.
    """

    #: Process exit status the CLI maps this error class to.
    exit_code = 1

    def __init__(self, message: str = "", **context: Any):
        super().__init__(message)
        self.message = message
        self.context: Dict[str, Any] = {
            key: value for key, value in context.items() if value is not None
        }

    def with_context(self, **context: Any) -> "ReproError":
        """Attach additional diagnostic context; returns ``self``."""
        for key, value in context.items():
            if value is not None and key not in self.context:
                self.context[key] = value
        return self

    def describe(self) -> str:
        """One-line message with the diagnostic context appended."""
        text = self.message or self.__class__.__name__
        if not self.context:
            return text
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(self.context.items())
        )
        return f"{text} [{rendered}]"


class UsageError(ReproError, ValueError):
    """The caller asked for something the API does not offer.

    Unknown modes, negative iteration counts, deep-tuning a
    non-iterative stencil: correctable misuse, not a pipeline defect.
    """

    exit_code = 2


class InfeasiblePlanError(ReproError, ValueError):
    """A plan (or input) cannot be realized on the target device.

    Base of :class:`repro.gpu.simulator.PlanInfeasible` and
    :class:`repro.codegen.resources.InvalidPlan`; tuners treat these as
    "candidate rejected", never as a crash.
    """

    exit_code = 3


class EvaluationError(ReproError, RuntimeError):
    """A candidate evaluation failed for a non-infeasibility reason.

    Wraps the original exception (``__cause__``) and carries the
    candidate's plan description, phase and attempt count in
    ``context``.
    """

    exit_code = 4


class EvaluationTimeout(EvaluationError):
    """A single candidate evaluation exceeded its deadline."""


class InjectedFault(EvaluationError):
    """Synthetic failure raised by the fault-injection harness."""


class FailureBudgetExceeded(EvaluationError):
    """Too many candidates failed; the run aborts instead of degrading
    silently into a search over whatever happened to survive."""


class CheckpointError(ReproError):
    """A checkpoint journal could not be used (wrong device, version)."""

    exit_code = 4


class CheckpointDeviceMismatch(CheckpointError, UsageError):
    """A checkpoint journal was recorded on a different device.

    Resuming a P100 journal on a V100 would replay P100 timings into a
    V100 search, silently poisoning the result — the journal refuses.
    This is caller-correctable misuse (pick the matching ``--device``,
    start a fresh checkpoint, or warm-start via transfer tuning, which
    reads foreign journals deliberately), so it exits with the usage
    code ``2`` while remaining catchable as :class:`CheckpointError`.
    """

    exit_code = 2


class CheckpointLockedError(CheckpointError, UsageError):
    """Another live writer already holds this checkpoint journal.

    Two processes appending to the same JSONL file would interleave
    (and tear) each other's records, silently corrupting the very
    history the journal exists to protect.  Distributed runs give each
    worker its own sibling journal and merge afterwards; pointing two
    runs at one ``--checkpoint`` path is caller-correctable misuse, so
    this exits with the usage code ``2`` while remaining catchable as
    :class:`CheckpointError`.
    """

    exit_code = 2


class CheckpointCorruptError(CheckpointError):
    """A checkpoint journal is damaged beyond automatic repair.

    Torn trailing writes are repaired silently (the partial record is
    dropped); this error means a *middle* record failed to parse, so
    the journal's history cannot be trusted.
    """
