"""Numeric replay of certification witnesses.

A :class:`~repro.lint.dependence.Witness` claims that two events of the
reference execution hold *different* values at one grid point — and that
the refuted schedule reads the wrong one.  This module replays the claim
on :func:`repro.gpu.executor.execute_reference`'s semantics with
deterministic inputs: it runs the same boundary-carry / ping-pong loop,
snapshots ``array[point]`` at both events, and reports whether the
values actually diverge.  Tests assert they do for every RL3xx error
the certifier emits, so no refutation ever rests on a vacuous
counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..gpu.executor import (
    allocate_inputs,
    default_scalars,
    program_pingpong,
    run_kernel,
)
from ..ir.stencil import ProgramIR
from .dependence import Witness


@dataclass(frozen=True)
class WitnessReplay:
    """Outcome of replaying one witness on the reference executor."""

    witness: Witness
    required_value: float
    observed_value: float

    @property
    def diverged(self) -> bool:
        """True when the two events hold different values (exact)."""
        return self.required_value != self.observed_value

    def as_dict(self) -> Dict[str, object]:
        return {
            "witness": self.witness.as_dict(),
            "required_value": self.required_value,
            "observed_value": self.observed_value,
            "diverged": self.diverged,
        }


def replay_witness(
    ir: ProgramIR,
    witness: Witness,
    inputs: Optional[Dict[str, np.ndarray]] = None,
    scalars: Optional[Dict[str, float]] = None,
) -> WitnessReplay:
    """Run the instrumented reference executor and snapshot both events.

    The loop is byte-for-byte :func:`execute_reference`'s (boundary
    carry, program order, Jacobi ping-pong), with a capture hook before
    and after each kernel.  Captures read the array *by name at event
    time* — exactly the value a schedule observing that event would
    read, swaps included.
    """
    if inputs is None:
        inputs = allocate_inputs(ir)
    if scalars is None:
        scalars = default_scalars(ir)
    arrays = {name: value.copy() for name, value in inputs.items()}

    events = {witness.required_event, witness.observed_event}
    steps = max(step for step, _ in events) + 1
    carry = ir.is_iterative or steps > 1
    written, read = program_pingpong(ir) if carry else (None, None)

    captured: Dict[tuple, float] = {}
    point = tuple(witness.point)

    def capture(step: int, phase: str) -> None:
        event = (step, phase)
        if event in events and event not in captured:
            captured[event] = float(arrays[witness.array][point])

    for step in range(steps):
        if carry:
            arrays[written][...] = arrays[read]
        for instance in ir.kernels:
            capture(step, f"before:{instance.name}")
            run_kernel(ir, instance, arrays, scalars)
            capture(step, f"after:{instance.name}")
        if carry and step < steps - 1:
            arrays[written], arrays[read] = arrays[read], arrays[written]

    missing = events - set(captured)
    if missing:
        raise ValueError(
            f"witness events {sorted(missing)} never occur: kernels are "
            f"{[k.name for k in ir.kernels]} over {steps} step(s)"
        )
    return WitnessReplay(
        witness=witness,
        required_value=captured[witness.required_event],
        observed_value=captured[witness.observed_event],
    )
