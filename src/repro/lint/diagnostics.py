"""Shared diagnostics core for the ``repro.lint`` analyzer.

Rule codes are **stable identifiers**: once published in ``docs/lint.md``
a code never changes meaning, so CI gates, SARIF consumers and counter
dashboards can key on them.  Program rules use ``RL1xx``, plan rules
``RL2xx``.  Severities follow the usual three-level scheme:

* ``error`` — the artifact is wrong or cannot run; ``repro lint`` exits
  1 and the evaluation engine rejects the plan;
* ``warning`` — suspicious but runnable (dead writes, wasteful tiles);
* ``info`` — a noteworthy fact the user may want to know.

No heavy imports here: the module is shared by the DSL frontend, the
tuning engine's hot prescreen path and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dsl.ast import SourceSpan

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

#: Severity -> SARIF 2.1.0 ``level``.
SARIF_LEVELS = {ERROR: "error", WARNING: "warning", INFO: "note"}


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str  # stable "RLxxx" identifier
    name: str  # short kebab-case slug, e.g. "in-place-race"
    severity: str  # default severity of findings
    summary: str  # one-line description for catalogs and SARIF

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


#: code -> Rule; populated by :func:`rule` at import time.
RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, severity: str, summary: str) -> Rule:
    """Register a rule under its stable code (idempotent per code)."""
    if code in RULES:
        return RULES[code]
    entry = Rule(code=code, name=name, severity=severity, summary=summary)
    RULES[code] = entry
    return entry


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a source position."""

    rule: Rule
    message: str
    span: Optional[SourceSpan] = None
    #: what was linted — a file path, benchmark name, or plan description.
    artifact: str = "<dsl>"
    #: counterexample for RL3xx refutations (a
    #: :class:`repro.lint.dependence.Witness`); duck-typed here so the
    #: diagnostics core keeps its no-heavy-imports guarantee.
    witness: Optional[object] = None

    @property
    def code(self) -> str:
        return self.rule.code

    @property
    def severity(self) -> str:
        return self.rule.severity

    def location(self) -> str:
        if self.span is not None and self.span.line:
            return f"{self.artifact}:{self.span.line}:{self.span.col}"
        return self.artifact

    def render(self) -> str:
        """``path:line:col: RLxxx severity: message`` (one line)."""
        return (
            f"{self.location()}: {self.code} {self.severity}: {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "code": self.code,
            "rule": self.rule.name,
            "severity": self.severity,
            "message": self.message,
            "artifact": self.artifact,
        }
        if self.span is not None and self.span.line:
            out["line"] = self.span.line
            out["col"] = self.span.col
        if self.witness is not None:
            out["witness"] = self.witness.as_dict()
        return out


_SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass
class LintReport:
    """All findings for one artifact (or one aggregated run)."""

    diagnostics: Tuple[Diagnostic, ...] = ()
    artifact: str = "<dsl>"

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def codes(self) -> Tuple[str, ...]:
        """Distinct rule codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def sorted(self) -> "LintReport":
        """Findings ordered by severity, then source position."""
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (
                _SEVERITY_ORDER.get(d.severity, 3),
                d.span.line if d.span else 1 << 30,
                d.span.col if d.span else 0,
                d.code,
            ),
        )
        return LintReport(tuple(ordered), artifact=self.artifact)

    def merge(self, other: "LintReport") -> "LintReport":
        return LintReport(
            self.diagnostics + tuple(other.diagnostics),
            artifact=self.artifact,
        )

    def render(self) -> str:
        return "\n".join(d.render() for d in self.sorted())

    def as_dict(self) -> Dict[str, object]:
        counts = {severity: 0 for severity in SEVERITIES}
        for d in self.diagnostics:
            counts[d.severity] = counts.get(d.severity, 0) + 1
        return {
            "artifact": self.artifact,
            "counts": counts,
            "diagnostics": [d.as_dict() for d in self.sorted()],
        }

    def publish(self, prefix: str = "lint") -> None:
        """Mirror per-rule finding counts into the metrics registry."""
        from ..obs import counter, metrics_enabled

        if not metrics_enabled() or not self.diagnostics:
            return
        for d in self.diagnostics:
            counter(f"{prefix}.finding.{d.code}").add()
