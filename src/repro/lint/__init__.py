"""``repro.lint`` — static stencil-and-plan verifier.

A rule-based static analyzer over the two artifact kinds the pipeline
consumes: DSL **programs** (dependence/race analysis, halo/bounds
checks, liveness, dtype consistency) and kernel **plans** (a fast
legality prescreen the evaluation engine runs before any simulation).

Every finding is a :class:`~repro.lint.diagnostics.Diagnostic` with a
stable rule code (``RLxxx``), a severity, and a source span threaded
from the DSL lexer.  ``repro lint`` renders findings as human text,
JSON, or SARIF 2.1.0 (``repro.lint.sarif``); the evaluation engine
turns error-severity plan findings into counted ``lint.*`` rejections
(``docs/lint.md`` has the full rule catalog).
"""

from .diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    LintReport,
    Rule,
    RULES,
    rule,
)
from .dependence import (
    DependenceEdge,
    Witness,
    array_flow_graph,
    dependence_graph,
    edges_between,
    kernel_dependences,
)
from .engine import extract_dsl_blocks, lint_program, lint_source
from .rules_plan import check_plan, classify_occupancy_failure, plan_rejection
from .rules_transform import (
    certification_advisories,
    certification_disabled,
    certifier_enabled,
    certify_plan_transformations,
    set_certification_enabled,
)
from .sarif import sarif_log, write_sarif
from .witness import WitnessReplay, replay_witness

__all__ = [
    "ERROR",
    "INFO",
    "WARNING",
    "DependenceEdge",
    "Diagnostic",
    "LintReport",
    "RULES",
    "Rule",
    "Witness",
    "WitnessReplay",
    "array_flow_graph",
    "certification_advisories",
    "certification_disabled",
    "certifier_enabled",
    "certify_plan_transformations",
    "check_plan",
    "classify_occupancy_failure",
    "dependence_graph",
    "edges_between",
    "extract_dsl_blocks",
    "kernel_dependences",
    "lint_program",
    "lint_source",
    "plan_rejection",
    "replay_witness",
    "rule",
    "sarif_log",
    "write_sarif",
]
