"""SARIF 2.1.0 output for lint findings.

Emits the minimal-but-valid subset of the OASIS SARIF 2.1.0 schema that
code-scanning consumers (GitHub, VS Code SARIF viewers) require: a
single ``run`` with a fully described ``tool.driver`` (every rule in the
catalog, whether it fired or not) and one ``result`` per finding with a
``physicalLocation`` when the finding carries a source span.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from .diagnostics import Diagnostic, LintReport, RULES, SARIF_LEVELS

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/artemis-repro/repro"


def _rule_descriptor(code: str) -> Dict[str, object]:
    entry = RULES[code]
    return {
        "id": entry.code,
        "name": entry.name,
        "shortDescription": {"text": entry.summary},
        "defaultConfiguration": {"level": SARIF_LEVELS[entry.severity]},
    }


def _result(diag: Diagnostic, rule_index: Dict[str, int]) -> Dict[str, object]:
    out: Dict[str, object] = {
        "ruleId": diag.code,
        "ruleIndex": rule_index[diag.code],
        "level": SARIF_LEVELS[diag.severity],
        "message": {"text": diag.message},
    }
    location: Dict[str, object] = {
        "physicalLocation": {
            "artifactLocation": {"uri": diag.artifact},
        }
    }
    if diag.span is not None and diag.span.line:
        location["physicalLocation"]["region"] = {
            "startLine": diag.span.line,
            "startColumn": max(diag.span.col, 1),
        }
    out["locations"] = [location]
    if diag.witness is not None:
        # RL3xx counterexample: carried in the SARIF result's property
        # bag so code-scanning consumers can render the refutation.
        out["properties"] = {"witness": diag.witness.as_dict()}
    return out


def sarif_log(reports: Iterable[LintReport], version: str = "") -> Dict:
    """Assemble one SARIF log covering any number of lint reports."""
    ordered_codes = sorted(RULES)
    rule_index = {code: i for i, code in enumerate(ordered_codes)}
    results: List[Dict[str, object]] = []
    for report in reports:
        for diag in report.sorted():
            results.append(_result(diag, rule_index))
    driver: Dict[str, object] = {
        "name": TOOL_NAME,
        "informationUri": TOOL_URI,
        "rules": [_rule_descriptor(code) for code in ordered_codes],
    }
    if version:
        driver["version"] = version
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def write_sarif(reports: Iterable[LintReport], path: str) -> Dict:
    """Serialize :func:`sarif_log` to ``path``; returns the log dict."""
    log = sarif_log(reports)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(log, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return log
