"""Polyhedral-lite dependence engine over the stencil IR.

The transformation certifier (:mod:`repro.lint.rules_transform`) needs
more than the kernel DAG's edge *directions*: to prove a fusion order,
time tile or streaming sweep legal it needs the exact per-axis
**dependence distances** between kernel pairs.  For uniform stencil
accesses (``A[k+a][j+b][i+c]``) those distances are computable exactly
from the access offsets :func:`repro.ir.analysis.array_offset_sets`
extracts — no integer programming required, hence "polyhedral-lite".

Conventions
-----------

A dependence edge ``source -> sink`` means the *source* kernel touches
an array cell before the *sink* kernel does (program order within one
sweep).  Its **distance vectors** are ``sink iteration - source
iteration`` for every (source access, sink access) pair landing on the
same cell:

* **flow** (RAW): source writes at offset ``w``, sink reads at ``r``
  — distance ``w - r`` per axis;
* **anti** (WAR): source reads at ``r``, sink writes at ``w`` —
  distance ``r - w``;
* **output** (WAW): source writes at ``w_s``, sink writes at ``w_k`` —
  distance ``w_s - w_k``.

A ``None`` component marks an axis whose subscript is not a plain
``iterator + constant`` (skewed affine reads, broadcast lower-rank
arrays): the distance along that axis is *unknown* and every consumer
must treat it conservatively.

The sweep mirrors :func:`repro.ir.dag.kernel_dag` exactly (last-writer
/ readers-since-write bookkeeping), so the certifier and the fusion
DAG can never disagree about which kernel pairs are dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..ir.analysis import array_offset_sets, memoized_kv
from ..ir.stencil import ProgramIR

FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"

#: distance vector: per-axis sink-minus-source iteration delta.
Distance = Tuple[Optional[int], ...]


@dataclass(frozen=True)
class DependenceEdge:
    """One dependence between two kernel instances of a program."""

    source: str  # must execute first (program order)
    sink: str  # must execute second
    array: str  # the array carrying the dependence
    kind: str  # flow | anti | output
    distances: Tuple[Distance, ...]  # distinct distance vectors

    def axis_distances(self, axis: int) -> Tuple[Optional[int], ...]:
        """Distinct distance components along one axis (``None`` kept)."""
        seen: List[Optional[int]] = []
        for vector in self.distances:
            value = vector[axis] if axis < len(vector) else None
            if value not in seen:
                seen.append(value)
        return tuple(seen)

    def has_unknown(self, axis: int) -> bool:
        return None in self.axis_distances(axis)

    def max_known(self, axis: int) -> Optional[int]:
        known = [d for d in self.axis_distances(axis) if d is not None]
        return max(known) if known else None

    def describe(self) -> str:
        vectors = ", ".join(
            "("
            + ",".join("?" if d is None else str(d) for d in vector)
            + ")"
            for vector in self.distances
        )
        return (
            f"{self.kind} {self.source} -> {self.sink} via "
            f"{self.array!r} distance {{{vectors}}}"
        )


@dataclass(frozen=True)
class Witness:
    """A concrete counterexample for a refuted transformation.

    ``required_event`` and ``observed_event`` are ``(time_step, phase)``
    pairs where ``phase`` is ``"before:<kernel>"`` or
    ``"after:<kernel>"`` in the reference executor's program order.  The
    refuted schedule makes ``array[point]`` be read at the *observed*
    event where correctness requires the *required* event's value; the
    two values provably differ, which
    :func:`repro.lint.witness.replay_witness` confirms numerically.
    """

    array: str
    point: Tuple[int, ...]
    source: str
    sink: str
    kind: str
    axis: Optional[int]
    distance: Distance
    required_event: Tuple[int, str]
    observed_event: Tuple[int, str]
    note: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "array": self.array,
            "point": list(self.point),
            "source": self.source,
            "sink": self.sink,
            "kind": self.kind,
            "axis": self.axis,
            "distance": [d for d in self.distance],
            "required_event": [self.required_event[0], self.required_event[1]],
            "observed_event": [self.observed_event[0], self.observed_event[1]],
            "note": self.note,
        }

    def describe(self) -> str:
        point = ",".join(str(c) for c in self.point)
        return (
            f"{self.array}[{point}] must hold its value at "
            f"step {self.required_event[0]} {self.required_event[1]} but the "
            f"transformed schedule observes step {self.observed_event[0]} "
            f"{self.observed_event[1]}"
        )


def _difference(
    a: Tuple[Optional[int], ...], b: Tuple[Optional[int], ...]
) -> Distance:
    """Componentwise ``a - b`` with ``None`` propagation."""
    if len(a) != len(b):
        # Rank-mismatched access pair (e.g. full-rank write vs broadcast
        # read): every axis distance is unknown.
        length = max(len(a), len(b))
        return (None,) * length
    return tuple(
        None if (x is None or y is None) else x - y for x, y in zip(a, b)
    )


def _distance_set(
    lhs: Tuple[Tuple[Optional[int], ...], ...],
    rhs: Tuple[Tuple[Optional[int], ...], ...],
) -> Tuple[Distance, ...]:
    """All distinct ``l - r`` distance vectors over the offset sets."""
    seen: List[Distance] = []
    for left in lhs:
        for right in rhs:
            vector = _difference(left, right)
            if vector not in seen:
                seen.append(vector)
    return tuple(seen)


def kernel_dependences(ir: ProgramIR) -> Tuple[DependenceEdge, ...]:
    """Every dependence edge between kernel pairs, with exact distances.

    One edge per (source, sink, array, kind) in deterministic program
    order — the same last-writer sweep as :func:`repro.ir.dag.kernel_dag`
    produces the same (source, sink, array) pairs, now annotated with the
    full distance set.  Memoized per IR (the certifier probes this once
    per plan family on the engine's hot path).
    """
    return memoized_kv(
        "dependences", ir, None, lambda: _kernel_dependences(ir)
    )


def _kernel_dependences(ir: ProgramIR) -> Tuple[DependenceEdge, ...]:
    edges: List[DependenceEdge] = []
    #: array -> (kernel name, distinct write offset vectors)
    last_writer: Dict[str, Tuple[str, Tuple[Tuple[Optional[int], ...], ...]]]
    last_writer = {}
    #: array -> [(kernel name, distinct read offset vectors), ...]
    readers: Dict[str, List[Tuple[str, Tuple[Tuple[Optional[int], ...], ...]]]]
    readers = {}
    for kernel in ir.kernels:
        offsets = array_offset_sets(ir, kernel)
        for array in kernel.arrays_read():
            read_offs = offsets.get(array, ((), ()))[0]
            if array in last_writer and last_writer[array][0] != kernel.name:
                source, write_offs = last_writer[array]
                edges.append(
                    DependenceEdge(
                        source=source,
                        sink=kernel.name,
                        array=array,
                        kind=FLOW,
                        distances=_distance_set(write_offs, read_offs),
                    )
                )
            readers.setdefault(array, []).append((kernel.name, read_offs))
        for array in kernel.arrays_written():
            write_offs = offsets.get(array, ((), ()))[1]
            if array in last_writer and last_writer[array][0] != kernel.name:
                source, prev_offs = last_writer[array]
                edges.append(
                    DependenceEdge(
                        source=source,
                        sink=kernel.name,
                        array=array,
                        kind=OUTPUT,
                        distances=_distance_set(prev_offs, write_offs),
                    )
                )
            for reader, read_offs in readers.get(array, []):
                if reader != kernel.name:
                    edges.append(
                        DependenceEdge(
                            source=reader,
                            sink=kernel.name,
                            array=array,
                            kind=ANTI,
                            distances=_distance_set(read_offs, write_offs),
                        )
                    )
            readers[array] = []
            last_writer[array] = (kernel.name, write_offs)
    return tuple(edges)


def dependence_graph(ir: ProgramIR) -> nx.DiGraph:
    """Kernel-level digraph over :func:`kernel_dependences` edges.

    Structurally equivalent to :func:`repro.ir.dag.kernel_dag`; edge
    data carries the :class:`DependenceEdge` list for each pair.
    """
    graph = nx.DiGraph()
    for kernel in ir.kernels:
        graph.add_node(kernel.name)
    for edge in kernel_dependences(ir):
        if graph.has_edge(edge.source, edge.sink):
            graph[edge.source][edge.sink]["edges"].append(edge)
        else:
            graph.add_edge(edge.source, edge.sink, edges=[edge])
    return graph


def edges_between(
    ir: ProgramIR, names: Tuple[str, ...]
) -> Tuple[DependenceEdge, ...]:
    """Dependence edges whose endpoints are both in ``names``."""
    members = set(names)
    return tuple(
        edge
        for edge in kernel_dependences(ir)
        if edge.source in members and edge.sink in members
    )


def interposed_kernels(
    ir: ProgramIR, names: Tuple[str, ...]
) -> Tuple[Tuple[str, str, str], ...]:
    """(member_a, outsider, member_b) chains that forbid fusing a and b.

    If a dependence path runs ``a -> ... -> c -> ... -> b`` with ``c``
    outside the fused set, there is no launch schedule in which ``c``
    runs between the fused ``a`` and ``b`` — the fusion is illegal no
    matter the stage order.  Returns the first offending chain per
    (a, b) pair, in deterministic program order.
    """
    members = set(names)
    graph = dependence_graph(ir)
    chains: List[Tuple[str, str, str]] = []
    order = [k.name for k in ir.kernels if k.name in members]
    for i, a in enumerate(order):
        for b in order[i + 1:]:
            for outsider in (k.name for k in ir.kernels):
                if outsider in members:
                    continue
                if nx.has_path(graph, a, outsider) and nx.has_path(
                    graph, outsider, b
                ):
                    chains.append((a, outsider, b))
                    break
    return tuple(chains)


def array_flow_graph(ir: ProgramIR) -> nx.DiGraph:
    """Array-level dataflow graph (``source array -> written array``).

    Used by RL104's cycle detection.  A read of an array the kernel
    itself writes contributes **no** edge only when that kernel is the
    array's *exclusive* writer (a self-contained in-place update);
    when a third kernel also writes the array, the read is a genuine
    cross-kernel input and the edge must stay — dropping it
    unconditionally is exactly the false negative this graph fixes.
    Self-edges (``X -> X``) are never added; in-place hazards are
    RL103's business, not a cycle.
    """
    writers: Dict[str, Set[str]] = {}
    for kernel in ir.kernels:
        for array in kernel.arrays_written():
            writers.setdefault(array, set()).add(kernel.name)
    graph = nx.DiGraph()
    for kernel in ir.kernels:
        written = set(kernel.arrays_written())
        for source in kernel.arrays_read():
            if source in written and writers.get(source, set()) <= {
                kernel.name
            }:
                continue
            for target in written:
                if target != source:
                    graph.add_edge(source, target, kernel=kernel.name)
    return graph
