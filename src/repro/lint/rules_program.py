"""Program-level lint rules (``RL1xx``): DSL and IR static analysis.

Rules in this family run on a parsed :class:`~repro.dsl.ast.Program`
and, once the program validates, on its lowered
:class:`~repro.ir.stencil.ProgramIR` — dependence cycles, in-place
races, halo/bounds violations, liveness, and dtype consistency.  Every
rule stays silent on all ``suite`` benchmarks and shipped ``examples``
(pinned by ``tests/lint/test_silence.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import networkx as nx

from ..dsl.ast import (
    ArrayAccess,
    Assignment,
    LocalDecl,
    Program,
    StencilDef,
    array_accesses,
    span_of,
)
from ..ir.stencil import ProgramIR, StencilInstance
from .diagnostics import Diagnostic, ERROR, INFO, WARNING, rule

RL101 = rule(
    "RL101", "syntax-error", ERROR,
    "the source text does not lex or parse as a DSL program",
)
RL102 = rule(
    "RL102", "invalid-program", ERROR,
    "semantic validation rejected the program",
)
RL103 = rule(
    "RL103", "in-place-race", ERROR,
    "a kernel reads the array it writes at a non-zero offset "
    "(WAR race under in-place update)",
)
RL104 = rule(
    "RL104", "dependence-cycle", ERROR,
    "the array dataflow between kernels forms a cycle",
)
RL105 = rule(
    "RL105", "halo-out-of-bounds", ERROR,
    "a stencil's read halo meets or exceeds the declared array extent",
)
RL106 = rule(
    "RL106", "unused-array", WARNING,
    "a declared array is never accessed by any stencil call or copy list",
)
RL107 = rule(
    "RL107", "dead-write", WARNING,
    "a kernel writes an array that is never read and never copied out",
)
RL108 = rule(
    "RL108", "uninitialized-read", WARNING,
    "a kernel reads an array that is neither copied in nor written "
    "by an earlier kernel",
)
RL109 = rule(
    "RL109", "zero-extent", ERROR,
    "an array resolves to a zero or negative extent",
)
RL110 = rule(
    "RL110", "dtype-mix", WARNING,
    "the program mixes floating-point array dtypes",
)
RL111 = rule(
    "RL111", "directive-wrong-iterator", ERROR,
    "a #pragma/#assign directive names the wrong iterator "
    "(unknown iterator, unroll of the streaming axis, or an iterator "
    "used as an array placement)",
)


# ---------------------------------------------------------------------------
# AST rules — run before semantic validation, so they fire with their
# exact codes even on programs validate would also reject.
# ---------------------------------------------------------------------------


def check_ast(program: Program) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    out.extend(_check_zero_extent(program))
    out.extend(_check_dtype_mix(program))
    out.extend(_check_directives(program))
    return out


def _check_zero_extent(program: Program) -> List[Diagnostic]:
    params = program.parameter_map
    out: List[Diagnostic] = []
    for decl in program.decls:
        if not decl.is_array:
            continue
        for dim in decl.dims:
            extent: Optional[int]
            if isinstance(dim, str):
                extent = params.get(dim)  # unknown param: validate's job
            else:
                extent = dim
            if extent is not None and extent <= 0:
                out.append(
                    Diagnostic(
                        RL109,
                        f"array {decl.name!r} has extent {extent} along "
                        f"dimension {dim!r}",
                        span=span_of(decl),
                    )
                )
                break
    return out


def _check_dtype_mix(program: Program) -> List[Diagnostic]:
    by_dtype: Dict[str, List] = {}
    for decl in program.decls:
        if decl.is_array and decl.dtype in ("float", "double"):
            by_dtype.setdefault(decl.dtype, []).append(decl)
    if len(by_dtype) <= 1:
        return []
    parts = ", ".join(
        f"{dtype} ({', '.join(d.name for d in decls)})"
        for dtype, decls in sorted(by_dtype.items())
    )
    anchor = min(
        (d for decls in by_dtype.values() for d in decls),
        key=lambda d: (span_of(d).line if span_of(d) else 1 << 30),
    )
    return [
        Diagnostic(
            RL110,
            f"arrays mix floating-point dtypes: {parts}",
            span=span_of(anchor),
        )
    ]


def _check_directives(program: Program) -> List[Diagnostic]:
    iterators = set(program.iterators)
    out: List[Diagnostic] = []
    for stencil in program.stencils:
        pragma = stencil.pragma
        if pragma is not None:
            anchor = span_of(pragma) or span_of(stencil)
            if (
                pragma.stream_dim is not None
                and pragma.stream_dim not in iterators
            ):
                out.append(
                    Diagnostic(
                        RL111,
                        f"stencil {stencil.name!r}: #pragma streams along "
                        f"{pragma.stream_dim!r}, which is not a declared "
                        "iterator",
                        span=anchor,
                    )
                )
            for it_name, factor in pragma.unroll:
                if it_name not in iterators:
                    out.append(
                        Diagnostic(
                            RL111,
                            f"stencil {stencil.name!r}: #pragma unrolls "
                            f"{it_name!r}, which is not a declared iterator",
                            span=anchor,
                        )
                    )
                elif it_name == pragma.stream_dim and factor > 1:
                    out.append(
                        Diagnostic(
                            RL111,
                            f"stencil {stencil.name!r}: #pragma unrolls the "
                            f"streaming iterator {it_name!r} (the serial "
                            "sweep cannot be unrolled)",
                            span=anchor,
                        )
                    )
        if stencil.assign is not None:
            anchor = span_of(stencil.assign) or span_of(stencil)
            for name, storage in stencil.assign.placements:
                if name in iterators:
                    out.append(
                        Diagnostic(
                            RL111,
                            f"stencil {stencil.name!r}: #assign places "
                            f"iterator {name!r} in {storage!r} — placements "
                            "take array names, not iterators",
                            span=anchor,
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# IR rules — run after the program validated and lowered.
# ---------------------------------------------------------------------------


def check_ir(program: Program, ir: ProgramIR) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    out.extend(_check_in_place_race(program, ir))
    out.extend(_check_dependence_cycle(program, ir))
    out.extend(_check_halo_bounds(program, ir))
    out.extend(_check_liveness(program, ir))
    return out


def _stencil_span(program: Program, instance: StencilInstance):
    for stencil in program.stencils:
        if stencil.name == instance.stencil_name:
            return span_of(stencil)
    return None


def _check_in_place_race(program: Program, ir: ProgramIR) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for instance in ir.kernels:
        written = set(instance.arrays_written())
        flagged: Set[str] = set()
        for stmt in instance.statements:
            for access in array_accesses(stmt.rhs):
                if access.name not in written or access.name in flagged:
                    continue
                if any(idx.const != 0 for idx in access.indices):
                    flagged.add(access.name)
                    out.append(
                        Diagnostic(
                            RL103,
                            f"kernel {instance.stencil_name!r} updates "
                            f"{access.name!r} in place but reads it at "
                            f"offset {access} — neighbouring threads race "
                            "on the old vs new value",
                            span=_stencil_span(program, instance),
                        )
                    )
        # A center (offset-0) in-place read is the legal pointwise
        # update idiom (e.g. SW4's `up += ...`); only offsets race.
    return out


def _check_dependence_cycle(
    program: Program, ir: ProgramIR
) -> List[Diagnostic]:
    # The dependence engine's array-flow graph drops a read edge only
    # for an array the reading kernel *exclusively* writes (the legal
    # in-place idiom, see RL103).  The earlier pure-input-only graph
    # dropped every self-written read, so a cycle routed through an
    # array that a *third* kernel also writes went undetected.
    from .dependence import array_flow_graph

    graph = array_flow_graph(ir)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return []
    chain = " -> ".join([edge[0] for edge in cycle] + [cycle[0][0]])
    return [
        Diagnostic(
            RL104,
            f"array dataflow between kernels is circular: {chain} — the "
            "stencil DAG cannot be scheduled",
            span=span_of(program.calls[0]) if program.calls else None,
        )
    ]


def _check_halo_bounds(program: Program, ir: ProgramIR) -> List[Diagnostic]:
    from ..ir.analysis import read_halos

    out: List[Diagnostic] = []
    flagged: Set[str] = set()
    for instance in ir.kernels:
        span = _stencil_span(program, instance)
        for array, per_axis in read_halos(ir, instance).items():
            info = ir.array_map.get(array)
            if info is None or info.ndim != ir.ndim or array in flagged:
                continue
            for axis, (lo, hi) in enumerate(per_axis):
                extent = info.shape[axis]
                if lo + hi >= extent:
                    flagged.add(array)
                    out.append(
                        Diagnostic(
                            RL105,
                            f"kernel {instance.stencil_name!r} reads "
                            f"{array!r} with halo -{lo}/+{hi} along axis "
                            f"{axis} ({ir.iterators[axis]}), but the array "
                            f"extent is only {extent} — every interior "
                            "point would read out of bounds",
                            span=span,
                        )
                    )
                    break
    return out


def _check_liveness(program: Program, ir: ProgramIR) -> List[Diagnostic]:
    decl_span = {d.name: span_of(d) for d in program.decls}
    read_by_any: Set[str] = set()
    written_by_any: Set[str] = set()
    for instance in ir.kernels:
        read_by_any.update(instance.arrays_read())
        written_by_any.update(instance.arrays_written())

    out: List[Diagnostic] = []
    copyin = set(ir.copyin)
    copyout = set(ir.copyout)

    # RL106: declared arrays never touched at all.
    for info in ir.arrays:
        name = info.name
        if (
            name not in read_by_any
            and name not in written_by_any
            and name not in copyin
            and name not in copyout
        ):
            out.append(
                Diagnostic(
                    RL106,
                    f"array {name!r} is declared but never read, written, "
                    "or copied",
                    span=decl_span.get(name),
                )
            )

    # RL107: values produced and then dropped.
    for name in sorted(written_by_any):
        if name not in read_by_any and name not in copyout:
            out.append(
                Diagnostic(
                    RL107,
                    f"array {name!r} is written but never read and never "
                    "copied out — the kernel's work is dead",
                    span=decl_span.get(name),
                )
            )

    # RL108: values consumed before anything produced them.  For
    # iterative programs any kernel's write counts (the previous time
    # step initializes it); for single-sweep programs only *earlier*
    # kernels count.
    initialized: Set[str] = set(copyin)
    if ir.is_iterative:
        initialized |= written_by_any
    flagged: Set[str] = set()
    for instance in ir.kernels:
        for name in instance.arrays_read():
            if name in initialized or name in flagged:
                continue
            if ir.array_map.get(name) is None:
                continue
            flagged.add(name)
            out.append(
                Diagnostic(
                    RL108,
                    f"kernel {instance.stencil_name!r} reads {name!r}, "
                    "which is neither in copyin nor written by an earlier "
                    "kernel — the first sweep consumes garbage",
                    span=decl_span.get(name),
                )
            )
        initialized.update(instance.arrays_written())
    return out
