"""Plan-level lint rules (``RL2xx``): kernel-plan legality prescreen.

:func:`check_plan` is the full catalog pass used by ``repro lint`` and
tests; :func:`plan_rejection` is the fast short-circuit path the
evaluation engine runs before simulating a candidate (first error wins),
and :func:`classify_occupancy_failure` maps the occupancy model's
structured :class:`~repro.resilience.errors.InfeasiblePlanError` context
onto stable rule codes so the simulator's prescreen rejections and the
lint CLI speak the same language.

Resource feasibility (shmem capacity, register file, thread limits) is
delegated to the same :func:`~repro.gpu.simulator.plan_occupancy`
arithmetic the simulator itself runs — the lint layer adds *structural*
rules (fusion order, time tiling, streaming unroll) and classification,
never a second resource model that could drift.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from ..codegen.plan import KernelPlan
from ..ir.stencil import ProgramIR
from .diagnostics import Diagnostic, ERROR, INFO, WARNING, rule

RL201 = rule(
    "RL201", "shmem-capacity", ERROR,
    "the plan's shared-memory footprint exceeds the device's per-block "
    "or per-SM capacity",
)
RL202 = rule(
    "RL202", "thread-limit", ERROR,
    "the thread block exceeds the device's threads-per-block limit",
)
RL203 = rule(
    "RL203", "register-file", ERROR,
    "the plan's register demand exceeds the per-thread limit or admits "
    "zero blocks per SM",
)
RL204 = rule(
    "RL204", "plan-invalid", ERROR,
    "the plan is structurally illegal for this program "
    "(unknown kernel, illegal retiming or register placement)",
)
RL205 = rule(
    "RL205", "overtile", WARNING,
    "a block tile (threads x unroll) exceeds the domain extent along "
    "some axis — part of every block is idle",
)
RL206 = rule(
    "RL206", "fusion-order", ERROR,
    "the plan fuses kernels in an order that contradicts the program's "
    "dependence DAG",
)
RL207 = rule(
    "RL207", "time-tile-non-iterative", ERROR,
    "the plan applies time tiling to a non-iterative program",
)
RL208 = rule(
    "RL208", "unroll-indivisible", WARNING,
    "a tile extent does not divide the domain extent — remainder "
    "blocks run partially masked",
)
RL209 = rule(
    "RL209", "stream-axis-unroll", ERROR,
    "the plan unrolls the streaming axis (the serial sweep advances "
    "one plane at a time)",
)
RL210 = rule(
    "RL210", "stream-lookahead", INFO,
    "a fused consumer reads a produced intermediate ahead of the "
    "streaming sweep front",
)


def _plan_artifact(plan: KernelPlan) -> str:
    return "plan(" + ",".join(plan.kernel_names) + ")"


def classify_occupancy_failure(exc: BaseException) -> str:
    """Map an occupancy/prescreen failure onto a stable rule code.

    Reads the structured ``context`` carried by the resilience taxonomy
    (falling through to ``__cause__`` for wrapped errors).  Unknown
    shapes classify as RL202 — a launch-geometry problem is the most
    common root cause.
    """
    context = {}
    for err in (exc, getattr(exc, "__cause__", None)):
        ctx = getattr(err, "context", None)
        if ctx:
            context = ctx
            break
    if "threads" in context:
        return RL202.code
    if "shmem_bytes" in context:
        return RL201.code
    if "registers" in context:
        return RL203.code
    limiter = context.get("limiter")
    if limiter == "shmem":
        return RL201.code
    if limiter == "registers":
        return RL203.code
    return RL202.code


_OCCUPANCY_RULES = {RL201.code: RL201, RL202.code: RL202, RL203.code: RL203}


def _count_rejection(code: str) -> None:
    """``lint.reject.<code>`` counter for prescreen rejections.

    Resource codes are counted at the occupancy layer itself (see
    :func:`repro.gpu.simulator.plan_occupancy`); this helper covers the
    structural/validation codes that never reach it.
    """
    from ..obs import counter, metrics_enabled

    if metrics_enabled():
        counter(f"lint.reject.{code}").add()


def _shape_findings(
    ir: ProgramIR, plan: KernelPlan
) -> List[Diagnostic]:
    """RL207/RL209 — nonsensical plan shapes.

    Catalog-only: the pricing model accepts and prices these shapes, so
    the evaluation engine must too (its contract is bit-for-bit
    equivalence with the direct ``validate_plan`` + ``simulate`` path);
    ``check_plan`` and the CLI flag them as errors.
    """
    artifact = _plan_artifact(plan)
    out: List[Diagnostic] = []

    if plan.time_tile > 1 and not ir.is_iterative:
        out.append(
            Diagnostic(
                RL207,
                f"plan time-tiles {plan.time_tile} steps but the program "
                "is single-sweep (no 'iterate' clause)",
                artifact=artifact,
            )
        )

    if plan.uses_streaming and plan.unroll_factor(plan.stream_axis) > 1:
        axis = plan.stream_axis
        name = ir.iterators[axis] if axis < ir.ndim else str(axis)
        out.append(
            Diagnostic(
                RL209,
                f"plan streams along axis {axis} ({name}) but also "
                f"unrolls it x{plan.unroll_factor(axis)}",
                artifact=artifact,
            )
        )
    return out


def _fusion_findings(
    ir: ProgramIR, plan: KernelPlan
) -> List[Diagnostic]:
    """Transformation legality — certified (RL3xx) or structural (RL206).

    With the dependence certifier on (the default) every transformation
    the plan encodes is proven against exact dependence distances and
    refutations come back as RL301-RL304 with counterexample witnesses
    (:mod:`repro.lint.rules_transform`).  With it off, the legacy
    structural RL206 pass runs: DAG edge direction plus a distance check
    for concurrent streaming (so a DAG-consistent order that races a
    nonzero cross-kernel offset along the streamed axis is still
    flagged).  RL206 defers entirely when the certifier is on — the two
    paths never double-report one violation.

    Unlike the shape rules this one *does* reject in the engine: a
    fused launch that runs a consumer before its producer prices
    meaningless dataflow, and no tuner ever generates one.
    """
    from .rules_transform import certifier_enabled, certify_plan_transformations

    if certifier_enabled():
        return certify_plan_transformations(ir, plan)
    return _legacy_fusion_findings(ir, plan)


def _legacy_fusion_findings(
    ir: ProgramIR, plan: KernelPlan
) -> List[Diagnostic]:
    artifact = _plan_artifact(plan)
    out: List[Diagnostic] = []
    if len(plan.kernel_names) > 1:
        try:
            order = [ir.kernel(name).name for name in plan.kernel_names]
        except KeyError:
            order = []
        if order:
            from ..ir.dag import kernel_dag

            dag = kernel_dag(ir)
            for i in range(len(order)):
                for j in range(i + 1, len(order)):
                    if nx.has_path(dag, order[j], order[i]):
                        out.append(
                            Diagnostic(
                                RL206,
                                f"plan fuses {order[i]!r} before "
                                f"{order[j]!r}, but the dependence DAG "
                                f"requires {order[j]!r} to run first",
                                artifact=artifact,
                            )
                        )
                        return out
            out.extend(_legacy_stream_distance_findings(ir, plan, artifact))
    return out


def _legacy_stream_distance_findings(
    ir: ProgramIR, plan: KernelPlan, artifact: str
) -> List[Diagnostic]:
    """Distance-aware half of legacy RL206: DAG-consistent fusion that
    chunk-races a nonzero (or unknown) cross-kernel offset along the
    concurrently streamed axis."""
    from ..codegen.plan import STREAM_CONCURRENT
    from .dependence import FLOW, edges_between

    if plan.streaming != STREAM_CONCURRENT or plan.concurrent_chunks <= 1:
        return []
    axis = plan.stream_axis
    if axis >= ir.ndim:
        return []
    for edge in edges_between(ir, plan.kernel_names):
        if edge.kind != FLOW:
            continue
        components = edge.axis_distances(axis)
        offending = [c for c in components if c is None or c != 0]
        if offending:
            shown = offending[0]
            return [
                Diagnostic(
                    RL206,
                    f"plan fuses {edge.source!r} with {edge.sink!r} in "
                    "DAG order, but streaming them in "
                    f"{plan.concurrent_chunks} concurrent chunks races "
                    f"the flow dependence through {edge.array!r} "
                    f"({'unknown' if shown is None else f'distance {shown}'} "
                    f"along axis {axis})",
                    artifact=artifact,
                )
            ]
    return []


def _resource_findings(
    ir: ProgramIR, plan: KernelPlan, device
) -> List[Diagnostic]:
    """RL201/RL202/RL203 via the simulator's own occupancy arithmetic."""
    from ..gpu.simulator import PlanInfeasible, plan_occupancy

    try:
        plan_occupancy(ir, plan, device)
    except PlanInfeasible as exc:
        code = classify_occupancy_failure(exc)
        return [
            Diagnostic(
                _OCCUPANCY_RULES[code],
                str(exc),
                artifact=_plan_artifact(plan),
            )
        ]
    return []


def _advisory_findings(
    ir: ProgramIR, plan: KernelPlan
) -> List[Diagnostic]:
    """RL205/RL208/RL210 — legal but noteworthy plan shapes."""
    artifact = _plan_artifact(plan)
    out: List[Diagnostic] = []
    try:
        domain = ir.domain_shape()
    except ValueError:
        return out

    for axis in plan.tiled_axes(ir.ndim):
        tile = plan.tile_extent(axis, ir.ndim)
        extent = domain[axis]
        if tile > extent:
            out.append(
                Diagnostic(
                    RL205,
                    f"tile of {tile} points along axis {axis} "
                    f"({ir.iterators[axis]}) exceeds the domain extent "
                    f"{extent} — {tile - extent} of every block's points "
                    "are wasted",
                    artifact=artifact,
                )
            )
        elif extent % tile != 0:
            out.append(
                Diagnostic(
                    RL208,
                    f"tile of {tile} points along axis {axis} "
                    f"({ir.iterators[axis]}) does not divide the domain "
                    f"extent {extent} — the last block runs "
                    f"{tile - extent % tile} masked lanes",
                    artifact=artifact,
                )
            )

    if plan.uses_streaming and len(plan.kernel_names) > 1:
        out.extend(_lookahead_findings(ir, plan, artifact))

    from .rules_transform import certification_advisories, certifier_enabled

    if certifier_enabled():
        out.extend(certification_advisories(ir, plan))
    return out


def _lookahead_findings(
    ir: ProgramIR, plan: KernelPlan, artifact: str
) -> List[Diagnostic]:
    from ..ir.analysis import read_halos

    out: List[Diagnostic] = []
    produced: set = set()
    for name in plan.kernel_names:
        try:
            instance = ir.kernel(name)
        except KeyError:
            return out
        halos = read_halos(ir, instance)
        for array in instance.arrays_read():
            if array not in produced:
                continue
            per_axis = halos.get(array)
            if per_axis is None or plan.stream_axis >= len(per_axis):
                continue
            hi = per_axis[plan.stream_axis][1]
            if hi > 0:
                out.append(
                    Diagnostic(
                        RL210,
                        f"fused kernel {name!r} reads intermediate "
                        f"{array!r} {hi} plane(s) ahead of the streaming "
                        "sweep — the generator must delay the consumer "
                        f"by {hi} iteration(s)",
                        artifact=artifact,
                    )
                )
        produced.update(instance.arrays_written())
    return out


def check_plan(
    ir: ProgramIR,
    plan: KernelPlan,
    device=None,
    assume_validated: bool = False,
):
    """Run the full plan-rule catalog; returns a ``LintReport``.

    ``assume_validated`` skips the RL204 ``validate_plan`` pass when the
    caller (e.g. the evaluation engine) has already run it.
    """
    from ..gpu.device import P100
    from .diagnostics import LintReport

    if device is None:
        device = P100
    artifact = _plan_artifact(plan)
    findings: List[Diagnostic] = []

    # Transformation certification first: RL3xx refutations explain *why*
    # a plan is illegal (with a witness), and they must surface even for
    # shapes whose stage construction ``validate_plan`` refuses outright
    # (e.g. a multi-kernel time tile).
    findings.extend(_fusion_findings(ir, plan))

    if not assume_validated:
        from ..codegen.resources import InvalidPlan, validate_plan

        try:
            validate_plan(ir, plan)
        except InvalidPlan as exc:
            findings.append(
                Diagnostic(RL204, str(exc), artifact=artifact)
            )
            return LintReport(tuple(findings), artifact=artifact)

    findings.extend(_shape_findings(ir, plan))
    if not findings:
        findings.extend(_resource_findings(ir, plan, device))
    findings.extend(_advisory_findings(ir, plan))
    return LintReport(tuple(findings), artifact=artifact)


def fusion_rejection(ir: ProgramIR, plan: KernelPlan) -> Optional[Diagnostic]:
    """The structural (grid-independent) half of :func:`plan_rejection`.

    Transformation legality depends only on family-stable plan fields
    (``kernel_names``, ``time_tile``, ``streaming``, ``stream_axis``,
    ``concurrent_chunks``, ``retime``) — never on the block shape,
    unroll factors or register cap — so the evaluation engine probes it
    once per plan *family* and reuses the finding (an RL3xx
    certification refutation, or legacy RL206 when the certifier is
    off) for every lane, instead of re-certifying per candidate.  (The
    per-candidate ``lint.reject.*`` counter still fires at rejection
    time, not here.)
    """
    fusion = _fusion_findings(ir, plan)
    return fusion[0] if fusion else None


def plan_rejection(
    ir: ProgramIR,
    plan: KernelPlan,
    device=None,
    assume_validated: bool = True,
) -> Optional[Diagnostic]:
    """First error-severity finding for a plan, or None if launchable.

    The evaluation engine's prescreen: cheap structural rules first,
    then the memoized occupancy arithmetic.  Advisory (warning/info)
    rules never reject — they cannot change which plan wins, only how
    fast the search converges, so the tuners handle them separately.
    """
    from ..gpu.device import P100

    if device is None:
        device = P100
    if not assume_validated:
        from ..codegen.resources import InvalidPlan, validate_plan

        try:
            validate_plan(ir, plan)
        except InvalidPlan as exc:
            _count_rejection(RL204.code)
            return Diagnostic(
                RL204, str(exc), artifact=_plan_artifact(plan)
            )
    fusion = _fusion_findings(ir, plan)
    if fusion:
        _count_rejection(fusion[0].code)
        return fusion[0]
    resource = _resource_findings(ir, plan, device)
    if resource:
        return resource[0]
    return None
