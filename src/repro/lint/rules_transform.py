"""Transformation certification rules (``RL3xx``).

Every transformation a :class:`~repro.codegen.plan.KernelPlan` encodes —
fusion groups, time tiling, streaming, retiming — is *certified* against
the exact dependence distances of :mod:`repro.lint.dependence`, or
refuted with a concrete :class:`~repro.lint.dependence.Witness` (a grid
point plus the pair of reference-executor events whose values the broken
schedule confuses; :func:`repro.lint.witness.replay_witness` confirms
the divergence numerically).

The certifier is **pure in the plan**: every field it reads
(``kernel_names``, ``time_tile``, ``streaming``, ``stream_axis``,
``concurrent_chunks``, ``retime``) is part of the structural family key,
so the evaluation engine probes it once per family and distributed
shards, memo-cache replays and the CLI all derive byte-identical
diagnostics for the same plan.

Conservatism contract: the certifier may *refute* a plan the block-tiled
executor would in fact compute correctly (it refuses to assume the
generator's cross-chunk recompute overlap), but it must never *accept* a
plan whose executor output diverges from the reference — the Hypothesis
differential suite enforces exactly that asymmetry.

Scope notes (winner-stability guarantees):

* tuners only emit single-kernel launches (program-level fusion happens
  in the IR via ``maxfuse``), so the cross-kernel rules RL301/RL303/
  RL304 can never reject a tuner-generated candidate;
* single-kernel time tiling is certified via the same
  :func:`~repro.codegen.tiling.pingpong_pair` probe the pricing model
  itself requires, so anything the model prices, the certifier accepts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional, Tuple

from ..codegen.plan import STREAM_CONCURRENT, KernelPlan
from ..ir.stencil import ProgramIR
from .dependence import (
    ANTI,
    FLOW,
    DependenceEdge,
    Witness,
    edges_between,
    interposed_kernels,
    kernel_dependences,
)
from .diagnostics import Diagnostic, ERROR, INFO, rule

RL301 = rule(
    "RL301", "illegal-fusion", ERROR,
    "the fused launch orders kernels against a dependence edge, or fuses "
    "across a kernel that must run between its members",
)
RL302 = rule(
    "RL302", "illegal-time-tile", ERROR,
    "the launch time-tiles an iterative program it cannot replay: "
    "multiple fused instances, or no ping-pong pair to carry steps",
)
RL303 = rule(
    "RL303", "illegal-stream", ERROR,
    "concurrent streaming chunks race on a cross-kernel dependence with "
    "nonzero or unknown distance along the streamed axis",
)
RL304 = rule(
    "RL304", "retiming-violation", ERROR,
    "retiming cannot reconcile the fused kernels: a cross-kernel "
    "dependence has unknown distance along the streamed axis, so no "
    "finite consumer delay is correct",
)
RL305 = rule(
    "RL305", "fusion-unprofitable", INFO,
    "the fused kernels share no dependence — fusion is legal but "
    "exploits no producer-consumer reuse",
)

#: Process-global certifier switch.  On by default; ``repro bench`` and
#: the overhead benchmark flip it off to measure the legacy prescreen.
_ENABLED = True


def certifier_enabled() -> bool:
    return _ENABLED


def set_certification_enabled(on: bool) -> bool:
    """Flip the certifier; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


@contextmanager
def certification_disabled():
    """Run a block under the legacy structural prescreen (RL206 only)."""
    previous = set_certification_enabled(False)
    try:
        yield
    finally:
        set_certification_enabled(previous)


# ---------------------------------------------------------------------------
# witness construction (deterministic, geometry-only: no execution here)
# ---------------------------------------------------------------------------


def _representative(edge: DependenceEdge):
    """One distance vector for messages/witnesses: fully-known first."""
    for vector in edge.distances:
        if None not in vector:
            return vector
    return edge.distances[0] if edge.distances else ()


def _witness_point(
    ir: ProgramIR, array: str, stream_axis: Optional[int] = None,
    stream_coord: Optional[int] = None,
) -> Tuple[int, ...]:
    """A deterministic interior cell of ``array`` (domain centre), with
    an optional pinned coordinate along the streamed axis."""
    shape = ir.array_map[array].shape
    point = [extent // 2 for extent in shape]
    if stream_axis is not None and stream_axis < len(point):
        coord = point[stream_axis] if stream_coord is None else stream_coord
        point[stream_axis] = max(0, min(shape[stream_axis] - 1, coord))
    return tuple(point)


def _event_pair(edge: DependenceEdge) -> Tuple[Tuple[int, str], Tuple[int, str]]:
    """(required, observed) reference events whose values differ.

    The writer kernel of the dependence changes ``array[point]``; the
    refuted schedule reads the cell on the wrong side of that write.
    """
    if edge.kind == FLOW:
        return (0, f"after:{edge.source}"), (0, f"before:{edge.source}")
    if edge.kind == ANTI:
        return (0, f"before:{edge.sink}"), (0, f"after:{edge.sink}")
    return (0, f"after:{edge.sink}"), (0, f"after:{edge.source}")


def _edge_witness(
    ir: ProgramIR,
    edge: DependenceEdge,
    note: str,
    stream_axis: Optional[int] = None,
    stream_coord: Optional[int] = None,
) -> Witness:
    required, observed = _event_pair(edge)
    distance = _representative(edge)
    axis = stream_axis
    return Witness(
        array=edge.array,
        point=_witness_point(ir, edge.array, stream_axis, stream_coord),
        source=edge.source,
        sink=edge.sink,
        kind=edge.kind,
        axis=axis,
        distance=tuple(distance),
        required_event=required,
        observed_event=observed,
        note=note,
    )


def _time_tile_witness(ir: ProgramIR, kernel: str, note: str) -> Witness:
    """Step-0-vs-step-1 witness: a time-tiled launch must reproduce two
    reference applications; the broken launch re-reads step 0's input."""
    from ..gpu.executor import program_pingpong

    try:
        array, _ = program_pingpong(ir)
    except ValueError:
        array = ir.kernels[-1].arrays_written()[-1]
    last = ir.kernels[-1].name
    return Witness(
        array=array,
        point=_witness_point(ir, array),
        source=kernel,
        sink=kernel,
        kind=FLOW,
        axis=None,
        distance=(),
        required_event=(1, f"after:{last}"),
        observed_event=(0, f"after:{last}"),
        note=note,
    )


# ---------------------------------------------------------------------------
# certification
# ---------------------------------------------------------------------------


def _artifact(plan: KernelPlan) -> str:
    return "plan(" + ",".join(plan.kernel_names) + ")"


def certify_plan_transformations(
    ir: ProgramIR, plan: KernelPlan
) -> List[Diagnostic]:
    """Error-severity refutations (RL301-RL304), at most one per rule.

    Plans naming unknown kernels return no findings — that is RL204's
    (``validate_plan``'s) territory and certification would only guess.
    """
    try:
        for name in plan.kernel_names:
            ir.kernel(name)
    except KeyError:
        return []
    artifact = _artifact(plan)
    out: List[Diagnostic] = []

    finding = _certify_fusion(ir, plan, artifact)
    if finding is not None:
        out.append(finding)
    finding = _certify_time_tile(ir, plan, artifact)
    if finding is not None:
        out.append(finding)
    finding = _certify_streaming(ir, plan, artifact)
    if finding is not None:
        out.append(finding)
    finding = _certify_retiming(ir, plan, artifact)
    if finding is not None:
        out.append(finding)
    return out


def _certify_fusion(
    ir: ProgramIR, plan: KernelPlan, artifact: str
) -> Optional[Diagnostic]:
    names = plan.kernel_names
    if len(names) <= 1:
        return None
    position = {name: index for index, name in enumerate(names)}
    for edge in edges_between(ir, names):
        if position[edge.sink] < position[edge.source]:
            witness = _edge_witness(
                ir,
                edge,
                note=(
                    f"stage order runs {edge.sink!r} before "
                    f"{edge.source!r}, so the {edge.kind} dependence "
                    f"through {edge.array!r} reads the wrong side of the "
                    "write"
                ),
            )
            return Diagnostic(
                RL301,
                f"plan fuses {edge.sink!r} before {edge.source!r}, but "
                f"the {edge.kind} dependence through {edge.array!r} "
                f"(distance {_fmt(_representative(edge))}) requires "
                f"{edge.source!r} to run first",
                artifact=artifact,
                witness=witness,
            )
    for a, outsider, b in interposed_kernels(ir, names):
        edge = _first_outgoing(ir, outsider)
        witness = None
        if edge is not None:
            witness = _edge_witness(
                ir,
                edge,
                note=(
                    f"the launch excludes {outsider!r}, so fused "
                    f"consumers observe {edge.array!r} on the wrong side "
                    f"of {outsider!r}'s update no matter where the "
                    "launch is scheduled"
                ),
            )
        return Diagnostic(
            RL301,
            f"plan fuses {a!r} with {b!r}, but kernel {outsider!r} must "
            "run between them — no launch schedule can interleave an "
            "excluded kernel inside a fused launch",
            artifact=artifact,
            witness=witness,
        )
    return None


def _first_outgoing(ir: ProgramIR, kernel: str) -> Optional[DependenceEdge]:
    for edge in kernel_dependences(ir):
        if edge.source == kernel or edge.sink == kernel:
            return edge
    return None


def _certify_time_tile(
    ir: ProgramIR, plan: KernelPlan, artifact: str
) -> Optional[Diagnostic]:
    if plan.time_tile <= 1 or not ir.is_iterative:
        # Non-iterative time tiling is RL207's catalog-only territory:
        # the pricing model prices it, so certification stays silent.
        return None
    if len(plan.kernel_names) > 1:
        witness = _time_tile_witness(
            ir,
            plan.kernel_names[0],
            note=(
                f"time tiling x{plan.time_tile} replicates a single "
                "instance; a multi-kernel launch has no single stage to "
                "replicate, so step 1 re-reads step 0's input"
            ),
        )
        return Diagnostic(
            RL302,
            f"plan time-tiles {plan.time_tile} steps over "
            f"{len(plan.kernel_names)} fused kernels — temporal "
            "replication applies to exactly one instance",
            artifact=artifact,
            witness=witness,
        )
    from ..codegen.tiling import pingpong_pair

    instance = ir.kernel(plan.kernel_names[0])
    try:
        pingpong_pair(ir, instance)
    except ValueError:
        witness = _time_tile_witness(
            ir,
            instance.name,
            note=(
                f"kernel {instance.name!r} has no ping-pong input, so "
                "the fused second application cannot consume the first's "
                "output"
            ),
        )
        return Diagnostic(
            RL302,
            f"plan time-tiles {plan.time_tile} steps but kernel "
            f"{instance.name!r} has no ping-pong pair to carry values "
            "between fused applications",
            artifact=artifact,
            witness=witness,
        )
    return None


def _certify_streaming(
    ir: ProgramIR, plan: KernelPlan, artifact: str
) -> Optional[Diagnostic]:
    if (
        plan.streaming != STREAM_CONCURRENT
        or plan.concurrent_chunks <= 1
        or len(plan.kernel_names) <= 1
    ):
        return None
    axis = plan.stream_axis
    if axis >= ir.ndim:
        return None  # RL204's territory
    for edge in edges_between(ir, plan.kernel_names):
        if edge.kind != FLOW:
            continue
        components = edge.axis_distances(axis)
        if any(c is None or c != 0 for c in components):
            extent = ir.domain_shape()[axis]
            boundary = extent // plan.concurrent_chunks
            witness = _edge_witness(
                ir,
                edge,
                note=(
                    f"chunks sweep axis {axis} independently; at the "
                    f"chunk boundary plane {boundary} the consumer's "
                    "read crosses into a chunk whose producer plane is "
                    "not yet written"
                ),
                stream_axis=axis,
                stream_coord=boundary,
            )
            shown = next(
                (c for c in components if c is None or c != 0), None
            )
            return Diagnostic(
                RL303,
                f"plan streams {plan.concurrent_chunks} concurrent "
                f"chunks along axis {axis} ({ir.iterators[axis]}), but "
                f"the flow dependence {edge.source!r} -> {edge.sink!r} "
                f"through {edge.array!r} has "
                f"{'unknown' if shown is None else f'distance {shown}'} "
                "along that axis — chunk boundaries race",
                artifact=artifact,
                witness=witness,
            )
    return None


def _certify_retiming(
    ir: ProgramIR, plan: KernelPlan, artifact: str
) -> Optional[Diagnostic]:
    if not plan.retime or len(plan.kernel_names) <= 1:
        return None
    if not plan.uses_streaming:
        return None  # RL204: retiming requires streaming
    axis = plan.stream_axis
    if axis >= ir.ndim:
        return None
    for edge in edges_between(ir, plan.kernel_names):
        if edge.kind != FLOW:
            continue
        if edge.has_unknown(axis):
            extent = ir.domain_shape()[axis]
            witness = _edge_witness(
                ir,
                edge,
                note=(
                    "retiming delays the consumer by the dependence "
                    f"distance along axis {axis}, but the subscript is "
                    "not uniform there — no constant delay reads the "
                    "right plane at every sweep position"
                ),
                stream_axis=axis,
                stream_coord=extent - 1,
            )
            return Diagnostic(
                RL304,
                f"plan retimes the fused launch along axis {axis} "
                f"({ir.iterators[axis]}), but the flow dependence "
                f"{edge.source!r} -> {edge.sink!r} through "
                f"{edge.array!r} has unknown distance along that axis — "
                "no finite consumer delay is correct",
                artifact=artifact,
                witness=witness,
            )
    return None


def certification_advisories(
    ir: ProgramIR, plan: KernelPlan
) -> List[Diagnostic]:
    """RL305 — legal-but-unprofitable fusion (never rejects)."""
    names = plan.kernel_names
    if len(names) <= 1:
        return []
    try:
        for name in names:
            ir.kernel(name)
    except KeyError:
        return []
    if edges_between(ir, names):
        return []
    return [
        Diagnostic(
            RL305,
            f"fused kernels {', '.join(repr(n) for n in names)} share no "
            "dependence — fusion is legal but saves no intermediate "
            "traffic",
            artifact=_artifact(plan),
        )
    ]


def _fmt(vector) -> str:
    return "(" + ",".join("?" if d is None else str(d) for d in vector) + ")"
