"""The lint driver: source text -> :class:`LintReport`.

``lint_source`` is the one-stop entry point the CLI and CI use; it runs
the stages in dependency order and degrades gracefully — a program that
does not parse yields exactly one RL101, a program that parses but does
not validate yields RL102 plus whatever AST-level rules still fire, and
only a lowerable program reaches the IR rules.

``extract_dsl_blocks`` pulls DSL programs out of Python sources (the
shipped ``examples/`` keep their specifications in triple-quoted
strings) without importing — examples execute full tuning runs at
import time.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from ..dsl import parser
from ..dsl.ast import Program, SourceSpan
from ..dsl.errors import LexError, ParseError, ValidationError
from ..dsl.validate import validate_program
from .diagnostics import Diagnostic, LintReport
from .rules_program import RL101, RL102, check_ast, check_ir


def lint_program(program: Program, artifact: str = "<dsl>") -> LintReport:
    """Lint an already-parsed program (AST rules, validation, IR rules)."""
    findings: List[Diagnostic] = list(check_ast(program))
    try:
        validate_program(program)
    except ValidationError as exc:
        findings.append(
            Diagnostic(
                RL102,
                exc.message,
                span=SourceSpan(exc.line, exc.col) if exc.line else None,
            )
        )
        return _finish(findings, artifact)
    try:
        from ..ir.stencil import build_ir

        ir = build_ir(program)
    except Exception as exc:  # pragma: no cover - validate should gate this
        findings.append(Diagnostic(RL102, f"IR lowering failed: {exc}"))
        return _finish(findings, artifact)
    findings.extend(check_ir(program, ir))
    return _finish(findings, artifact)


def lint_source(source: str, artifact: str = "<dsl>") -> LintReport:
    """Lint DSL source text end to end."""
    from ..obs import span as _span

    with _span("lint", artifact=artifact):
        try:
            program = parser.parse(source, validate=False)
        except (LexError, ParseError) as exc:
            finding = Diagnostic(
                RL101,
                exc.message,
                span=SourceSpan(exc.line, exc.col) if exc.line else None,
            )
            return _finish([finding], artifact)
        return lint_program(program, artifact=artifact)


def _finish(findings: List[Diagnostic], artifact: str) -> LintReport:
    stamped = tuple(
        d if d.artifact == artifact else _restamp(d, artifact)
        for d in findings
    )
    report = LintReport(stamped, artifact=artifact).sorted()
    report.publish()
    return report


def _restamp(d: Diagnostic, artifact: str) -> Diagnostic:
    return Diagnostic(
        d.rule, d.message, span=d.span, artifact=artifact, witness=d.witness
    )


# ---------------------------------------------------------------------------
# DSL extraction from Python sources
# ---------------------------------------------------------------------------

#: A triple-quoted string literal (either quote style), non-greedy.
_TRIPLE_QUOTED = re.compile(
    r'("""(?P<a>.*?)"""|\'\'\'(?P<b>.*?)\'\'\')', re.DOTALL
)

#: What makes a string a DSL program rather than a docstring: it must
#: declare iterators, define a stencil, and copy something out — all at
#: the start of a line, the way specifications are written.
_DSL_MARKERS = (
    re.compile(r"^\s*iterator\s+\w", re.MULTILINE),
    re.compile(r"^\s*stencil\s+\w", re.MULTILINE),
    re.compile(r"^\s*copyout\s+\w", re.MULTILINE),
)


def extract_dsl_blocks(text: str) -> List[Tuple[int, str]]:
    """``(start_line, dsl_source)`` for each DSL block in a Python file."""
    blocks: List[Tuple[int, str]] = []
    for match in _TRIPLE_QUOTED.finditer(text):
        body = match.group("a")
        if body is None:
            body = match.group("b")
        if all(marker.search(body) for marker in _DSL_MARKERS):
            start_line = text.count("\n", 0, match.start()) + 1
            blocks.append((start_line, body))
    return blocks
