"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

* ``characteristics <spec.dsl | benchmark>`` — print the Table-I-style
  characteristics of a specification.
* ``optimize <spec.dsl | benchmark>``        — run the full ARTEMIS flow
  and print the optimization report.
* ``cuda <spec.dsl | benchmark>``            — emit the baseline CUDA.
* ``profile <spec.dsl | benchmark>``         — profile the baseline and
  print the nvprof-style metrics plus the roofline verdicts.
* ``suite``                                  — list the 11 built-in
  benchmarks.
* ``deep-tune <benchmark> [-T N]``           — deep-tune an iterative
  benchmark and print the fusion schedule for N iterations.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional

from .codegen.generator import generate_baseline, lower
from .gpu.device import DEVICES, DeviceSpec, P100
from .ir.analysis import characteristics
from .obs import (
    configure_metrics,
    configure_tracing,
    get_metrics,
    get_tracer,
    write_trace,
)
from .pipeline import format_report, optimize
from .profiling import classify_result, profile
from .resilience import (
    ON_ERROR_POLICIES,
    ReproError,
    RetryPolicy,
    TuningJournal,
    UsageError,
)
from .suite import BENCHMARKS, get as get_benchmark
from .tuning import PlanEvaluator


def _load(source: str):
    """Resolve a positional argument: a benchmark name or a DSL file."""
    if source in BENCHMARKS:
        return get_benchmark(source).ir()
    path = Path(source)
    if not path.exists():
        raise SystemExit(
            f"error: {source!r} is neither a built-in benchmark "
            f"({', '.join(BENCHMARKS)}) nor a file"
        )
    return lower(path.read_text())


def _device(name: str) -> DeviceSpec:
    try:
        return DEVICES[name]
    except KeyError:
        raise SystemExit(
            f"error: unknown device {name!r}; available: "
            f"{', '.join(DEVICES)}"
        ) from None


def _obs_begin(args) -> None:
    """Enable tracing/metrics before a command when its flags ask for it."""
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if trace_path:
        configure_tracing(True, clear=True)
    if trace_path or want_metrics:
        configure_metrics(True, reset=True)


def _obs_finish(args) -> None:
    """Write the trace file / print metrics, then disable collection."""
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if trace_path:
        write_trace(trace_path, fmt=getattr(args, "trace_format", "chrome"))
        spans = len(get_tracer().finished())
        print(f"trace: {spans} spans written to {trace_path}", file=sys.stderr)
    if want_metrics:
        _print_metrics()
    if trace_path:
        configure_tracing(False)
    if trace_path or want_metrics:
        configure_metrics(False)


def _print_metrics() -> None:
    snapshot = get_metrics().snapshot()
    print("\npipeline metrics:")
    if not snapshot:
        print("  (none recorded)")
        return
    for name, data in snapshot.items():
        kind = data["type"]
        if kind == "histogram":
            print(
                f"  {name:36s} count={data['count']} sum={data['sum']:.6f} "
                f"min={data['min']:.6f} max={data['max']:.6f}"
            )
        else:
            value = data["value"]
            rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
            print(f"  {name:36s} {rendered}")


def _fault_injector_from_env():
    """Chaos-mode fault injector, armed by environment variables.

    ``REPRO_CHAOS_RATE`` (a fraction) turns injection on;
    ``REPRO_CHAOS_SEED``, ``REPRO_CHAOS_KIND`` and
    ``REPRO_CHAOS_TRANSIENT`` refine it.  CI's chaos job drives seeded
    fault injection through real CLI runs this way (``docs/robustness.md``).
    """
    rate = os.environ.get("REPRO_CHAOS_RATE")
    if not rate:
        return None
    from .resilience import FaultInjector

    return FaultInjector(
        rate=float(rate),
        seed=int(os.environ.get("REPRO_CHAOS_SEED", "0")),
        kind=os.environ.get("REPRO_CHAOS_KIND", "error"),
        transient_failures=int(os.environ.get("REPRO_CHAOS_TRANSIENT", "0")),
    )


def _resilience_engine(args, device: DeviceSpec) -> PlanEvaluator:
    """Build the evaluation engine from the resilience flags."""
    retries = getattr(args, "retries", 0) or 0
    if retries < 0:
        raise UsageError("--retries must be non-negative")
    return PlanEvaluator(
        device=device,
        workers=getattr(args, "workers", None),
        on_error=getattr(args, "on_error", "fail-fast"),
        retry=RetryPolicy(max_retries=retries) if retries else None,
        timeout_s=getattr(args, "eval_timeout", None),
        failure_budget=getattr(args, "failure_budget", None),
        fault_injector=_fault_injector_from_env(),
    )


def _open_journal(args, device: DeviceSpec) -> Optional[TuningJournal]:
    """Open the checkpoint journal named by --checkpoint/--resume."""
    path = getattr(args, "checkpoint", None)
    if path is None:
        if getattr(args, "resume", False):
            raise UsageError("--resume requires --checkpoint PATH")
        return None
    exists = os.path.exists(path) and os.path.getsize(path) > 0
    if exists and not args.resume:
        raise UsageError(
            f"checkpoint {path} already exists; pass --resume to continue "
            f"it, or remove the file to start fresh"
        )
    if args.resume and not exists:
        raise UsageError(f"cannot --resume: checkpoint {path} does not exist")
    journal = TuningJournal(path, device=device.name)
    if journal.replayable:
        print(
            f"checkpoint: resuming from {path} "
            f"({journal.replayable} journaled records)",
            file=sys.stderr,
        )
    return journal


def _warn_failures(stats, args) -> None:
    if stats is not None and stats.failures:
        print(
            f"warning: {stats.failures} candidate evaluation(s) failed "
            f"persistently (on-error={getattr(args, 'on_error', 'fail-fast')}; "
            f"see --eval-stats)",
            file=sys.stderr,
        )


def cmd_characteristics(args) -> int:
    ir = _load(args.spec)
    row = characteristics(ir)
    print(f"domain          : {'x'.join(str(d) for d in row.domain)}")
    print(f"time iterations : {row.time_iterations}")
    print(f"stencil order   : {row.order}")
    print(f"FLOPs per point : {row.flops_per_point}")
    print(f"I/O arrays      : {row.io_arrays}")
    print(f"theoretical OI  : {row.theoretical_oi:.2f} FLOP/byte")
    print(f"kernels         : {', '.join(k.name for k in ir.kernels)}")
    return 0


def cmd_optimize(args) -> int:
    ir = _load(args.spec)
    device = _device(args.device)
    engine = _resilience_engine(args, device)
    journal = _open_journal(args, device)
    try:
        outcome = optimize(
            ir,
            device=device,
            iterations=args.iterations,
            top_k=args.top_k,
            evaluator=engine,
            journal=journal,
        )
    finally:
        if journal is not None:
            journal.close()
    if outcome.eval_stats is not None:
        outcome.eval_stats.publish()
    print(format_report(outcome, device))
    if args.eval_stats and outcome.eval_stats is not None:
        _print_eval_stats(outcome.eval_stats)
    _warn_failures(outcome.eval_stats, args)
    return 0


def _print_eval_stats(stats) -> None:
    print("\nevaluation engine statistics:")
    for name, value in stats.as_dict().items():
        if isinstance(value, float):
            print(f"  {name:20s} {value:.6f}")
        else:
            print(f"  {name:20s} {value}")


def cmd_cuda(args) -> int:
    ir = _load(args.spec)
    generated = generate_baseline(ir, device=_device(args.device))
    print(generated.source)
    return 0


def cmd_profile(args) -> int:
    from .obs import span

    ir = _load(args.spec)
    device = _device(args.device)
    with span("lower"):
        generated = generate_baseline(ir, device=device)
    for plan in generated.schedule.plans:
        with span("profile", kernels="+".join(plan.kernel_names)):
            report = profile(ir, plan, device)
            verdict = classify_result(report.result, device)
        print(f"== {plan.describe()} ==")
        for name, value in report.metrics.items():
            print(f"  {name:28s} {value:.4g}")
        for level in ("dram", "tex", "shm"):
            entry = verdict.verdict(level)
            print(
                f"  OI_{level:4s} = {entry.oi:8.3f}  "
                f"(ridge {entry.ridge:.2f}) -> {entry.verdict}"
            )
        print(f"  bound at: {verdict.bound_level}")
    return 0


def cmd_suite(args) -> int:
    print(f"{'benchmark':15s} {'domain':12s} {'T':>3s} {'k':>2s} "
          f"{'FLOPs':>6s} {'arrays':>6s}  notes")
    for name, spec in BENCHMARKS.items():
        domain = "x".join(str(d) for d in spec.domain)
        print(
            f"{name:15s} {domain:12s} {spec.time_iterations:3d} "
            f"{spec.order:2d} {spec.flops_per_point:6d} "
            f"{spec.io_arrays:6d}  {spec.notes}"
        )
    return 0


def cmd_deep_tune(args) -> int:
    from .tuning import deep_tune, fusion_schedule

    ir = _load(args.spec)
    if not ir.is_iterative:
        raise SystemExit("error: deep tuning applies to iterative stencils")
    if len(ir.kernels) > 1:
        from .tuning.fusion import maxfuse

        ir = maxfuse(ir)
    device = _device(args.device)
    engine = _resilience_engine(args, device)
    journal = _open_journal(args, device)
    try:
        result = deep_tune(ir, evaluator=engine, journal=journal)
    finally:
        if journal is not None:
            journal.close()
    if result.eval_stats is not None:
        result.eval_stats.publish()
    if args.eval_stats and result.eval_stats is not None:
        _print_eval_stats(result.eval_stats)
    _warn_failures(result.eval_stats, args)
    for entry in result.entries:
        marker = (
            "  <-- tipping point"
            if entry.time_tile == result.tipping_point
            else ""
        )
        print(
            f"({entry.time_tile} x 1): {entry.tflops:6.3f} TFLOPS, "
            f"bound at {entry.bound_level}{marker}"
        )
    schedule = fusion_schedule(result, args.iterations)
    print(
        f"\nschedule for T={args.iterations}: {schedule.describe()} "
        f"({schedule.total_time_s * 1e3:.2f} ms)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARTEMIS-reproduction stencil compiler and autotuner",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="show full tracebacks instead of one-line error messages "
             "(place before the command: repro --debug optimize ...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, iterations_default: Optional[int] = None):
        p.add_argument("spec", help="benchmark name or DSL file path")
        p.add_argument(
            "--device", default="P100", help="device model (P100, V100)"
        )
        return p

    p = add_common(sub.add_parser(
        "characteristics", help="Table-I characteristics of a spec"
    ))
    p.set_defaults(func=cmd_characteristics)

    def add_eval_flags(p):
        p.add_argument(
            "--workers", type=int, default=None,
            help="threads for parallel candidate evaluation",
        )
        p.add_argument(
            "--eval-stats", action="store_true",
            help="print evaluation-engine cache/throughput statistics",
        )
        return p

    def add_resilience_flags(p):
        p.add_argument(
            "--checkpoint", metavar="PATH", default=None,
            help="journal every evaluated candidate to PATH (crash-safe "
                 "JSONL; see docs/robustness.md)",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="resume an interrupted run from the --checkpoint journal",
        )
        p.add_argument(
            "--on-error", choices=ON_ERROR_POLICIES, default="fail-fast",
            help="persistent evaluation failures: abort the run, skip the "
                 "candidate, or retry it on the degraded path",
        )
        p.add_argument(
            "--retries", type=int, default=0, metavar="N",
            help="retry failed evaluations up to N times with exponential "
                 "backoff",
        )
        p.add_argument(
            "--eval-timeout", type=float, default=None, metavar="SECONDS",
            help="per-evaluation deadline; overruns count as failures",
        )
        p.add_argument(
            "--failure-budget", type=int, default=None, metavar="N",
            help="abort once more than N candidates were skipped/degraded "
                 "(a systemic-breakage tripwire)",
        )
        return p

    def add_obs_flags(p):
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="record a span trace of the run and write it to PATH "
                 "(open in chrome://tracing or ui.perfetto.dev)",
        )
        p.add_argument(
            "--trace-format", choices=("chrome", "flat"), default="chrome",
            help="trace file format: chrome://tracing object (default) "
                 "or flat span/metrics JSON",
        )
        p.add_argument(
            "--metrics", action="store_true",
            help="collect pipeline metrics and print them after the run",
        )
        return p

    p = add_common(sub.add_parser("optimize", help="run the full flow"))
    p.add_argument("-T", "--iterations", type=int, default=None,
                   help="time-iteration count for iterative stencils")
    p.add_argument("--top-k", type=int, default=4,
                   help="stage-1 survivors carried into stage 2")
    add_eval_flags(p)
    add_resilience_flags(p)
    add_obs_flags(p)
    p.set_defaults(func=cmd_optimize)

    p = add_common(sub.add_parser("cuda", help="emit the baseline CUDA"))
    p.set_defaults(func=cmd_cuda)

    p = add_common(sub.add_parser("profile", help="profile the baseline"))
    add_obs_flags(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("suite", help="list the built-in benchmarks")
    p.set_defaults(func=cmd_suite)

    p = add_common(sub.add_parser(
        "deep-tune", help="deep-tune an iterative stencil"
    ))
    p.add_argument("-T", "--iterations", type=int, default=12)
    add_eval_flags(p)
    add_resilience_flags(p)
    add_obs_flags(p)
    p.set_defaults(func=cmd_deep_tune)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _obs_begin(args)
    try:
        return args.func(args)
    except ReproError as exc:
        # Error hygiene: one line per failure, mapped to a stable exit
        # status (2 usage, 3 infeasible input, 4 evaluation/checkpoint
        # failure).  --debug restores the traceback.
        if getattr(args, "debug", False):
            raise
        print(f"error: {exc.describe()}", file=sys.stderr)
        return exc.exit_code
    finally:
        _obs_finish(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
