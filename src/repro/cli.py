"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

* ``characteristics <spec.dsl | benchmark>`` — print the Table-I-style
  characteristics of a specification.
* ``optimize <spec.dsl | benchmark>``        — run the full ARTEMIS flow
  and print the optimization report.
* ``cuda <spec.dsl | benchmark>``            — emit the baseline CUDA.
* ``profile <spec.dsl | benchmark>``         — profile the baseline and
  print the nvprof-style metrics plus the roofline verdicts.
* ``suite``                                  — list the 11 built-in
  benchmarks.
* ``deep-tune <benchmark> [-T N]``           — deep-tune an iterative
  benchmark and print the fusion schedule for N iterations.
* ``lint [specs...] [--suite] [--examples DIR]`` — statically verify
  DSL specifications (``repro.lint`` rule catalog; ``--json`` /
  ``--sarif`` for machine-readable findings; exit 1 on errors).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional

from .codegen.generator import generate_baseline, lower
from .gpu.device import DEVICES, DeviceSpec, P100, device_names, get_device
from .ir.analysis import characteristics
from .obs import (
    configure_metrics,
    configure_tracing,
    get_metrics,
    get_tracer,
    tracing_enabled,
    write_trace,
)
from .obs.explain import build_explain, format_explain
from .obs.report_html import render_html
from .obs.search import SearchLog, read_events
from .pipeline import format_report, optimize
from .profiling import classify_result, profile
from .resilience import (
    ON_ERROR_POLICIES,
    ReproError,
    RetryPolicy,
    TuningJournal,
    UsageError,
    atomic_write_json,
    atomic_write_text,
)
from .suite import BENCHMARKS, get as get_benchmark
from .tuning import EXECUTOR_MODES, PlanEvaluator


def _load(source: str):
    """Resolve a positional argument: a benchmark name or a DSL file."""
    if source in BENCHMARKS:
        return get_benchmark(source).ir()
    path = Path(source)
    if not path.exists():
        raise SystemExit(
            f"error: {source!r} is neither a built-in benchmark "
            f"({', '.join(BENCHMARKS)}) nor a file"
        )
    return lower(path.read_text())


def _device(name: str) -> DeviceSpec:
    # get_device raises UsageError (exit code 2) for unknown names.
    return get_device(name)


def _obs_begin(args) -> None:
    """Enable tracing/metrics before a command when its flags ask for it."""
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    metrics_port = getattr(args, "metrics_port", None)
    if trace_path:
        configure_tracing(True, clear=True)
    if trace_path or want_metrics or metrics_port is not None:
        configure_metrics(True, reset=True)


def _obs_finish(args) -> None:
    """Write the trace file / print metrics, then disable collection."""
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    metrics_port = getattr(args, "metrics_port", None)
    if trace_path:
        write_trace(
            trace_path,
            fmt=getattr(args, "trace_format", "chrome"),
            search_events=getattr(args, "_search_events", None),
            stitch_root=getattr(args, "_stitch_root", None),
        )
        spans = len(get_tracer().finished())
        print(f"trace: {spans} spans written to {trace_path}", file=sys.stderr)
    if want_metrics:
        _print_metrics()
    if trace_path:
        configure_tracing(False)
    if trace_path or want_metrics or metrics_port is not None:
        configure_metrics(False)


def _print_metrics() -> None:
    from .obs import Histogram

    snapshot = get_metrics().snapshot()
    print("\npipeline metrics:")
    if not snapshot:
        print("  (none recorded)")
        return
    for name, data in snapshot.items():
        kind = data["type"]
        if kind == "histogram":
            p50 = Histogram.quantile_from_dict(data, 0.5)
            p95 = Histogram.quantile_from_dict(data, 0.95)
            print(
                f"  {name:36s} count={data['count']} sum={data['sum']:.6f} "
                f"min={data['min']:.6f} p50={p50:.6f} p95={p95:.6f} "
                f"max={data['max']:.6f}"
            )
        else:
            value = data["value"]
            rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
            print(f"  {name:36s} {rendered}")


def _start_metrics_server(args, coordinator=None, engine=None):
    """Serve ``/metrics`` for the run's duration when --metrics-port asks.

    Distributed runs expose the coordinator's dedup-aware merged view.
    Single-process runs expose the live global registry overlaid with
    the engine's *current* EvalStats — the engine only publishes its
    totals at shutdown, and a live endpoint that can't see evaluation
    traffic mid-run would be pointless.
    """
    port = getattr(args, "metrics_port", None)
    if port is None:
        return None
    from .obs import MetricsHTTPServer, MetricsRegistry
    from .obs.live import publish_stats_dict
    from .obs.prom import prometheus_text

    if coordinator is not None:
        collect = lambda: prometheus_text(coordinator.merged_registry())
    else:

        def collect():
            registry = MetricsRegistry()
            registry.merge_snapshot(
                get_metrics().snapshot(), exclude_prefixes=("eval.",)
            )
            if engine is not None:
                publish_stats_dict(registry, engine.stats.as_dict())
            return prometheus_text(registry)

    server = MetricsHTTPServer(collect=collect, port=port).start()
    print(f"metrics: serving {server.url}", file=sys.stderr)
    return server


def _stop_metrics_server(server) -> None:
    if server is not None:
        server.stop()


def _env_float(name: str, default: Optional[float] = None) -> Optional[float]:
    """Parse a float environment variable; misuse exits 2, not a traceback."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise UsageError(
            f"environment variable {name}={raw!r} is not a number"
        ) from None


def _env_int(name: str, default: Optional[int] = None) -> Optional[int]:
    """Parse an integer environment variable; misuse exits 2."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise UsageError(
            f"environment variable {name}={raw!r} is not an integer"
        ) from None


def _fault_injector_from_env():
    """Chaos-mode fault injector, armed by environment variables.

    ``REPRO_CHAOS_RATE`` (a fraction) turns injection on;
    ``REPRO_CHAOS_SEED``, ``REPRO_CHAOS_KIND`` and
    ``REPRO_CHAOS_TRANSIENT`` refine it.  CI's chaos job drives seeded
    fault injection through real CLI runs this way (``docs/robustness.md``).
    Malformed values raise :class:`UsageError` naming the variable.
    """
    rate = _env_float("REPRO_CHAOS_RATE")
    if not rate:
        return None
    from .resilience import FaultInjector

    return FaultInjector(
        rate=rate,
        seed=_env_int("REPRO_CHAOS_SEED", 0),
        kind=os.environ.get("REPRO_CHAOS_KIND", "error"),
        transient_failures=_env_int("REPRO_CHAOS_TRANSIENT", 0),
    )


def _resilience_engine(args, device: DeviceSpec) -> PlanEvaluator:
    """Build the evaluation engine from the resilience flags."""
    retries = getattr(args, "retries", 0) or 0
    if retries < 0:
        raise UsageError("--retries must be non-negative")
    return PlanEvaluator(
        device=device,
        workers=getattr(args, "workers", None),
        on_error=getattr(args, "on_error", "fail-fast"),
        retry=RetryPolicy(max_retries=retries) if retries else None,
        timeout_s=getattr(args, "eval_timeout", None),
        failure_budget=getattr(args, "failure_budget", None),
        fault_injector=_fault_injector_from_env(),
        vectorize=_vectorize_choice(args),
        executor=getattr(args, "executor", None) or "thread",
    )


def _vectorize_choice(args):
    """Map the --pricing flag onto the evaluator's vectorize knob."""
    return {"vector": True, "scalar": False}.get(
        getattr(args, "pricing", None)
    )


def _open_journal(args, device: DeviceSpec) -> Optional[TuningJournal]:
    """Open the checkpoint journal named by --checkpoint/--resume."""
    path = getattr(args, "checkpoint", None)
    if path is None:
        if getattr(args, "resume", False):
            raise UsageError("--resume requires --checkpoint PATH")
        return None
    exists = os.path.exists(path) and os.path.getsize(path) > 0
    if exists and not args.resume:
        raise UsageError(
            f"checkpoint {path} already exists; pass --resume to continue "
            f"it, or remove the file to start fresh"
        )
    if args.resume and not exists:
        raise UsageError(f"cannot --resume: checkpoint {path} does not exist")
    journal = TuningJournal(path, device=device.name)
    if journal.replayable:
        print(
            f"checkpoint: resuming from {path} "
            f"({journal.replayable} journaled records)",
            file=sys.stderr,
        )
    return journal


def _open_coordinator(args, device: DeviceSpec, engine, journal):
    """Build the distributed coordinator when --distributed N asks for it.

    The merged journal is the user's --checkpoint journal when given
    (distributed resume composes with checkpointing for free), else a
    fresh ``merged.jsonl`` inside the run directory.  ``REPRO_DISTRIB_*``
    env knobs arm the chaos harness for CI: a deterministic straggler
    (``STRAGGLE_S``/``STRAGGLE_WORKER``), a mid-shard SIGKILL
    (``KILL_WORKER``/``KILL_AFTER``) and a lease-TTL override
    (``LEASE_TTL``) — all parsed with exit-2 error hygiene.
    """
    workers = getattr(args, "distributed", None)
    if not workers:
        return None
    from .distrib import DistributedCoordinator, KillPolicy

    root = getattr(args, "distrib_dir", None)
    if root is None:
        import tempfile

        root = tempfile.mkdtemp(prefix="repro-distrib-")
    lease_ttl = _env_float(
        "REPRO_DISTRIB_LEASE_TTL", getattr(args, "lease_ttl", None) or 2.0
    )
    kill_worker = _env_int("REPRO_DISTRIB_KILL_WORKER")
    kill = (
        KillPolicy(
            victim=kill_worker,
            after_records=_env_int("REPRO_DISTRIB_KILL_AFTER", 1),
        )
        if kill_worker is not None
        else None
    )
    straggle_s = _env_float("REPRO_DISTRIB_STRAGGLE_S", 0.0)
    straggle_worker = _env_int("REPRO_DISTRIB_STRAGGLE_WORKER")
    chaos = None
    rate = _env_float("REPRO_CHAOS_RATE")
    if rate:
        chaos = {
            "rate": rate,
            "seed": _env_int("REPRO_CHAOS_SEED", 0),
            "kind": os.environ.get("REPRO_CHAOS_KIND", "error"),
            "transient": _env_int("REPRO_CHAOS_TRANSIENT", 0),
        }
    coordinator = DistributedCoordinator(
        root,
        workers=workers,
        device=device,
        engine=engine,
        journal=journal,
        lease_ttl=lease_ttl,
        vectorize=_vectorize_choice(args),
        chaos=chaos,
        straggle_s=straggle_s,
        straggle_worker=straggle_worker,
        partition_claims=kill is not None or straggle_worker is not None,
        kill=kill,
    )
    print(
        f"distrib: {workers} worker(s), journal directory {root}",
        file=sys.stderr,
    )
    return coordinator


def _finish_coordinator(coordinator) -> None:
    """Tear the pool down and print the one-line distributed summary."""
    if coordinator is None:
        return
    coordinator.close()
    stats = coordinator.stats
    print(
        f"distrib: {stats.records_merged} record(s) merged from "
        f"{stats.shards_published} shard(s) "
        f"({stats.shards_claimed} claimed, {stats.shards_stolen} stolen, "
        f"{stats.lease_expiries} lease expiries, "
        f"{stats.dedup_hits} dedup hit(s), {stats.takeovers} takeover(s)"
        + (
            f", {stats.workers_killed} worker(s) killed"
            if stats.workers_killed
            else ""
        )
        + ")",
        file=sys.stderr,
    )


def _warn_failures(stats, args) -> None:
    if stats is not None and stats.failures:
        print(
            f"warning: {stats.failures} candidate evaluation(s) failed "
            f"persistently (on-error={getattr(args, 'on_error', 'fail-fast')}; "
            f"see --eval-stats)",
            file=sys.stderr,
        )


def cmd_characteristics(args) -> int:
    ir = _load(args.spec)
    row = characteristics(ir)
    print(f"domain          : {'x'.join(str(d) for d in row.domain)}")
    print(f"time iterations : {row.time_iterations}")
    print(f"stencil order   : {row.order}")
    print(f"FLOPs per point : {row.flops_per_point}")
    print(f"I/O arrays      : {row.io_arrays}")
    print(f"theoretical OI  : {row.theoretical_oi:.2f} FLOP/byte")
    print(f"kernels         : {', '.join(k.name for k in ir.kernels)}")
    return 0


def _open_search_log(args, engine, device) -> Optional[SearchLog]:
    """Attach a SearchLog when --search-log/--explain/--json ask for one.

    The explain engine and the JSON payload both derive from the same
    candidate event stream, so any of the three flags arms collection;
    only --search-log also persists it.  Tracing is enabled for the
    duration when not already on, so the log's ``phase`` footer records
    (per-phase timing aggregates) are always present.
    """
    wants = (
        getattr(args, "search_log", None)
        or getattr(args, "explain", False)
        or getattr(args, "json", None)
    )
    if not wants:
        return None
    log = SearchLog(path=getattr(args, "search_log", None), device=device)
    engine.search_log = log
    if not tracing_enabled():
        configure_tracing(True, clear=True)
        args._own_tracing = True
    return log


def _close_search_log(args, log: Optional[SearchLog]) -> None:
    """Emit the phase footer, persist, and hand events to _obs_finish."""
    if log is None:
        return
    try:
        log.phases(get_tracer().finished())
    finally:
        if getattr(args, "_own_tracing", False):
            configure_tracing(False)
        log.close()
        # _obs_finish reads these to add the candidate instant track to
        # a --trace export.
        args._search_events = log.events()


def _optimize_json_payload(args, device, outcome, log) -> dict:
    payload = {
        "spec": args.spec,
        "device": device.name,
        "variant": outcome.variant,
        "tflops": outcome.tflops,
        "evaluations": outcome.evaluations,
        "hints": list(outcome.hints),
        "schedule": [
            {"plan": plan.describe(), "count": count}
            for plan, count in zip(
                outcome.schedule.plans, outcome.schedule.counts
            )
        ],
        "eval_stats": (
            outcome.eval_stats.as_dict()
            if outcome.eval_stats is not None
            else None
        ),
    }
    if log is not None:
        payload["explain"] = build_explain(log.events()).as_dict()
    return payload


def cmd_optimize(args) -> int:
    ir = _load(args.spec)
    device = _device(args.device)
    engine = _resilience_engine(args, device)
    journal = _open_journal(args, device)
    coordinator = _open_coordinator(args, device, engine, journal)
    if coordinator is not None:
        journal = coordinator.journal
        if getattr(args, "trace", None):
            args._stitch_root = coordinator.paths.root
    server = _start_metrics_server(args, coordinator, engine=engine)
    log = _open_search_log(args, engine, device)
    try:
        outcome = optimize(
            ir,
            device=device,
            iterations=args.iterations,
            top_k=args.top_k,
            evaluator=engine,
            journal=journal,
            make_tuner=coordinator.make_tuner if coordinator else None,
        )
        if log is not None and outcome.eval_stats is not None:
            log.summary(outcome.eval_stats)
    finally:
        # The coordinator's final drain appends to the merged journal,
        # so it must shut down before the journal closes.
        _finish_coordinator(coordinator)
        _stop_metrics_server(server)
        if journal is not None:
            journal.close()
        _close_search_log(args, log)
    if outcome.eval_stats is not None:
        outcome.eval_stats.publish()
    print(format_report(outcome, device))
    if args.explain:
        print(format_explain(build_explain(log.events())))
    if args.eval_stats and outcome.eval_stats is not None:
        _print_eval_stats(outcome.eval_stats)
    if args.json:
        payload = _optimize_json_payload(args, device, outcome, log)
        if coordinator is not None:
            payload["distrib"] = coordinator.stats.as_dict()
        atomic_write_json(args.json, payload, indent=2)
        print(f"json: outcome written to {args.json}", file=sys.stderr)
    if args.search_log:
        print(
            f"search log: {log.candidate_count()} candidate event(s) "
            f"written to {args.search_log}",
            file=sys.stderr,
        )
    _warn_failures(outcome.eval_stats, args)
    return 0


def _print_eval_stats(stats) -> None:
    print("\nevaluation engine statistics:")
    for name, value in stats.as_dict().items():
        if isinstance(value, float):
            print(f"  {name:20s} {value:.6f}")
        else:
            print(f"  {name:20s} {value}")


def cmd_cuda(args) -> int:
    ir = _load(args.spec)
    generated = generate_baseline(ir, device=_device(args.device))
    print(generated.source)
    return 0


def cmd_profile(args) -> int:
    from .obs import span

    ir = _load(args.spec)
    device = _device(args.device)
    with span("lower"):
        generated = generate_baseline(ir, device=device)
    kernels = []
    for plan in generated.schedule.plans:
        with span("profile", kernels="+".join(plan.kernel_names)):
            report = profile(ir, plan, device)
            verdict = classify_result(report.result, device)
        print(f"== {plan.describe()} ==")
        for name, value in report.metrics.items():
            print(f"  {name:28s} {value:.4g}")
        for level in ("dram", "tex", "shm"):
            entry = verdict.verdict(level)
            print(
                f"  OI_{level:4s} = {entry.oi:8.3f}  "
                f"(ridge {entry.ridge:.2f}) -> {entry.verdict}"
            )
        print(f"  bound at: {verdict.bound_level}")
        kernels.append(
            {
                "plan": plan.describe(),
                "metrics": dict(report.metrics),
                "verdicts": {
                    level: {
                        "oi": verdict.verdict(level).oi,
                        "ridge": verdict.verdict(level).ridge,
                        "verdict": verdict.verdict(level).verdict,
                    }
                    for level in ("dram", "tex", "shm")
                },
                "bound_level": verdict.bound_level,
            }
        )
    if getattr(args, "json", None):
        atomic_write_json(
            args.json,
            {"spec": args.spec, "device": device.name, "kernels": kernels},
            indent=2,
        )
        print(f"json: profile written to {args.json}", file=sys.stderr)
    return 0


def cmd_suite(args) -> int:
    print(f"{'benchmark':15s} {'domain':12s} {'T':>3s} {'k':>2s} "
          f"{'FLOPs':>6s} {'arrays':>6s}  notes")
    for name, spec in BENCHMARKS.items():
        domain = "x".join(str(d) for d in spec.domain)
        print(
            f"{name:15s} {domain:12s} {spec.time_iterations:3d} "
            f"{spec.order:2d} {spec.flops_per_point:6d} "
            f"{spec.io_arrays:6d}  {spec.notes}"
        )
    return 0


def cmd_deep_tune(args) -> int:
    from .tuning import deep_tune, fusion_schedule

    ir = _load(args.spec)
    if not ir.is_iterative:
        raise SystemExit("error: deep tuning applies to iterative stencils")
    if len(ir.kernels) > 1:
        from .tuning.fusion import maxfuse

        ir = maxfuse(ir)
    device = _device(args.device)
    engine = _resilience_engine(args, device)
    journal = _open_journal(args, device)
    coordinator = _open_coordinator(args, device, engine, journal)
    if coordinator is not None:
        journal = coordinator.journal
        if getattr(args, "trace", None):
            args._stitch_root = coordinator.paths.root
    server = _start_metrics_server(args, coordinator, engine=engine)
    try:
        result = deep_tune(
            ir,
            evaluator=engine,
            journal=journal,
            make_tuner=coordinator.make_tuner if coordinator else None,
        )
    finally:
        _finish_coordinator(coordinator)
        _stop_metrics_server(server)
        if journal is not None:
            journal.close()
    if result.eval_stats is not None:
        result.eval_stats.publish()
    if args.eval_stats and result.eval_stats is not None:
        _print_eval_stats(result.eval_stats)
    _warn_failures(result.eval_stats, args)
    for entry in result.entries:
        marker = (
            "  <-- tipping point"
            if entry.time_tile == result.tipping_point
            else ""
        )
        print(
            f"({entry.time_tile} x 1): {entry.tflops:6.3f} TFLOPS, "
            f"bound at {entry.bound_level}{marker}"
        )
    schedule = fusion_schedule(result, args.iterations)
    print(
        f"\nschedule for T={args.iterations}: {schedule.describe()} "
        f"({schedule.total_time_s * 1e3:.2f} ms)"
    )
    return 0


def cmd_shard_status(args) -> int:
    """Inspect a distributed-run directory (``repro shard-status DIR``)."""
    import json as _json

    from .distrib import format_status, scan_status

    try:
        info = scan_status(args.dir)
    except FileNotFoundError as exc:
        raise UsageError(str(exc)) from None
    if args.json:
        print(_json.dumps(info, indent=2, sort_keys=True))
    else:
        print(format_status(info))
    return 0


def cmd_top(args) -> int:
    """Live per-worker view of a distributed run (``repro top DIR``)."""
    from .distrib import run_top

    try:
        return run_top(args.dir, interval_s=args.interval, once=args.once)
    except FileNotFoundError as exc:
        raise UsageError(str(exc)) from None


def cmd_report(args) -> int:
    events = read_events(args.log)
    out = args.output or str(Path(args.log).with_suffix(".html"))
    document = render_html(events, title=args.title, top_k=args.top_k)
    atomic_write_text(out, document)
    candidates = sum(1 for e in events if e.get("kind") == "candidate")
    print(f"report: {candidates} candidate(s) rendered to {out}")
    return 0


def cmd_lint(args) -> int:
    from .lint import lint_source, extract_dsl_blocks
    from .lint.sarif import write_sarif

    targets = []  # (artifact, dsl_source)
    for spec in args.specs:
        if spec in BENCHMARKS:
            targets.append((spec, get_benchmark(spec).dsl()))
            continue
        path = Path(spec)
        if not path.exists():
            raise UsageError(
                f"{spec!r} is neither a built-in benchmark "
                f"({', '.join(BENCHMARKS)}) nor a file"
            )
        text = path.read_text()
        if path.suffix == ".py":
            blocks = extract_dsl_blocks(text)
            if not blocks:
                print(f"{path}: no DSL blocks found", file=sys.stderr)
            for start, block in blocks:
                targets.append((f"{path}:{start}", block))
        else:
            targets.append((str(path), text))
    if args.suite:
        for name in BENCHMARKS:
            targets.append((name, get_benchmark(name).dsl()))
    if args.examples:
        root = Path(args.examples)
        if not root.is_dir():
            raise UsageError(f"--examples: {args.examples!r} is not a directory")
        for path in sorted(root.glob("*.py")):
            for start, block in extract_dsl_blocks(path.read_text()):
                targets.append((f"{path}:{start}", block))
    if not targets:
        raise UsageError(
            "nothing to lint: pass a spec, --suite, or --examples DIR"
        )

    reports = [lint_source(source, artifact=name) for name, source in targets]
    findings = sum(len(r) for r in reports)
    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)

    if args.json:
        atomic_write_json(
            args.json,
            {
                "artifacts": [r.as_dict() for r in reports],
                "totals": {
                    "artifacts": len(reports),
                    "findings": findings,
                    "errors": errors,
                    "warnings": warnings,
                },
            },
            indent=2,
        )
        print(f"lint: JSON written to {args.json}", file=sys.stderr)
    if args.sarif:
        write_sarif(reports, args.sarif)
        print(f"lint: SARIF written to {args.sarif}", file=sys.stderr)

    for report in reports:
        if report:
            print(report.render())
    print(
        f"lint: {len(reports)} artifact(s), {findings} finding(s) "
        f"({errors} error(s), {warnings} warning(s))"
    )
    return 1 if errors else 0


def cmd_certify(args) -> int:
    """Prove every plan transformation legal (``repro certify``).

    Runs the RL3xx dependence certifier over explicit plans (``--plan``),
    journalled tuning candidates (``--journal``), or — when neither is
    given — each program's per-kernel seed plans.  Exit 1 when any plan
    is refuted; refutations carry replayable witnesses in ``--json`` and
    ``--sarif`` output.
    """
    import json as _json
    from dataclasses import replace as _restamp

    from .codegen.resources import (
        InvalidPlan,
        seed_plan_from_pragma,
        validate_plan,
    )
    from .lint import (
        Diagnostic,
        LintReport,
        certification_advisories,
        certify_plan_transformations,
        extract_dsl_blocks,
    )
    from .lint.rules_plan import RL204
    from .lint.sarif import write_sarif
    from .resilience.checkpoint import plan_from_dict

    programs = [(spec, _load(spec)) for spec in args.specs]
    if args.suite:
        for name in BENCHMARKS:
            programs.append((name, get_benchmark(name).ir()))
    if args.examples:
        root = Path(args.examples)
        if not root.is_dir():
            raise UsageError(
                f"--examples: {args.examples!r} is not a directory"
            )
        for path in sorted(root.glob("*.py")):
            for start, block in extract_dsl_blocks(path.read_text()):
                programs.append((f"{path}:{start}", lower(block)))
    if not programs:
        raise UsageError(
            "nothing to certify: pass a spec, --suite, or --examples DIR"
        )

    explicit = []  # plans certified against every resolved program
    for path in args.plan or []:
        plan_path = Path(path)
        if not plan_path.exists():
            raise UsageError(f"--plan: {path!r} does not exist")
        data = _json.loads(plan_path.read_text())
        for entry in data if isinstance(data, list) else [data]:
            try:
                explicit.append(plan_from_dict(entry))
            except (KeyError, TypeError, ValueError) as exc:
                raise UsageError(
                    f"--plan: {path!r} is not a serialized KernelPlan: {exc}"
                ) from None
    for path in args.journal or []:
        journal_path = Path(path)
        if not journal_path.exists():
            raise UsageError(f"--journal: {path!r} does not exist")
        seen = {}
        for line in journal_path.read_text().splitlines():
            if not line.strip():
                continue
            record = _json.loads(line)
            if record.get("kind") == "candidate" and record.get("plan"):
                seen[record["key"]] = record["plan"]
        for entry in seen.values():
            try:
                explicit.append(plan_from_dict(entry))
            except (KeyError, TypeError, ValueError) as exc:
                raise UsageError(
                    f"--journal: {path!r} holds an unreadable plan "
                    f"record: {exc}"
                ) from None

    reports = []
    plans_total = 0
    for name, ir in programs:
        plans = explicit or [
            seed_plan_from_pragma(ir, instance) for instance in ir.kernels
        ]
        for plan in plans:
            plans_total += 1
            artifact = f"{name}::plan({','.join(plan.kernel_names)})"
            findings = [
                _restamp(d, artifact=artifact)
                for d in certify_plan_transformations(ir, plan)
            ]
            try:
                validate_plan(ir, plan)
            except InvalidPlan as exc:
                # Only surface RL204 when no refutation already explains
                # the invalidity (a multi-kernel time tile is both).
                if not any(d.severity == "error" for d in findings):
                    findings.append(
                        Diagnostic(RL204, str(exc), artifact=artifact)
                    )
            else:
                findings.extend(
                    _restamp(d, artifact=artifact)
                    for d in certification_advisories(ir, plan)
                )
            reports.append(
                LintReport(tuple(findings), artifact=artifact)
            )

    errors = sum(len(r.errors) for r in reports)
    findings_total = sum(len(r) for r in reports)
    if args.json:
        atomic_write_json(
            args.json,
            {
                "artifacts": [r.as_dict() for r in reports],
                "totals": {
                    "programs": len(programs),
                    "plans": plans_total,
                    "findings": findings_total,
                    "refutations": errors,
                },
            },
            indent=2,
        )
        print(f"certify: JSON written to {args.json}", file=sys.stderr)
    if args.sarif:
        write_sarif(reports, args.sarif)
        print(f"certify: SARIF written to {args.sarif}", file=sys.stderr)

    for report in reports:
        if report:
            print(report.render())
    verdict = (
        "all transformations certified"
        if errors == 0
        else f"{errors} refutation(s)"
    )
    print(
        f"certify: {plans_total} plan(s) across {len(programs)} "
        f"program(s) — {verdict}"
    )
    return 1 if errors else 0


def cmd_devices(args) -> int:
    """List the registered device profiles (``repro devices``)."""
    import json as _json

    specs = [DEVICES[name] for name in device_names()]
    if getattr(args, "json", False):
        from dataclasses import asdict

        payload = {}
        for spec in specs:
            row = asdict(spec)
            row["ridge_dram"] = spec.ridge_dram
            row["ridge_tex"] = spec.ridge_tex
            row["ridge_shm"] = spec.ridge_shm
            payload[spec.name] = row
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"{'name':8s} {'vendor':7s} {'SMs':>4s} {'warp':>5s} "
        f"{'peak GF':>8s} {'DRAM GB/s':>10s} {'a/b_dram':>9s} "
        f"{'shm/blk KiB':>12s} {'thr/blk':>8s}"
    )
    for spec in specs:
        print(
            f"{spec.name:8s} {spec.vendor:7s} {spec.sms:4d} "
            f"{spec.warp_size:5d} {spec.peak_gflops:8.0f} "
            f"{spec.dram_bw_gbs:10.1f} {spec.ridge_dram:9.2f} "
            f"{spec.shared_mem_per_block / 1024:12.0f} "
            f"{spec.max_threads_per_block:8d}"
        )
    return 0


def cmd_bench(args) -> int:
    import json as _json

    from .suite.bench import compare_bench, format_bench, run_bench

    if args.benchmarks:
        names = [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        unknown = [n for n in names if n not in BENCHMARKS]
        if unknown:
            raise UsageError(
                f"unknown benchmark(s): {', '.join(unknown)}; "
                f"available: {', '.join(BENCHMARKS)}"
            )
    else:
        from .suite.bench import DEFAULT_BENCHMARKS

        names = list(DEFAULT_BENCHMARKS)
    results = run_bench(
        names,
        device=_device(args.device),
        vectorize=_vectorize_choice(args),
        executor=getattr(args, "executor", None) or "thread",
    )
    problems = None
    if args.check or args.baseline:
        baseline_path = args.baseline or "BENCH_search.json"
        if not os.path.exists(baseline_path):
            raise UsageError(
                f"baseline {baseline_path} does not exist; run "
                f"'repro bench --out {baseline_path}' to create one"
            )
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = _json.load(handle)
        problems = compare_bench(
            results,
            baseline,
            tolerance=args.tolerance,
            wall_tolerance=args.gate_wall,
        )
    print(format_bench(results, problems))
    if args.out:
        atomic_write_json(args.out, results, indent=2, sort_keys=True)
        print(f"bench: results written to {args.out}", file=sys.stderr)
    if args.check and problems:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ARTEMIS-reproduction stencil compiler and autotuner",
    )
    parser.add_argument(
        "--debug", action="store_true",
        help="show full tracebacks instead of one-line error messages "
             "(place before the command: repro --debug optimize ...)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, iterations_default: Optional[int] = None):
        p.add_argument("spec", help="benchmark name or DSL file path")
        p.add_argument(
            "--device", default="P100",
            help=f"device profile ({', '.join(device_names())}; "
                 f"see 'repro devices')",
        )
        return p

    p = add_common(sub.add_parser(
        "characteristics", help="Table-I characteristics of a spec"
    ))
    p.set_defaults(func=cmd_characteristics)

    def add_eval_flags(p):
        p.add_argument(
            "--workers", type=int, default=None,
            help="threads for parallel candidate evaluation",
        )
        p.add_argument(
            "--eval-stats", action="store_true",
            help="print evaluation-engine cache/throughput statistics",
        )
        p.add_argument(
            "--executor", choices=EXECUTOR_MODES, default="thread",
            help="batch executor: 'thread' pool (default) or a 'process' "
                 "pool that sidesteps the GIL for scalar pricing",
        )
        p.add_argument(
            "--pricing", choices=("vector", "scalar"), default=None,
            help="force the family-pricing backend on ('vector') or off "
                 "('scalar'); default: vectorize when NumPy is available. "
                 "Results are bit-identical either way",
        )
        return p

    def add_resilience_flags(p):
        p.add_argument(
            "--checkpoint", metavar="PATH", default=None,
            help="journal every evaluated candidate to PATH (crash-safe "
                 "JSONL; see docs/robustness.md)",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="resume an interrupted run from the --checkpoint journal",
        )
        p.add_argument(
            "--on-error", choices=ON_ERROR_POLICIES, default="fail-fast",
            help="persistent evaluation failures: abort the run, skip the "
                 "candidate, or retry it on the degraded path",
        )
        p.add_argument(
            "--retries", type=int, default=0, metavar="N",
            help="retry failed evaluations up to N times with exponential "
                 "backoff",
        )
        p.add_argument(
            "--eval-timeout", type=float, default=None, metavar="SECONDS",
            help="per-evaluation deadline; overruns count as failures",
        )
        p.add_argument(
            "--failure-budget", type=int, default=None, metavar="N",
            help="abort once more than N candidates were skipped/degraded "
                 "(a systemic-breakage tripwire)",
        )
        return p

    def add_distrib_flags(p):
        p.add_argument(
            "--distributed", type=int, default=None, metavar="N",
            help="evaluate candidate batches on N worker processes with "
                 "journal leases and work-stealing (results bit-identical "
                 "to a single-process run; see docs/robustness.md)",
        )
        p.add_argument(
            "--distrib-dir", metavar="DIR", default=None,
            help="shared journal directory for the distributed run "
                 "(default: a fresh temp directory; inspect with "
                 "'repro shard-status DIR')",
        )
        p.add_argument(
            "--lease-ttl", type=float, default=None, metavar="SECONDS",
            help="shard lease time-to-live: a lease not heartbeaten for "
                 "this long is stolen by another worker (default 2.0)",
        )
        return p

    def add_obs_flags(p):
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="record a span trace of the run and write it to PATH "
                 "(open in chrome://tracing or ui.perfetto.dev)",
        )
        p.add_argument(
            "--trace-format", choices=("chrome", "flat"), default="chrome",
            help="trace file format: chrome://tracing object (default) "
                 "or flat span/metrics JSON",
        )
        p.add_argument(
            "--metrics", action="store_true",
            help="collect pipeline metrics and print them after the run",
        )
        return p

    def add_metrics_port_flag(p):
        p.add_argument(
            "--metrics-port", type=int, default=None, metavar="PORT",
            help="serve live Prometheus metrics on 127.0.0.1:PORT "
                 "(/metrics and /healthz) for the run's duration; "
                 "0 picks an ephemeral port. Implies metrics collection",
        )
        return p

    p = add_common(sub.add_parser("optimize", help="run the full flow"))
    p.add_argument("-T", "--iterations", type=int, default=None,
                   help="time-iteration count for iterative stencils")
    p.add_argument("--top-k", type=int, default=4,
                   help="stage-1 survivors carried into stage 2")
    p.add_argument(
        "--search-log", metavar="PATH", default=None,
        help="record one JSONL event per evaluated candidate to PATH "
             "(render with 'repro report PATH')",
    )
    p.add_argument(
        "--explain", action="store_true",
        help="print the why-this-plan explanation (winner vs runners-up, "
             "advisor rules, convergence) after the report",
    )
    p.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the outcome (schedule, stats, explanation) as JSON",
    )
    add_eval_flags(p)
    add_resilience_flags(p)
    add_distrib_flags(p)
    add_obs_flags(p)
    add_metrics_port_flag(p)
    p.set_defaults(func=cmd_optimize)

    p = add_common(sub.add_parser("cuda", help="emit the baseline CUDA"))
    p.set_defaults(func=cmd_cuda)

    p = add_common(sub.add_parser("profile", help="profile the baseline"))
    p.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the metrics and roofline verdicts as JSON",
    )
    add_obs_flags(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("suite", help="list the built-in benchmarks")
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("devices", help="list the registered device profiles")
    p.add_argument(
        "--json", action="store_true",
        help="emit the full profiles (all model knobs) as JSON",
    )
    p.set_defaults(func=cmd_devices)

    p = add_common(sub.add_parser(
        "deep-tune", help="deep-tune an iterative stencil"
    ))
    p.add_argument("-T", "--iterations", type=int, default=12)
    add_eval_flags(p)
    add_resilience_flags(p)
    add_distrib_flags(p)
    add_obs_flags(p)
    add_metrics_port_flag(p)
    p.set_defaults(func=cmd_deep_tune)

    p = sub.add_parser(
        "shard-status",
        help="inspect a distributed-run journal directory",
    )
    p.add_argument("dir", help="the --distrib-dir of a distributed run")
    p.add_argument(
        "--json", action="store_true",
        help="emit the full shard/lease/journal snapshot as JSON",
    )
    p.set_defaults(func=cmd_shard_status)

    p = sub.add_parser(
        "top",
        help="live per-worker view of a distributed run (htop-style)",
    )
    p.add_argument("dir", help="the --distrib-dir of a distributed run")
    p.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default 1.0)",
    )
    p.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit (automatic when stdout is "
             "not a terminal)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "report", help="render a search log as a standalone HTML report"
    )
    p.add_argument("log", help="search-log JSONL file (from --search-log)")
    p.add_argument(
        "-o", "--output", default=None,
        help="output HTML path (default: the log path with .html)",
    )
    p.add_argument(
        "--title", default="ARTEMIS search report", help="report title"
    )
    p.add_argument(
        "--top-k", type=int, default=3,
        help="runners-up shown in the explanation",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "lint", help="statically verify DSL specs (repro.lint rules)"
    )
    p.add_argument(
        "specs", nargs="*",
        help="benchmark names, DSL files, or Python files with embedded "
             "DSL blocks",
    )
    p.add_argument(
        "--suite", action="store_true",
        help="also lint every built-in suite benchmark",
    )
    p.add_argument(
        "--examples", metavar="DIR", default=None,
        help="extract and lint DSL blocks from every *.py under DIR",
    )
    p.add_argument(
        "--json", metavar="PATH", default=None,
        help="write all findings as JSON to PATH",
    )
    p.add_argument(
        "--sarif", metavar="PATH", default=None,
        help="write all findings as SARIF 2.1.0 to PATH",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "certify",
        help="prove plan transformations legal (RL3xx dependence certifier)",
    )
    p.add_argument(
        "specs", nargs="*",
        help="benchmark names or DSL files the plans apply to",
    )
    p.add_argument(
        "--plan", action="append", metavar="PATH", default=None,
        help="JSON plan (or list of plans) to certify; repeatable",
    )
    p.add_argument(
        "--journal", action="append", metavar="PATH", default=None,
        help="certify every candidate plan recorded in a tuning journal "
             "(JSONL checkpoint); repeatable",
    )
    p.add_argument(
        "--suite", action="store_true",
        help="also certify every built-in suite benchmark's seed plans",
    )
    p.add_argument(
        "--examples", metavar="DIR", default=None,
        help="certify seed plans of DSL blocks in every *.py under DIR",
    )
    p.add_argument(
        "--json", metavar="PATH", default=None,
        help="write certification results (witnesses included) as JSON",
    )
    p.add_argument(
        "--sarif", metavar="PATH", default=None,
        help="write certification results as SARIF 2.1.0",
    )
    p.set_defaults(func=cmd_certify)

    p = sub.add_parser(
        "bench", help="run the search-performance regression benchmark"
    )
    p.add_argument(
        "--device", default="P100",
        help=f"device profile ({', '.join(device_names())}; "
             f"see 'repro devices')",
    )
    p.add_argument(
        "--benchmarks", default=None, metavar="A,B,...",
        help="comma-separated benchmark names (default: the gated subset)",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the results JSON to PATH",
    )
    p.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline JSON to compare against "
             "(default with --check: BENCH_search.json)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="exit non-zero when a gated metric regressed past tolerance",
    )
    p.add_argument(
        "--tolerance", type=float, default=0.15,
        help="relative drift allowed on gated metrics (default 0.15)",
    )
    p.add_argument(
        "--gate-wall", type=float, default=None, metavar="TOL",
        help="also gate wall_s: fail when it grows more than TOL "
             "(relative) over the baseline; off by default because CI "
             "machines are noisy",
    )
    p.add_argument(
        "--executor", choices=EXECUTOR_MODES, default="thread",
        help="evaluation-engine batch executor (thread or process pool)",
    )
    p.add_argument(
        "--pricing", choices=("vector", "scalar"), default=None,
        help="force the family-pricing backend on or off "
             "(default: vectorize when NumPy is available)",
    )
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _obs_begin(args)
    try:
        return args.func(args)
    except ReproError as exc:
        # Error hygiene: one line per failure, mapped to a stable exit
        # status (2 usage, 3 infeasible input, 4 evaluation/checkpoint
        # failure).  --debug restores the traceback.
        if getattr(args, "debug", False):
            raise
        print(f"error: {exc.describe()}", file=sys.stderr)
        return exc.exit_code
    finally:
        _obs_finish(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
