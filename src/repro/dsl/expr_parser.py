"""Parser for the restricted-C expression language of stencil statements.

Expressions consist of numeric literals, scalar references, array
accesses with affine index expressions, the four arithmetic operators,
unary plus/minus, parentheses, and calls to a small set of math
intrinsics.  Index expressions are parsed as general expressions and then
lowered to :class:`~repro.dsl.ast.AffineIndex`; a non-affine subscript is
a parse error, mirroring the affine-access restriction stated in
Section II of the paper.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import lexer
from .ast import AffineIndex, ArrayAccess, BinOp, Call, Expr, Name, Num, UnaryOp
from .errors import ParseError
from .lexer import Token

#: Math intrinsics accepted in stencil bodies, with their arity.
INTRINSICS = {
    "sqrt": 1,
    "cbrt": 1,
    "fabs": 1,
    "abs": 1,
    "exp": 1,
    "log": 1,
    "sin": 1,
    "cos": 1,
    "tanh": 1,
    "fmin": 2,
    "fmax": 2,
    "min": 2,
    "max": 2,
    "pow": 2,
}


class TokenStream:
    """A cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        tok = self.current
        return tok.kind == kind and (value is None or tok.value == value)

    def at_punct(self, value: str) -> bool:
        return self.at(lexer.PUNCT, value)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != lexer.EOF:
            self._pos += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.current
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise ParseError(
                f"expected {want!r}, found {tok.value or tok.kind!r}",
                tok.line,
                tok.col,
            )
        return self.advance()

    def expect_punct(self, value: str) -> Token:
        return self.expect(lexer.PUNCT, value)

    def save(self) -> int:
        return self._pos

    def restore(self, pos: int) -> None:
        self._pos = pos


def parse_expression(stream: TokenStream) -> Expr:
    """Parse an additive expression from the stream."""
    return _parse_additive(stream)


def parse_expr_text(text: str) -> Expr:
    """Parse ``text`` as a standalone expression (testing convenience)."""
    stream = TokenStream(lexer.tokenize(text))
    expr = parse_expression(stream)
    stream.expect(lexer.EOF)
    return expr


def _parse_additive(stream: TokenStream) -> Expr:
    left = _parse_multiplicative(stream)
    while stream.at_punct("+") or stream.at_punct("-"):
        op = stream.advance().value
        right = _parse_multiplicative(stream)
        left = BinOp(op, left, right)
    return left


def _parse_multiplicative(stream: TokenStream) -> Expr:
    left = _parse_unary(stream)
    while stream.at_punct("*") or stream.at_punct("/"):
        op = stream.advance().value
        right = _parse_unary(stream)
        left = BinOp(op, left, right)
    return left


def _parse_unary(stream: TokenStream) -> Expr:
    if stream.at_punct("-") or stream.at_punct("+"):
        op = stream.advance().value
        operand = _parse_unary(stream)
        if op == "+":
            return operand
        return UnaryOp("-", operand)
    return _parse_primary(stream)


def _parse_primary(stream: TokenStream) -> Expr:
    tok = stream.current
    if tok.kind == lexer.INT:
        stream.advance()
        return Num(float(int(tok.value)), is_int=True)
    if tok.kind == lexer.FLOAT:
        stream.advance()
        return Num(float(tok.value), is_int=False)
    if tok.kind == lexer.ID:
        stream.advance()
        if stream.at_punct("("):
            return _parse_call(stream, tok)
        if stream.at_punct("["):
            return _parse_array_access(stream, tok)
        return Name(tok.value)
    if stream.at_punct("("):
        stream.advance()
        inner = _parse_additive(stream)
        stream.expect_punct(")")
        return inner
    raise ParseError(f"unexpected token {tok.value or tok.kind!r}", tok.line, tok.col)


def _parse_call(stream: TokenStream, name_tok: Token) -> Expr:
    func = name_tok.value
    if func not in INTRINSICS:
        raise ParseError(f"unknown function {func!r}", name_tok.line, name_tok.col)
    stream.expect_punct("(")
    args: List[Expr] = []
    if not stream.at_punct(")"):
        args.append(_parse_additive(stream))
        while stream.at_punct(","):
            stream.advance()
            args.append(_parse_additive(stream))
    stream.expect_punct(")")
    arity = INTRINSICS[func]
    if len(args) != arity:
        raise ParseError(
            f"{func} expects {arity} argument(s), got {len(args)}",
            name_tok.line,
            name_tok.col,
        )
    return Call(func, tuple(args))


def _parse_array_access(stream: TokenStream, name_tok: Token) -> ArrayAccess:
    indices: List[AffineIndex] = []
    while stream.at_punct("["):
        open_tok = stream.advance()
        idx_expr = _parse_additive(stream)
        stream.expect_punct("]")
        indices.append(lower_affine(idx_expr, open_tok))
    return ArrayAccess(name_tok.value, tuple(indices))


def lower_affine(expr: Expr, where: Token) -> AffineIndex:
    """Lower an index expression to affine form or raise ParseError."""
    try:
        coeffs, const = _affine_of(expr)
    except _NotAffine as exc:
        raise ParseError(
            f"array subscript is not an affine function of iterators: {exc}",
            where.line,
            where.col,
        ) from None
    return AffineIndex.of(coeffs, const)


class _NotAffine(Exception):
    pass


def _affine_of(expr: Expr) -> Tuple[dict, int]:
    """Return (coeffs, const) of an affine expression; raise _NotAffine."""
    if isinstance(expr, Num):
        if not expr.is_int:
            raise _NotAffine("non-integer constant in subscript")
        return {}, int(expr.value)
    if isinstance(expr, Name):
        return {expr.id: 1}, 0
    if isinstance(expr, UnaryOp) and expr.op == "-":
        coeffs, const = _affine_of(expr.operand)
        return {k: -v for k, v in coeffs.items()}, -const
    if isinstance(expr, BinOp):
        if expr.op in ("+", "-"):
            lc, lk = _affine_of(expr.left)
            rc, rk = _affine_of(expr.right)
            sign = 1 if expr.op == "+" else -1
            merged = dict(lc)
            for name, coeff in rc.items():
                merged[name] = merged.get(name, 0) + sign * coeff
            return merged, lk + sign * rk
        if expr.op == "*":
            lc, lk = _affine_of(expr.left)
            rc, rk = _affine_of(expr.right)
            if lc and rc:
                raise _NotAffine("product of two iterator terms")
            if lc:
                return {k: v * rk for k, v in lc.items()}, lk * rk
            return {k: v * lk for k, v in rc.items()}, lk * rk
        raise _NotAffine(f"operator {expr.op!r} in subscript")
    raise _NotAffine(type(expr).__name__)
