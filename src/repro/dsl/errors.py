"""Error types raised by the DSL frontend.

Every frontend error carries a source location (line, column) so that a
user editing a stencil specification can find the offending construct.
"""

from __future__ import annotations


class DSLError(Exception):
    """Base class for all DSL frontend errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.message = message
        self.line = line
        self.col = col
        location = f" (line {line}, col {col})" if line else ""
        super().__init__(f"{message}{location}")


class LexError(DSLError):
    """Raised when the lexer encounters a character it cannot tokenize."""


class ParseError(DSLError):
    """Raised when the token stream does not match the DSL grammar."""


class ValidationError(DSLError):
    """Raised when a syntactically valid program is semantically ill-formed."""
