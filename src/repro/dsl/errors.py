"""Error types raised by the DSL frontend.

Every frontend error carries a source location (line, column) so that a
user editing a stencil specification can find the offending construct.
All of them descend from :class:`repro.resilience.errors.ReproError`,
so the CLI maps them to a one-line message and the "infeasible input"
exit status (see ``docs/robustness.md``).
"""

from __future__ import annotations

from ..resilience.errors import ReproError


class DSLError(ReproError):
    """Base class for all DSL frontend errors."""

    exit_code = 3

    def __init__(self, message: str, line: int = 0, col: int = 0):
        location = f" (line {line}, col {col})" if line else ""
        super().__init__(
            f"{message}{location}",
            line=line or None,
            col=col or None,
        )
        self.message = message
        self.line = line
        self.col = col


class LexError(DSLError):
    """Raised when the lexer encounters a character it cannot tokenize."""


class ParseError(DSLError):
    """Raised when the token stream does not match the DSL grammar."""


class ValidationError(DSLError):
    """Raised when a syntactically valid program is semantically ill-formed."""
