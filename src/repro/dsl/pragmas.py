"""Parsers for the line-oriented ``#pragma`` and ``#assign`` directives.

Pragma grammar (clauses in any order, as in Listing 1 and Section II-B2)::

    #pragma [stream <iter>] [block (<n>,<m>[,<p>])]
            [unroll <iter>=<int> [, <iter>=<int>]...] [occupancy <t>]

Assign grammar (Section II-B1)::

    #assign <class> (<name>[, <name>]...) [, <class> (...)]...

where ``<class>`` is one of ``shmem``, ``gmem``, ``register``, ``constant``.
"""

from __future__ import annotations

from typing import List, Tuple

from . import lexer
from .ast import AssignDirective, Pragma, SourceSpan
from .errors import ParseError
from .expr_parser import TokenStream

STORAGE_CLASSES = ("shmem", "gmem", "register", "constant")


def _payload_stream(directive_text: str, keyword: str, line: int) -> TokenStream:
    body = directive_text[len("#") :].strip()
    if not body.startswith(keyword):
        raise ParseError(f"expected #{keyword} directive", line, 1)
    payload = body[len(keyword) :]
    tokens = lexer.tokenize(payload)
    # Re-home token line numbers onto the directive's source line.
    rehomed = [lexer.Token(t.kind, t.value, line, t.col) for t in tokens]
    return TokenStream(rehomed)


def parse_pragma(directive_text: str, line: int = 0) -> Pragma:
    """Parse a ``#pragma`` directive payload into a :class:`Pragma`."""
    stream = _payload_stream(directive_text, "pragma", line)
    stream_dim = None
    block: Tuple[int, ...] = ()
    unroll: List[Tuple[str, int]] = []
    occupancy = None
    while not stream.at(lexer.EOF):
        clause = stream.expect(lexer.ID).value
        if clause == "stream":
            stream_dim = stream.expect(lexer.ID).value
        elif clause == "block":
            stream.expect_punct("(")
            dims = [int(stream.expect(lexer.INT).value)]
            while stream.at_punct(","):
                stream.advance()
                dims.append(int(stream.expect(lexer.INT).value))
            stream.expect_punct(")")
            if not 1 <= len(dims) <= 3:
                raise ParseError("block clause takes 1-3 sizes", line, 1)
            block = tuple(dims)
        elif clause == "unroll":
            unroll.append(_parse_unroll_item(stream))
            while stream.at_punct(","):
                stream.advance()
                unroll.append(_parse_unroll_item(stream))
        elif clause == "occupancy":
            tok = stream.current
            if tok.kind not in (lexer.FLOAT, lexer.INT):
                raise ParseError("occupancy clause expects a number", line, tok.col)
            stream.advance()
            occupancy = float(tok.value)
            if not 0.0 < occupancy <= 1.0:
                raise ParseError(
                    f"occupancy must be in (0, 1], got {occupancy}", line, tok.col
                )
        else:
            raise ParseError(f"unknown pragma clause {clause!r}", line, 1)
    return Pragma(
        stream_dim=stream_dim,
        block=block,
        unroll=tuple(unroll),
        occupancy=occupancy,
        span=SourceSpan(line, 1) if line else None,
    )


def _parse_unroll_item(stream: TokenStream) -> Tuple[str, int]:
    name = stream.expect(lexer.ID).value
    stream.expect_punct("=")
    factor = int(stream.expect(lexer.INT).value)
    if factor < 1:
        raise ParseError(f"unroll factor must be >= 1, got {factor}")
    return (name, factor)


def parse_assign(directive_text: str, line: int = 0) -> AssignDirective:
    """Parse an ``#assign`` directive payload into an AssignDirective."""
    stream = _payload_stream(directive_text, "assign", line)
    placements: List[Tuple[str, str]] = []
    seen: set = set()
    first = True
    while not stream.at(lexer.EOF):
        if not first:
            stream.expect_punct(",")
        first = False
        cls_tok = stream.expect(lexer.ID)
        storage = cls_tok.value
        if storage not in STORAGE_CLASSES:
            raise ParseError(
                f"unknown storage class {storage!r} "
                f"(expected one of {', '.join(STORAGE_CLASSES)})",
                line,
                cls_tok.col,
            )
        stream.expect_punct("(")
        names = [stream.expect(lexer.ID).value]
        while stream.at_punct(","):
            stream.advance()
            names.append(stream.expect(lexer.ID).value)
        stream.expect_punct(")")
        for name in names:
            if name in seen:
                raise ParseError(f"array {name!r} assigned twice", line, cls_tok.col)
            seen.add(name)
            placements.append((name, storage))
    if not placements:
        raise ParseError("#assign directive has no placements", line, 1)
    return AssignDirective(
        tuple(placements), span=SourceSpan(line, 1) if line else None
    )
