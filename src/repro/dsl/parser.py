"""Program-level parser for the ARTEMIS stencil DSL.

The grammar follows Listing 1 of the paper::

    parameter L=512, M=512, N=512;
    iterator k, j, i;
    double in[L,M,N], out[L,M,N], a, b, h2inv;
    copyin out, in, h2inv, a, b;
    iterate 12;                       // optional: time iteration count
    #pragma stream k block (32,16) unroll j=2
    stencil jacobi (B, A, h2inv, a, b) {
      double c = b * h2inv;
      #assign shmem (A)
      B[k][j][i] = a*A[k][j][i] - c*(...);
    }
    jacobi (out, in, h2inv, a, b);
    copyout out;

``iterate T;`` is this implementation's rendering of the paper's remark
that "a loop construct may be used to specify the time loop for iterative
stencils"; it sets :attr:`Program.time_iterations`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import lexer
from .ast import (
    ArrayAccess,
    AssignDirective,
    Assignment,
    LocalDecl,
    Name,
    Parameter,
    Pragma,
    Program,
    SourceSpan,
    StencilCall,
    StencilDef,
    Stmt,
    VarDecl,
)
from .errors import ParseError
from .expr_parser import TokenStream, parse_expression
from .pragmas import parse_assign, parse_pragma
from .validate import validate_program

DTYPES = ("double", "float", "int")


def _span(token) -> SourceSpan:
    """Span of the construct starting at ``token``."""
    return SourceSpan(token.line, token.col)


def parse(source: str, validate: bool = True) -> Program:
    """Parse DSL source text into a :class:`Program`.

    When ``validate`` is true (default), semantic validation runs and
    raises :class:`~repro.dsl.errors.ValidationError` on ill-formed
    programs.
    """
    from ..obs import span

    with span("parse", source_bytes=len(source)):
        stream = TokenStream(lexer.tokenize(source))
        parser = _ProgramParser(stream)
        program = parser.parse_program()
        if validate:
            validate_program(program)
        return program


class _ProgramParser:
    def __init__(self, stream: TokenStream):
        self.stream = stream
        self.parameters: List[Parameter] = []
        self.iterators: List[str] = []
        self.decls: List[VarDecl] = []
        self.copyin: List[str] = []
        self.copyout: List[str] = []
        self.stencils: List[StencilDef] = []
        self.calls: List[StencilCall] = []
        self.time_iterations = 1
        self._pending_pragma: Optional[Pragma] = None

    # -- driver -------------------------------------------------------------

    def parse_program(self) -> Program:
        s = self.stream
        while not s.at(lexer.EOF):
            tok = s.current
            if tok.kind == lexer.DIRECTIVE:
                self._parse_directive()
            elif tok.kind == lexer.ID:
                self._parse_item(tok.value)
            else:
                raise ParseError(
                    f"unexpected token {tok.value!r}", tok.line, tok.col
                )
        return Program(
            parameters=tuple(self.parameters),
            iterators=tuple(self.iterators),
            decls=tuple(self.decls),
            copyin=tuple(self.copyin),
            copyout=tuple(self.copyout),
            stencils=tuple(self.stencils),
            calls=tuple(self.calls),
            time_iterations=self.time_iterations,
        )

    def _parse_directive(self) -> None:
        tok = self.stream.advance()
        body = tok.value.lstrip("#").strip()
        if body.startswith("pragma"):
            self._pending_pragma = parse_pragma(tok.value, tok.line)
        elif body.startswith("assign"):
            raise ParseError(
                "#assign is only valid inside a stencil body", tok.line, tok.col
            )
        else:
            raise ParseError(f"unknown directive {tok.value!r}", tok.line, tok.col)

    def _parse_item(self, keyword: str) -> None:
        if keyword == "parameter":
            self._parse_parameters()
        elif keyword == "iterator":
            self._parse_iterators()
        elif keyword == "iterate":
            self._parse_iterate()
        elif keyword in DTYPES:
            self._parse_var_decls()
        elif keyword == "copyin":
            self.copyin.extend(self._parse_name_list("copyin"))
        elif keyword == "copyout":
            self.copyout.extend(self._parse_name_list("copyout"))
        elif keyword == "stencil":
            self._parse_stencil_def()
        else:
            self._parse_call()

    # -- top-level declarations ----------------------------------------------

    def _parse_parameters(self) -> None:
        s = self.stream
        s.expect(lexer.ID, "parameter")
        while True:
            name_tok = s.expect(lexer.ID)
            name = name_tok.value
            s.expect_punct("=")
            value = int(s.expect(lexer.INT).value)
            self.parameters.append(
                Parameter(name, value, span=_span(name_tok))
            )
            if s.at_punct(","):
                s.advance()
                continue
            break
        s.expect_punct(";")

    def _parse_iterators(self) -> None:
        s = self.stream
        s.expect(lexer.ID, "iterator")
        while True:
            self.iterators.append(s.expect(lexer.ID).value)
            if s.at_punct(","):
                s.advance()
                continue
            break
        s.expect_punct(";")

    def _parse_iterate(self) -> None:
        s = self.stream
        tok = s.expect(lexer.ID, "iterate")
        count = int(s.expect(lexer.INT).value)
        if count < 1:
            raise ParseError("iterate count must be >= 1", tok.line, tok.col)
        self.time_iterations = count
        s.expect_punct(";")

    def _parse_var_decls(self) -> None:
        s = self.stream
        dtype = s.expect(lexer.ID).value
        while True:
            name_tok = s.expect(lexer.ID)
            name = name_tok.value
            dims: List = []
            if s.at_punct("["):
                s.advance()
                dims.append(self._parse_dim())
                while s.at_punct(","):
                    s.advance()
                    dims.append(self._parse_dim())
                s.expect_punct("]")
            self.decls.append(
                VarDecl(name, dtype, tuple(dims), span=_span(name_tok))
            )
            if s.at_punct(","):
                s.advance()
                continue
            break
        s.expect_punct(";")

    def _parse_dim(self):
        s = self.stream
        tok = s.current
        if tok.kind == lexer.ID:
            s.advance()
            return tok.value
        if tok.kind == lexer.INT:
            s.advance()
            return int(tok.value)
        raise ParseError("array dimension must be a parameter or integer",
                         tok.line, tok.col)

    def _parse_name_list(self, keyword: str) -> List[str]:
        s = self.stream
        s.expect(lexer.ID, keyword)
        names = [s.expect(lexer.ID).value]
        while s.at_punct(","):
            s.advance()
            names.append(s.expect(lexer.ID).value)
        s.expect_punct(";")
        return names

    # -- stencil definitions and calls ----------------------------------------

    def _parse_stencil_def(self) -> None:
        s = self.stream
        kw_tok = s.expect(lexer.ID, "stencil")
        name = s.expect(lexer.ID).value
        s.expect_punct("(")
        params: List[str] = []
        if not s.at_punct(")"):
            params.append(s.expect(lexer.ID).value)
            while s.at_punct(","):
                s.advance()
                params.append(s.expect(lexer.ID).value)
        s.expect_punct(")")
        s.expect_punct("{")
        body: List[Stmt] = []
        assign: Optional[AssignDirective] = None
        while not s.at_punct("}"):
            if s.at(lexer.DIRECTIVE):
                tok = s.advance()
                payload = tok.value.lstrip("#").strip()
                if payload.startswith("assign"):
                    if assign is not None:
                        raise ParseError(
                            "multiple #assign directives in one stencil",
                            tok.line,
                            tok.col,
                        )
                    assign = parse_assign(tok.value, tok.line)
                    if s.at_punct(";"):
                        s.advance()
                else:
                    raise ParseError(
                        f"unexpected directive in stencil body: {tok.value!r}",
                        tok.line,
                        tok.col,
                    )
                continue
            body.append(self._parse_statement())
        s.expect_punct("}")
        self.stencils.append(
            StencilDef(
                name=name,
                params=tuple(params),
                body=tuple(body),
                assign=assign,
                pragma=self._pending_pragma,
                span=_span(kw_tok),
            )
        )
        self._pending_pragma = None

    def _parse_statement(self) -> Stmt:
        s = self.stream
        tok = s.current
        if tok.kind == lexer.ID and tok.value in DTYPES:
            dtype = s.advance().value
            name = s.expect(lexer.ID).value
            s.expect_punct("=")
            init = parse_expression(s)
            s.expect_punct(";")
            return LocalDecl(name, dtype, init, span=_span(tok))
        # Assignment: lhs (= | +=) rhs ;
        name_tok = s.expect(lexer.ID)
        lhs: object
        if s.at_punct("["):
            from .expr_parser import _parse_array_access  # shared helper

            lhs = _parse_array_access(s, name_tok)
        else:
            lhs = Name(name_tok.value)
        op_tok = s.current
        if op_tok.kind == lexer.PUNCT and op_tok.value in ("=", "+="):
            s.advance()
        else:
            raise ParseError(
                f"expected '=' or '+=', found {op_tok.value!r}",
                op_tok.line,
                op_tok.col,
            )
        rhs = parse_expression(s)
        s.expect_punct(";")
        assert isinstance(lhs, (ArrayAccess, Name))
        return Assignment(lhs, rhs, op=op_tok.value, span=_span(name_tok))

    def _parse_call(self) -> None:
        s = self.stream
        name_tok = s.expect(lexer.ID)
        s.expect_punct("(")
        args: List[str] = []
        if not s.at_punct(")"):
            args.append(s.expect(lexer.ID).value)
            while s.at_punct(","):
                s.advance()
                args.append(s.expect(lexer.ID).value)
        s.expect_punct(")")
        s.expect_punct(";")
        self.calls.append(
            StencilCall(name_tok.value, tuple(args), span=_span(name_tok))
        )
