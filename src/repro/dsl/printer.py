"""Unparser: render AST nodes back to DSL source text.

Used by the kernel-fission component (Section VI-B) to write generated
fission candidates out as DSL specification files, exactly as the paper's
Figure 3c shows, and by round-trip tests of the frontend.
"""

from __future__ import annotations

from typing import List

from .ast import (
    ArrayAccess,
    AssignDirective,
    Assignment,
    BinOp,
    Call,
    Expr,
    LocalDecl,
    Name,
    Num,
    Pragma,
    Program,
    StencilDef,
    UnaryOp,
)

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2}


def format_expr(expr: Expr, parent_prec: int = 0, right_side: bool = False) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Num):
        if expr.is_int:
            return str(int(expr.value))
        text = repr(expr.value)
        return text
    if isinstance(expr, Name):
        return expr.id
    if isinstance(expr, ArrayAccess):
        return str(expr)
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, UnaryOp):
        inner = format_expr(expr.operand, parent_prec=3)
        text = f"-{inner}"
        return f"({text})" if parent_prec > 1 else text
    assert isinstance(expr, BinOp)
    prec = _PRECEDENCE[expr.op]
    left = format_expr(expr.left, prec, right_side=False)
    right = format_expr(expr.right, prec, right_side=True)
    text = f"{left} {expr.op} {right}"
    needs_parens = prec < parent_prec or (
        prec == parent_prec and right_side and expr.op in ("-", "/", "+", "*")
    )
    return f"({text})" if needs_parens else text


def format_pragma(pragma: Pragma) -> str:
    parts: List[str] = ["#pragma"]
    if pragma.stream_dim:
        parts.append(f"stream {pragma.stream_dim}")
    if pragma.block:
        parts.append("block (" + ",".join(str(b) for b in pragma.block) + ")")
    for name, factor in pragma.unroll:
        parts.append(f"unroll {name}={factor}")
    if pragma.occupancy is not None:
        parts.append(f"occupancy {pragma.occupancy}")
    return " ".join(parts)


def format_assign(assign: AssignDirective) -> str:
    by_class: dict = {}
    for name, storage in assign.placements:
        by_class.setdefault(storage, []).append(name)
    groups = [
        f"{storage} ({', '.join(names)})" for storage, names in by_class.items()
    ]
    return "#assign " + ", ".join(groups)


def format_statement(stmt) -> str:
    if isinstance(stmt, LocalDecl):
        return f"{stmt.dtype} {stmt.name} = {format_expr(stmt.init)};"
    assert isinstance(stmt, Assignment)
    return f"{stmt.lhs} {stmt.op} {format_expr(stmt.rhs)};"


def format_stencil(stencil: StencilDef) -> str:
    lines: List[str] = []
    if stencil.pragma is not None:
        lines.append(format_pragma(stencil.pragma))
    lines.append(f"stencil {stencil.name} ({', '.join(stencil.params)}) {{")
    if stencil.assign is not None:
        lines.append("  " + format_assign(stencil.assign))
    for stmt in stencil.body:
        lines.append("  " + format_statement(stmt))
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render a full program as DSL source text (parseable round trip)."""
    lines: List[str] = []
    if program.parameters:
        lines.append(
            "parameter "
            + ", ".join(f"{p.name}={p.value}" for p in program.parameters)
            + ";"
        )
    if program.iterators:
        lines.append("iterator " + ", ".join(program.iterators) + ";")
    by_dtype: dict = {}
    for decl in program.decls:
        by_dtype.setdefault(decl.dtype, []).append(decl)
    for dtype, decls in by_dtype.items():
        rendered = []
        for decl in decls:
            if decl.is_array:
                dims = ",".join(str(d) for d in decl.dims)
                rendered.append(f"{decl.name}[{dims}]")
            else:
                rendered.append(decl.name)
        lines.append(f"{dtype} " + ", ".join(rendered) + ";")
    if program.copyin:
        lines.append("copyin " + ", ".join(program.copyin) + ";")
    if program.time_iterations != 1:
        lines.append(f"iterate {program.time_iterations};")
    for stencil in program.stencils:
        lines.append(format_stencil(stencil))
    for call in program.calls:
        lines.append(f"{call.name} ({', '.join(call.args)});")
    if program.copyout:
        lines.append("copyout " + ", ".join(program.copyout) + ";")
    return "\n".join(lines) + "\n"
