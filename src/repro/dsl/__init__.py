"""The ARTEMIS stencil DSL frontend.

Parses the minimal stencil language of the paper (Section II) plus the
ARTEMIS extensions: ``#pragma`` auxiliary information, ``#assign``
user-guided resource assignment, and the ``occupancy`` rationing clause.

Typical use::

    from repro.dsl import parse
    program = parse(source_text)
"""

from .ast import (
    AffineIndex,
    ArrayAccess,
    AssignDirective,
    Assignment,
    BinOp,
    Call,
    Expr,
    LocalDecl,
    Name,
    Num,
    Parameter,
    Pragma,
    Program,
    StencilCall,
    StencilDef,
    UnaryOp,
    VarDecl,
    array_accesses,
    scalar_names,
    walk,
)
from .errors import DSLError, LexError, ParseError, ValidationError
from .expr_parser import parse_expr_text
from .parser import parse
from .printer import format_expr, format_program, format_stencil
from .validate import call_bindings, validate_program

__all__ = [
    "AffineIndex",
    "ArrayAccess",
    "AssignDirective",
    "Assignment",
    "BinOp",
    "Call",
    "DSLError",
    "Expr",
    "LexError",
    "LocalDecl",
    "Name",
    "Num",
    "Parameter",
    "ParseError",
    "Pragma",
    "Program",
    "StencilCall",
    "StencilDef",
    "UnaryOp",
    "ValidationError",
    "VarDecl",
    "array_accesses",
    "call_bindings",
    "format_expr",
    "format_program",
    "format_stencil",
    "parse",
    "parse_expr_text",
    "scalar_names",
    "validate_program",
    "walk",
]
