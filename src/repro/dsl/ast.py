"""AST node definitions for the ARTEMIS stencil DSL.

Two families of nodes live here:

* **Expression nodes** — the restricted-C expression language used on the
  right-hand side of stencil statements.  All memory accesses are scalars
  or array elements, and array index expressions are affine functions of
  the declared iterators and integer constants (paper, Section II).
* **Program nodes** — declarations, pragmas, stencil definitions and
  stencil calls that make up a specification file.

All nodes are immutable; transformations build new trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple, Union

# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SourceSpan:
    """A 1-based source position carried from lexer tokens to AST nodes.

    ``line``/``col`` locate the first token of the construct; the
    optional end coordinates (0 when unknown) delimit it.  Spans are
    diagnostic metadata only: they are excluded from node equality and
    hashing, so two programs that differ only in whitespace still
    compare equal (the printer round-trip tests rely on this).
    """

    line: int
    col: int
    end_line: int = 0
    end_col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


def span_of(node) -> Optional["SourceSpan"]:
    """The node's source span, or None for synthesized nodes."""
    return getattr(node, "span", None)


# ---------------------------------------------------------------------------
# Affine index expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AffineIndex:
    """An affine function of iterators: ``sum(coeffs[it] * it) + const``.

    Array subscripts in the DSL must reduce to this form.  The common case
    for stencils is a single iterator with coefficient 1 and a small
    constant offset (e.g. ``k-1``), but general affine forms are accepted
    by the frontend and restricted later where a transformation needs the
    simple form.
    """

    coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    @staticmethod
    def of(coeffs: Mapping[str, int], const: int = 0) -> "AffineIndex":
        items = tuple(sorted((k, v) for k, v in coeffs.items() if v != 0))
        return AffineIndex(items, const)

    @property
    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def single_iterator(self) -> Optional[str]:
        """Return the iterator name if this is ``1*it + const``, else None."""
        if len(self.coeffs) == 1 and self.coeffs[0][1] == 1:
            return self.coeffs[0][0]
        return None

    def offset_for(self, iterator: str) -> Optional[int]:
        """Constant offset relative to ``iterator`` if of form ``it + c``."""
        if self.single_iterator() == iterator:
            return self.const
        return None

    def shifted(self, delta: int) -> "AffineIndex":
        return AffineIndex(self.coeffs, self.const + delta)

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.coeffs:
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        expr = "+".join(parts).replace("+-", "-")
        if not expr:
            return str(self.const)
        if self.const > 0:
            return f"{expr}+{self.const}"
        if self.const < 0:
            return f"{expr}{self.const}"
        return expr


# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------

Expr = Union["Num", "Name", "ArrayAccess", "BinOp", "UnaryOp", "Call"]


@dataclass(frozen=True)
class Num:
    """Numeric literal. ``is_int`` distinguishes ``6`` from ``6.0``."""

    value: float
    is_int: bool = False

    def __str__(self) -> str:
        if self.is_int:
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class Name:
    """A reference to a scalar variable (or, in index context, an iterator)."""

    id: str

    def __str__(self) -> str:
        return self.id


@dataclass(frozen=True)
class ArrayAccess:
    """``A[k-1][j][i+2]`` — an array element read or write."""

    name: str
    indices: Tuple[AffineIndex, ...]

    @property
    def ndim(self) -> int:
        return len(self.indices)

    def offsets(self, iterators: Sequence[str]) -> Optional[Tuple[int, ...]]:
        """Constant offsets per dimension when each index is ``it + c``.

        ``iterators`` gives the expected iterator for each dimension of
        this access (outermost first).  Returns None when any index is not
        in the simple shifted form (e.g. a constant subscript or a skewed
        affine index).
        """
        if len(iterators) != len(self.indices):
            return None
        out = []
        for it, idx in zip(iterators, self.indices):
            off = idx.offset_for(it)
            if off is None:
                return None
            out.append(off)
        return tuple(out)

    def shifted(self, dim: int, delta: int) -> "ArrayAccess":
        new = list(self.indices)
        new[dim] = new[dim].shifted(delta)
        return ArrayAccess(self.name, tuple(new))

    def __str__(self) -> str:
        return self.name + "".join(f"[{idx}]" for idx in self.indices)


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic: op in ``+ - * /``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    """Unary ``-`` or ``+``."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Call:
    """A math intrinsic call such as ``sqrt(x)`` or ``fmax(a, b)``."""

    func: str
    args: Tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all sub-expressions in pre-order."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk(arg)


def array_accesses(expr: Expr) -> Iterator[ArrayAccess]:
    """Yield every ArrayAccess in ``expr`` (with repetition)."""
    for node in walk(expr):
        if isinstance(node, ArrayAccess):
            yield node


def scalar_names(expr: Expr) -> Iterator[str]:
    """Yield every scalar Name referenced in ``expr`` (with repetition)."""
    for node in walk(expr):
        if isinstance(node, Name):
            yield node.id


# ---------------------------------------------------------------------------
# Program nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Parameter:
    """``parameter L=512`` — a compile-time extent constant."""

    name: str
    value: int
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class VarDecl:
    """``double in[L,M,N]`` or ``double a`` — array or scalar declaration.

    ``dims`` holds parameter names or integer literals, outermost first;
    an empty tuple declares a scalar.
    """

    name: str
    dtype: str
    dims: Tuple[Union[str, int], ...] = ()
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def ndim(self) -> int:
        return len(self.dims)


@dataclass(frozen=True)
class Pragma:
    """Auxiliary code-generation info attached to the next stencil def.

    Mirrors the paper's ``#pragma stream k block (32,16) unroll j=2`` with
    the Section II-B2 ``occupancy t`` extension.
    """

    stream_dim: Optional[str] = None
    block: Tuple[int, ...] = ()
    unroll: Tuple[Tuple[str, int], ...] = ()
    occupancy: Optional[float] = None
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)

    @property
    def unroll_map(self) -> Dict[str, int]:
        return dict(self.unroll)


@dataclass(frozen=True)
class AssignDirective:
    """``#assign shmem (u0,u1,u2), gmem (mu,la)`` — Section II-B1.

    Maps array names to a storage class the generator must honour.
    Storage classes: ``shmem``, ``gmem``, ``register``, ``constant``.
    """

    placements: Tuple[Tuple[str, str], ...] = ()
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)

    @property
    def placement_map(self) -> Dict[str, str]:
        return dict(self.placements)


@dataclass(frozen=True)
class LocalDecl:
    """``double c = b * h2inv;`` — a per-point temporary scalar."""

    name: str
    dtype: str
    init: Expr
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Assignment:
    """``B[k][j][i] = expr;`` or ``r += expr;`` — a stencil statement."""

    lhs: Union[ArrayAccess, Name]
    rhs: Expr
    op: str = "="  # '=' or '+='
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)

    @property
    def target(self) -> str:
        return self.lhs.name if isinstance(self.lhs, ArrayAccess) else self.lhs.id


Stmt = Union[LocalDecl, Assignment]


@dataclass(frozen=True)
class StencilDef:
    """A named stencil function with positional parameters."""

    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]
    assign: Optional[AssignDirective] = None
    pragma: Optional[Pragma] = None
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class StencilCall:
    """``jacobi(out, in, h2inv, a, b);`` — invoke a stencil definition."""

    name: str
    args: Tuple[str, ...]
    span: Optional[SourceSpan] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Program:
    """A complete stencil specification file."""

    parameters: Tuple[Parameter, ...] = ()
    iterators: Tuple[str, ...] = ()
    decls: Tuple[VarDecl, ...] = ()
    copyin: Tuple[str, ...] = ()
    copyout: Tuple[str, ...] = ()
    stencils: Tuple[StencilDef, ...] = ()
    calls: Tuple[StencilCall, ...] = ()
    time_iterations: int = 1

    # -- convenience lookups ------------------------------------------------

    @property
    def parameter_map(self) -> Dict[str, int]:
        return {p.name: p.value for p in self.parameters}

    @property
    def decl_map(self) -> Dict[str, VarDecl]:
        return {d.name: d for d in self.decls}

    def stencil(self, name: str) -> StencilDef:
        for s in self.stencils:
            if s.name == name:
                return s
        raise KeyError(name)

    def array_shape(self, name: str) -> Tuple[int, ...]:
        """Concrete shape of a declared array, resolving parameter names."""
        decl = self.decl_map[name]
        params = self.parameter_map
        return tuple(params[d] if isinstance(d, str) else d for d in decl.dims)

    def replace(self, **changes) -> "Program":
        from dataclasses import replace as _replace

        return _replace(self, **changes)


# A conventional ordering helper: the DSL declares iterators outermost
# first (e.g. ``iterator k, j, i``), matching array dimension order.
def iterator_axis(program: Program, iterator: str) -> int:
    """Axis index (0 = outermost) of ``iterator`` in the program."""
    return program.iterators.index(iterator)
