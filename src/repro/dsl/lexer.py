"""Tokenizer for the ARTEMIS stencil DSL.

The language is the "minimal stencil language" of the paper (Section II)
plus the ARTEMIS-specific extensions (Section II-B).  The surface syntax
is a small, C-flavoured declaration language.  Two constructs are
line-oriented and handled specially:

* ``#pragma ...``  — auxiliary code-generation information (streaming
  dimension, thread block size, unroll factors, target occupancy).
* ``#assign ...``  — user-guided resource assignment inside a stencil
  function body.

The lexer turns those into a single :class:`Token` of kind ``DIRECTIVE``
whose value is the raw directive text; the directive sub-parsers in
:mod:`repro.dsl.pragmas` tokenize the payload on their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError

# Token kinds.
ID = "ID"
INT = "INT"
FLOAT = "FLOAT"
PUNCT = "PUNCT"  # one of ( ) [ ] { } , ; = + - * / < > ! ? :
DIRECTIVE = "DIRECTIVE"  # '#pragma ...' or '#assign ...' up to end of line
EOF = "EOF"

#: Multi-character operators recognized as single PUNCT tokens.
_TWO_CHAR_OPS = ("+=", "-=", "*=", "/=", "==", "<=", ">=", "!=")

_SINGLE_CHARS = set("()[]{},;=+-*/<>!?:")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source location."""

    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


def _strip_comments(source: str) -> str:
    """Replace comments with spaces, preserving line/column structure."""
    out: List[str] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                out.append(" ")
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            depth_end = source.find("*/", i + 2)
            if depth_end == -1:
                raise LexError("unterminated block comment", _line_of(source, i), 1)
            for j in range(i, depth_end + 2):
                out.append("\n" if source[j] == "\n" else " ")
            i = depth_end + 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _line_of(source: str, pos: int) -> int:
    return source.count("\n", 0, pos) + 1


def tokenize(source: str) -> List[Token]:
    """Tokenize DSL source text into a list of tokens ending with EOF."""
    return list(iter_tokens(source))


def iter_tokens(source: str) -> Iterator[Token]:
    """Yield tokens for ``source``; the final token has kind ``EOF``."""
    text = _strip_comments(source)
    i, n = 0, len(text)
    line, line_start = 1, 0

    def col(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "#":
            start = i
            while i < n and text[i] != "\n":
                i += 1
            yield Token(DIRECTIVE, text[start:i].rstrip(), line, col(start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            yield Token(ID, text[start:i], line, col(start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    text[i + 1].isdigit() or text[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 1
                    if text[i] in "+-":
                        i += 1
                else:
                    break
            value = text[start:i]
            # A trailing 'f' suffix (C float literal) is tolerated.
            if i < n and text[i] in "fF":
                i += 1
            kind = FLOAT if (seen_dot or seen_exp) else INT
            yield Token(kind, value, line, col(start))
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            yield Token(PUNCT, two, line, col(i))
            i += 2
            continue
        if ch in _SINGLE_CHARS:
            yield Token(PUNCT, ch, line, col(i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col(i))
    yield Token(EOF, "", line, col(i))
