"""Semantic validation of parsed DSL programs.

Validation runs after parsing and enforces the semantic rules implied by
Section II of the paper: every referenced variable resolves, array ranks
match their declarations, subscripts only use declared iterators, stencil
calls match their definitions, and pragma/assign directives reference
real iterators and arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .ast import (
    ArrayAccess,
    Assignment,
    LocalDecl,
    Name,
    Program,
    StencilCall,
    StencilDef,
    VarDecl,
    array_accesses,
    scalar_names,
)
from .errors import ValidationError


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` if ``program`` is ill-formed."""
    _check_unique_names(program)
    _check_parameters(program)
    _check_decl_dims(program)
    _check_copy_lists(program)
    for call in program.calls:
        bindings = call_bindings(program, call)
        stencil = program.stencil(call.name)
        _check_stencil_body(program, stencil, bindings)
        _check_pragma(program, stencil)
        _check_assign(program, stencil, bindings)


def call_bindings(program: Program, call: StencilCall) -> Dict[str, str]:
    """Map a call's formal parameters to actual top-level variable names."""
    try:
        stencil = program.stencil(call.name)
    except KeyError:
        raise ValidationError(f"call to undefined stencil {call.name!r}") from None
    if len(call.args) != len(stencil.params):
        raise ValidationError(
            f"stencil {call.name!r} takes {len(stencil.params)} argument(s), "
            f"call passes {len(call.args)}"
        )
    decls = program.decl_map
    for arg in call.args:
        if arg not in decls:
            raise ValidationError(
                f"call to {call.name!r} passes undeclared variable {arg!r}"
            )
    return dict(zip(stencil.params, call.args))


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_unique_names(program: Program) -> None:
    seen: Set[str] = set()
    for kind, names in (
        ("parameter", [p.name for p in program.parameters]),
        ("iterator", list(program.iterators)),
        ("variable", [d.name for d in program.decls]),
    ):
        for name in names:
            if name in seen:
                raise ValidationError(f"duplicate declaration of {name!r} ({kind})")
            seen.add(name)
    stencil_names: Set[str] = set()
    for s in program.stencils:
        if s.name in stencil_names:
            raise ValidationError(f"duplicate stencil definition {s.name!r}")
        stencil_names.add(s.name)
        if len(set(s.params)) != len(s.params):
            raise ValidationError(f"stencil {s.name!r} has duplicate parameters")


def _check_parameters(program: Program) -> None:
    for p in program.parameters:
        if p.value <= 0:
            raise ValidationError(f"parameter {p.name!r} must be positive")
    if not program.iterators:
        raise ValidationError("program declares no iterators")


def _check_decl_dims(program: Program) -> None:
    params = program.parameter_map
    for decl in program.decls:
        for dim in decl.dims:
            if isinstance(dim, str):
                if dim not in params:
                    raise ValidationError(
                        f"array {decl.name!r} uses undeclared parameter {dim!r}"
                    )
            elif dim <= 0:
                raise ValidationError(
                    f"array {decl.name!r} has non-positive extent {dim}"
                )


def _check_copy_lists(program: Program) -> None:
    decls = program.decl_map
    for name in list(program.copyin) + list(program.copyout):
        if name not in decls:
            raise ValidationError(f"copy list references undeclared {name!r}")
    for name in program.copyout:
        if not decls[name].is_array:
            raise ValidationError(f"copyout of scalar {name!r}")


def _check_stencil_body(
    program: Program, stencil: StencilDef, bindings: Dict[str, str]
) -> None:
    decls = program.decl_map
    iterators = set(program.iterators)

    def actual_decl(name: str) -> Optional[VarDecl]:
        target = bindings.get(name, name)
        return decls.get(target)

    locals_seen: Set[str] = set()
    for stmt in stencil.body:
        if isinstance(stmt, LocalDecl):
            if stmt.name in locals_seen or actual_decl(stmt.name) is not None:
                raise ValidationError(
                    f"stencil {stencil.name!r}: local {stmt.name!r} shadows "
                    "an existing variable"
                )
            _check_expr(program, stencil, stmt.init, locals_seen, bindings)
            locals_seen.add(stmt.name)
            continue
        assert isinstance(stmt, Assignment)
        _check_expr(program, stencil, stmt.rhs, locals_seen, bindings)
        lhs = stmt.lhs
        if isinstance(lhs, ArrayAccess):
            decl = actual_decl(lhs.name)
            if decl is None:
                raise ValidationError(
                    f"stencil {stencil.name!r} writes undeclared array {lhs.name!r}"
                )
            if not decl.is_array or decl.ndim != lhs.ndim:
                raise ValidationError(
                    f"stencil {stencil.name!r}: write to {lhs.name!r} has rank "
                    f"{lhs.ndim}, declaration has rank {decl.ndim}"
                )
            used: Set[str] = set()
            for idx in lhs.indices:
                it = idx.single_iterator()
                if it is None or it not in iterators:
                    raise ValidationError(
                        f"stencil {stencil.name!r}: write subscript {idx} of "
                        f"{lhs.name!r} must be 'iterator + constant'"
                    )
                if it in used:
                    raise ValidationError(
                        f"stencil {stencil.name!r}: iterator {it!r} used twice "
                        f"in write subscripts of {lhs.name!r}"
                    )
                used.add(it)
        else:
            decl = actual_decl(lhs.id)
            if decl is not None and decl.is_array:
                raise ValidationError(
                    f"stencil {stencil.name!r}: array {lhs.id!r} written "
                    "without subscripts"
                )
            if stmt.op == "+=" and lhs.id not in locals_seen and decl is None:
                raise ValidationError(
                    f"stencil {stencil.name!r}: '+=' to {lhs.id!r} before "
                    "any assignment"
                )
            # Plain '=' to an unknown name introduces an implicit local
            # scalar (double), as in the paper's Figure 3c.
            locals_seen.add(lhs.id)


def _check_expr(
    program: Program,
    stencil: StencilDef,
    expr,
    locals_seen: Set[str],
    bindings: Dict[str, str],
) -> None:
    decls = program.decl_map
    iterators = set(program.iterators)
    for access in array_accesses(expr):
        decl = decls.get(bindings.get(access.name, access.name))
        if decl is None:
            raise ValidationError(
                f"stencil {stencil.name!r} reads undeclared array {access.name!r}"
            )
        if not decl.is_array:
            raise ValidationError(
                f"stencil {stencil.name!r}: scalar {access.name!r} subscripted"
            )
        if decl.ndim != access.ndim:
            raise ValidationError(
                f"stencil {stencil.name!r}: access {access} has rank "
                f"{access.ndim}, declaration has rank {decl.ndim}"
            )
        for idx in access.indices:
            for it_name, _ in idx.coeffs:
                if it_name not in iterators:
                    raise ValidationError(
                        f"stencil {stencil.name!r}: subscript of "
                        f"{access.name!r} uses non-iterator {it_name!r}"
                    )
    for name in scalar_names(expr):
        if name in locals_seen or name in iterators:
            continue
        decl = decls.get(bindings.get(name, name))
        if decl is None:
            raise ValidationError(
                f"stencil {stencil.name!r} reads undefined scalar {name!r}"
            )
        if decl.is_array:
            raise ValidationError(
                f"stencil {stencil.name!r}: array {name!r} read without "
                "subscripts"
            )


def _check_pragma(program: Program, stencil: StencilDef) -> None:
    pragma = stencil.pragma
    if pragma is None:
        return
    iterators = set(program.iterators)
    if pragma.stream_dim is not None and pragma.stream_dim not in iterators:
        raise ValidationError(
            f"stencil {stencil.name!r}: stream dimension "
            f"{pragma.stream_dim!r} is not a declared iterator"
        )
    for it_name, factor in pragma.unroll:
        if it_name not in iterators:
            raise ValidationError(
                f"stencil {stencil.name!r}: unroll iterator {it_name!r} "
                "is not declared"
            )
        if factor < 1:
            raise ValidationError(
                f"stencil {stencil.name!r}: unroll factor {factor} < 1"
            )
    for size in pragma.block:
        if size < 1:
            raise ValidationError(
                f"stencil {stencil.name!r}: block size {size} < 1"
            )


def _check_assign(
    program: Program, stencil: StencilDef, bindings: Dict[str, str]
) -> None:
    if stencil.assign is None:
        return
    decls = program.decl_map
    body_arrays: Set[str] = set()
    for stmt in stencil.body:
        exprs: List = []
        if isinstance(stmt, LocalDecl):
            exprs.append(stmt.init)
        else:
            exprs.append(stmt.rhs)
            if isinstance(stmt.lhs, ArrayAccess):
                body_arrays.add(stmt.lhs.name)
        for expr in exprs:
            for access in array_accesses(expr):
                body_arrays.add(access.name)
    for name, _storage in stencil.assign.placements:
        if name not in body_arrays:
            raise ValidationError(
                f"stencil {stencil.name!r}: #assign names {name!r} which is "
                "not accessed in the body"
            )
        decl = decls.get(bindings.get(name, name))
        if decl is not None and not decl.is_array:
            raise ValidationError(
                f"stencil {stencil.name!r}: #assign names scalar {name!r}"
            )
