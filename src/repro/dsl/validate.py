"""Semantic validation of parsed DSL programs.

Validation runs after parsing and enforces the semantic rules implied by
Section II of the paper: every referenced variable resolves, array ranks
match their declarations, subscripts only use declared iterators, stencil
calls match their definitions, and pragma/assign directives reference
real iterators and arrays.

Every :class:`ValidationError` raised here carries the ``line:col`` of
the offending construct (threaded from lexer tokens through the AST's
:class:`~repro.dsl.ast.SourceSpan` fields), so ``validate`` and
``repro lint`` report positions consistently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .ast import (
    ArrayAccess,
    Assignment,
    LocalDecl,
    Name,
    Program,
    StencilCall,
    StencilDef,
    VarDecl,
    array_accesses,
    scalar_names,
    span_of,
)
from .errors import ValidationError


def _pos(*nodes) -> Tuple[int, int]:
    """``(line, col)`` of the first node that carries a span, else (0, 0)."""
    for node in nodes:
        span = span_of(node)
        if span is not None:
            return span.line, span.col
    return 0, 0


def _fail(message: str, *nodes) -> None:
    line, col = _pos(*nodes)
    raise ValidationError(message, line, col)


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` if ``program`` is ill-formed."""
    _check_unique_names(program)
    _check_parameters(program)
    _check_decl_dims(program)
    _check_copy_lists(program)
    for call in program.calls:
        bindings = call_bindings(program, call)
        stencil = program.stencil(call.name)
        _check_stencil_body(program, stencil, bindings)
        _check_pragma(program, stencil)
        _check_assign(program, stencil, bindings)


def call_bindings(program: Program, call: StencilCall) -> Dict[str, str]:
    """Map a call's formal parameters to actual top-level variable names."""
    try:
        stencil = program.stencil(call.name)
    except KeyError:
        line, col = _pos(call)
        raise ValidationError(
            f"call to undefined stencil {call.name!r}", line, col
        ) from None
    if len(call.args) != len(stencil.params):
        _fail(
            f"stencil {call.name!r} takes {len(stencil.params)} argument(s), "
            f"call passes {len(call.args)}",
            call,
        )
    decls = program.decl_map
    for arg in call.args:
        if arg not in decls:
            _fail(
                f"call to {call.name!r} passes undeclared variable {arg!r}",
                call,
            )
    return dict(zip(stencil.params, call.args))


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _check_unique_names(program: Program) -> None:
    seen: Dict[str, object] = {}
    for kind, nodes in (
        ("parameter", [(p.name, p) for p in program.parameters]),
        ("iterator", [(name, None) for name in program.iterators]),
        ("variable", [(d.name, d) for d in program.decls]),
    ):
        for name, node in nodes:
            if name in seen:
                _fail(
                    f"duplicate declaration of {name!r} ({kind})",
                    node,
                    seen[name],
                )
            seen[name] = node
    stencil_names: Set[str] = set()
    for s in program.stencils:
        if s.name in stencil_names:
            _fail(f"duplicate stencil definition {s.name!r}", s)
        stencil_names.add(s.name)
        if len(set(s.params)) != len(s.params):
            _fail(f"stencil {s.name!r} has duplicate parameters", s)


def _check_parameters(program: Program) -> None:
    for p in program.parameters:
        if p.value <= 0:
            _fail(f"parameter {p.name!r} must be positive", p)
    if not program.iterators:
        raise ValidationError("program declares no iterators")


def _check_decl_dims(program: Program) -> None:
    params = program.parameter_map
    for decl in program.decls:
        for dim in decl.dims:
            if isinstance(dim, str):
                if dim not in params:
                    _fail(
                        f"array {decl.name!r} uses undeclared parameter {dim!r}",
                        decl,
                    )
            elif dim <= 0:
                _fail(
                    f"array {decl.name!r} has non-positive extent {dim}", decl
                )


def _check_copy_lists(program: Program) -> None:
    decls = program.decl_map
    for name in list(program.copyin) + list(program.copyout):
        if name not in decls:
            raise ValidationError(f"copy list references undeclared {name!r}")
    for name in program.copyout:
        if not decls[name].is_array:
            _fail(f"copyout of scalar {name!r}", decls[name])


def _check_stencil_body(
    program: Program, stencil: StencilDef, bindings: Dict[str, str]
) -> None:
    decls = program.decl_map
    iterators = set(program.iterators)

    def actual_decl(name: str) -> Optional[VarDecl]:
        target = bindings.get(name, name)
        return decls.get(target)

    locals_seen: Set[str] = set()
    for stmt in stencil.body:
        if isinstance(stmt, LocalDecl):
            if stmt.name in locals_seen or actual_decl(stmt.name) is not None:
                _fail(
                    f"stencil {stencil.name!r}: local {stmt.name!r} shadows "
                    "an existing variable",
                    stmt,
                    stencil,
                )
            _check_expr(program, stencil, stmt.init, locals_seen, bindings, stmt)
            locals_seen.add(stmt.name)
            continue
        assert isinstance(stmt, Assignment)
        _check_expr(program, stencil, stmt.rhs, locals_seen, bindings, stmt)
        lhs = stmt.lhs
        if isinstance(lhs, ArrayAccess):
            decl = actual_decl(lhs.name)
            if decl is None:
                _fail(
                    f"stencil {stencil.name!r} writes undeclared array "
                    f"{lhs.name!r}",
                    stmt,
                    stencil,
                )
            if not decl.is_array or decl.ndim != lhs.ndim:
                _fail(
                    f"stencil {stencil.name!r}: write to {lhs.name!r} has rank "
                    f"{lhs.ndim}, declaration has rank {decl.ndim}",
                    stmt,
                    stencil,
                )
            used: Set[str] = set()
            for idx in lhs.indices:
                it = idx.single_iterator()
                if it is None or it not in iterators:
                    _fail(
                        f"stencil {stencil.name!r}: write subscript {idx} of "
                        f"{lhs.name!r} must be 'iterator + constant'",
                        stmt,
                        stencil,
                    )
                if it in used:
                    _fail(
                        f"stencil {stencil.name!r}: iterator {it!r} used twice "
                        f"in write subscripts of {lhs.name!r}",
                        stmt,
                        stencil,
                    )
                used.add(it)
        else:
            decl = actual_decl(lhs.id)
            if decl is not None and decl.is_array:
                _fail(
                    f"stencil {stencil.name!r}: array {lhs.id!r} written "
                    "without subscripts",
                    stmt,
                    stencil,
                )
            if stmt.op == "+=" and lhs.id not in locals_seen and decl is None:
                _fail(
                    f"stencil {stencil.name!r}: '+=' to {lhs.id!r} before "
                    "any assignment",
                    stmt,
                    stencil,
                )
            # Plain '=' to an unknown name introduces an implicit local
            # scalar (double), as in the paper's Figure 3c.
            locals_seen.add(lhs.id)


def _check_expr(
    program: Program,
    stencil: StencilDef,
    expr,
    locals_seen: Set[str],
    bindings: Dict[str, str],
    stmt=None,
) -> None:
    decls = program.decl_map
    iterators = set(program.iterators)
    for access in array_accesses(expr):
        decl = decls.get(bindings.get(access.name, access.name))
        if decl is None:
            _fail(
                f"stencil {stencil.name!r} reads undeclared array "
                f"{access.name!r}",
                stmt,
                stencil,
            )
        if not decl.is_array:
            _fail(
                f"stencil {stencil.name!r}: scalar {access.name!r} subscripted",
                stmt,
                stencil,
            )
        if decl.ndim != access.ndim:
            _fail(
                f"stencil {stencil.name!r}: access {access} has rank "
                f"{access.ndim}, declaration has rank {decl.ndim}",
                stmt,
                stencil,
            )
        for idx in access.indices:
            for it_name, _ in idx.coeffs:
                if it_name not in iterators:
                    _fail(
                        f"stencil {stencil.name!r}: subscript of "
                        f"{access.name!r} uses non-iterator {it_name!r}",
                        stmt,
                        stencil,
                    )
    for name in scalar_names(expr):
        if name in locals_seen or name in iterators:
            continue
        decl = decls.get(bindings.get(name, name))
        if decl is None:
            _fail(
                f"stencil {stencil.name!r} reads undefined scalar {name!r}",
                stmt,
                stencil,
            )
        if decl.is_array:
            _fail(
                f"stencil {stencil.name!r}: array {name!r} read without "
                "subscripts",
                stmt,
                stencil,
            )


def _check_pragma(program: Program, stencil: StencilDef) -> None:
    pragma = stencil.pragma
    if pragma is None:
        return
    iterators = set(program.iterators)
    if pragma.stream_dim is not None and pragma.stream_dim not in iterators:
        _fail(
            f"stencil {stencil.name!r}: stream dimension "
            f"{pragma.stream_dim!r} is not a declared iterator",
            pragma,
            stencil,
        )
    for it_name, factor in pragma.unroll:
        if it_name not in iterators:
            _fail(
                f"stencil {stencil.name!r}: unroll iterator {it_name!r} "
                "is not declared",
                pragma,
                stencil,
            )
        if factor < 1:
            _fail(
                f"stencil {stencil.name!r}: unroll factor {factor} < 1",
                pragma,
                stencil,
            )
    for size in pragma.block:
        if size < 1:
            _fail(
                f"stencil {stencil.name!r}: block size {size} < 1",
                pragma,
                stencil,
            )


def _check_assign(
    program: Program, stencil: StencilDef, bindings: Dict[str, str]
) -> None:
    if stencil.assign is None:
        return
    decls = program.decl_map
    body_arrays: Set[str] = set()
    for stmt in stencil.body:
        exprs: List = []
        if isinstance(stmt, LocalDecl):
            exprs.append(stmt.init)
        else:
            exprs.append(stmt.rhs)
            if isinstance(stmt.lhs, ArrayAccess):
                body_arrays.add(stmt.lhs.name)
        for expr in exprs:
            for access in array_accesses(expr):
                body_arrays.add(access.name)
    for name, _storage in stencil.assign.placements:
        if name not in body_arrays:
            _fail(
                f"stencil {stencil.name!r}: #assign names {name!r} which is "
                "not accessed in the body",
                stencil.assign,
                stencil,
            )
        decl = decls.get(bindings.get(name, name))
        if decl is not None and not decl.is_array:
            _fail(
                f"stencil {stencil.name!r}: #assign names scalar {name!r}",
                stencil.assign,
                stencil,
            )
