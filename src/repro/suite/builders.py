"""String builders for stencil expressions in the DSL.

Small helpers that assemble derivative operators, neighbour sums and
weighted products as DSL source text.  Used by :mod:`repro.suite.specs`
to construct the 11 evaluation benchmarks with controlled FLOP counts.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

AXES = ("k", "j", "i")


def off(iterator: str, delta: int) -> str:
    if delta == 0:
        return iterator
    return f"{iterator}{'+' if delta > 0 else '-'}{abs(delta)}"


def at(array: str, dk: int = 0, dj: int = 0, di: int = 0) -> str:
    """3-D access at constant offsets from the centre."""
    return f"{array}[{off('k', dk)}][{off('j', dj)}][{off('i', di)}]"


def at_axis(array: str, axis: int, delta: int) -> str:
    """Access offset by ``delta`` along one axis only."""
    offsets = [0, 0, 0]
    offsets[axis] = delta
    return at(array, *offsets)


def sum_of(terms: Sequence[str]) -> str:
    return " + ".join(terms)


def neighbours(array: str, distance: int) -> List[str]:
    """The six axis neighbours at ``distance``."""
    out = []
    for axis in range(3):
        out.append(at_axis(array, axis, +distance))
        out.append(at_axis(array, axis, -distance))
    return out


def box_ring(array: str, kind: str) -> List[str]:
    """27-point box decomposition: 'faces', 'edges' or 'corners'."""
    out = []
    for dk in (-1, 0, 1):
        for dj in (-1, 0, 1):
            for di in (-1, 0, 1):
                nonzero = sum(1 for d in (dk, dj, di) if d != 0)
                if kind == "faces" and nonzero == 1:
                    out.append(at(array, dk, dj, di))
                elif kind == "edges" and nonzero == 2:
                    out.append(at(array, dk, dj, di))
                elif kind == "corners" and nonzero == 3:
                    out.append(at(array, dk, dj, di))
    return out


def d1(array: str, axis: int, order: int, coeffs: Sequence[str]) -> str:
    """Central first-derivative: sum of c_d*(a[+d] - a[-d]), d = 1..order.

    FLOPs: order subs + order muls + (order-1) adds = 3*order - 1.
    """
    terms = []
    for distance in range(1, order + 1):
        terms.append(
            f"{coeffs[distance - 1]}*({at_axis(array, axis, distance)} - "
            f"{at_axis(array, axis, -distance)})"
        )
    return "(" + sum_of(terms) + ")"


def d1_product(
    a: str, b: str, axis: int, order: int, coeffs: Sequence[str]
) -> str:
    """First derivative of a point-wise product a*b.

    FLOPs per distance: 2 muls + 1 sub + 1 coeff mul = 4;
    total = 4*order + (order-1) adds = 5*order - 1.
    """
    terms = []
    for distance in range(1, order + 1):
        plus = (
            f"{at_axis(a, axis, distance)}*{at_axis(b, axis, distance)}"
        )
        minus = (
            f"{at_axis(a, axis, -distance)}*{at_axis(b, axis, -distance)}"
        )
        terms.append(f"{coeffs[distance - 1]}*({plus} - {minus})")
    return "(" + sum_of(terms) + ")"


def d2(array: str, axis: int, order: int, coeffs: Sequence[str],
       center: str) -> str:
    """Central second derivative: c0*a0 + sum c_d*(a[+d] + a[-d]).

    FLOPs: (order+1) muls + order pair-adds + order joins = 3*order + 1.
    """
    terms = [f"{center}*{at(array)}"]
    for distance in range(1, order + 1):
        terms.append(
            f"{coeffs[distance - 1]}*({at_axis(array, axis, distance)} + "
            f"{at_axis(array, axis, -distance)})"
        )
    return "(" + sum_of(terms) + ")"
