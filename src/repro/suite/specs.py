"""DSL specifications of the 11 evaluation benchmarks (paper Table I).

Each builder returns DSL source text.  The kernels reproduce the
*structure* the paper reports — stencil order, per-point FLOPs, number
of I/O arrays, domain size, and iteration count — for:

* three HPGMG smoothers (7pt, 27pt, helmholtz);
* the CDSC denoise image-processing pipeline;
* the miniFlux CFD benchmark (two kernels);
* hypterm / diffterm from the ExpCNS compressible Navier-Stokes proxy;
* addsgd4 / addsgd6 / rhs4center / rhs4sgcurv from SW4lite.

The SW4lite originals are not redistributable as DSL text, so these are
re-derivations from the operators the paper describes (order, arrays,
derivative structure); FLOP counts are matched to Table I.  Lower-rank
stretching arrays (``strx``/``stry``) appear in the addsgd kernels and
rhs4sgcurv — the feature that makes STENCILGEN reject the SW4 kernels.
Table I's "# IO Arrays" counts full-rank (3-D) arrays.
"""

from __future__ import annotations

from typing import Dict, List

from .builders import (
    at,
    at_axis,
    box_ring,
    d1,
    d1_product,
    d2,
    neighbours,
    off,
    sum_of,
)


# ---------------------------------------------------------------------------
# iterative smoothers (512^3, T = 12)
# ---------------------------------------------------------------------------


def smoother_7pt() -> str:
    inner = sum_of(neighbours("A", 1) + [f"- 6.0*{at('A')}"])
    return f"""
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b;
copyin in, a, b;
iterate 12;
#pragma stream k block (32,16)
stencil smooth7 (B, A, a, b) {{
  B[k][j][i] = a*{at('A')} - b*({inner});
}}
smooth7 (out, in, a, b);
copyout out;
"""


def smoother_27pt() -> str:
    faces7 = sum_of([at("A")] + box_ring("A", "faces"))
    edges = sum_of(box_ring("A", "edges"))
    corners = sum_of(box_ring("A", "corners"))
    return f"""
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, h2inv, w1, w2, w3;
copyin in, a, h2inv, w1, w2, w3;
iterate 12;
#pragma stream k block (32,16)
stencil smooth27 (B, A, a, h2inv, w1, w2, w3) {{
  B[k][j][i] = a*{at('A')} - h2inv*(w1*({faces7})
    + w2*({edges}) + w3*({corners}));
}}
smooth27 (out, in, a, h2inv, w1, w2, w3);
copyout out;
"""


def helmholtz() -> str:
    n1 = sum_of(neighbours("A", 1))
    n2 = sum_of(neighbours("A", 2))
    return f"""
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, c1, c2;
copyin in, a, b, c1, c2;
iterate 12;
#pragma stream k block (32,16)
stencil helm (B, A, a, b, c1, c2) {{
  B[k][j][i] = a*{at('A')} - b*({at('A')} + c1*({n1}) + c2*({n2}));
}}
helm (out, in, a, b, c1, c2);
copyout out;
"""


def denoise() -> str:
    """CDSC denoise: diffusion-coefficient kernel + update kernel.

    Kernel 1 evaluates the edge-stopping coefficient from one-sided
    gradients of the evolving image and the data term (the differences
    are staged in scalars, as the CDSC source does); kernel 2 applies
    one damped-diffusion update.
    """
    grad_lines: List[str] = []
    square_terms: List[str] = []
    for arr, tag in (("u", "du"), ("f", "df")):
        for axis, axis_name in enumerate("kji"):
            fwd = f"{tag}{axis_name}p"
            bwd = f"{tag}{axis_name}m"
            grad_lines.append(
                f"  {fwd} = {at_axis(arr, axis, +1)} - {at(arr)};"
            )
            grad_lines.append(
                f"  {bwd} = {at(arr)} - {at_axis(arr, axis, -1)};"
            )
            square_terms.append(f"{fwd}*{fwd}")
            square_terms.append(f"{bwd}*{bwd}")

    flow_terms = []
    for axis in range(3):
        for delta in (+1, -1):
            flow_terms.append(
                f"{at_axis('g', axis, delta)}*"
                f"({at_axis('u', axis, delta)} - {at('u')})"
            )
    flow = sum_of(flow_terms)
    return f"""
parameter L=512, M=512, N=512;
iterator k, j, i;
double uin[L,M,N], uout[L,M,N], f[L,M,N], coeff[L,M,N], eps, dt;
copyin uin, f, eps, dt;
iterate 12;
#pragma stream k block (32,16)
stencil diffusion_coefficient (g, u, f, eps) {{
{chr(10).join(grad_lines)}
  g[k][j][i] = 1.0 / sqrt(eps + {sum_of(square_terms)});
}}
#pragma stream k block (32,16)
stencil update (uo, u, g, dt) {{
  uo[k][j][i] = ({at('u')} + dt*({flow})) / (1.0 + 6.0*dt*{at('g')});
}}
diffusion_coefficient (coeff, uin, f, eps);
update (uout, uin, coeff, dt);
copyout uout;
"""


# ---------------------------------------------------------------------------
# spatial stencils (320^3, single sweep)
# ---------------------------------------------------------------------------


def miniflux() -> str:
    """Loop-chain CFD flux benchmark: interpolation + difference kernels.

    25 full-rank arrays: 5 state variables x (state, three directional
    fluxes, output).
    """
    lines_flux: List[str] = []
    flux_params: List[str] = []
    diff_params: List[str] = []
    lines_diff: List[str] = []
    for m in range(5):
        q = f"q{m}"
        for axis, tag in ((0, "fz"), (1, "fy"), (2, "fx")):
            flux = f"{tag}{m}"
            flux_params.append(flux)
            plus1 = at_axis(q, axis, +1)
            minus1 = at_axis(q, axis, -1)
            plus2 = at_axis(q, axis, +2)
            lines_flux.append(
                f"  {flux}[k][j][i] = vel*(c1*({at(q)} + {plus1}) "
                f"+ c2*({minus1} + {plus2}));"
            )
        diff_params.append(f"out{m}")
        parts = []
        for axis, tag in ((0, "fz"), (1, "fy"), (2, "fx")):
            flux = f"{tag}{m}"
            parts.append(
                f"dxinv*({at_axis(flux, axis, +1)} - "
                f"{at_axis(flux, axis, -1)})"
            )
        lines_diff.append(f"  out{m}[k][j][i] = dt*({sum_of(parts)});")

    arrays = (
        [f"q{m}[W,W,W]" for m in range(5)]
        + [f"{t}{m}[W,W,W]" for m in range(5) for t in ("fx", "fy", "fz")]
        + [f"out{m}[W,W,W]" for m in range(5)]
    )
    qs = ", ".join(f"q{m}" for m in range(5))
    fluxes = ", ".join(flux_params)
    outs = ", ".join(diff_params)
    return f"""
parameter W=320;
iterator k, j, i;
double {', '.join(arrays)}, vel, c1, c2, dxinv, dt;
copyin {qs}, vel, c1, c2, dxinv, dt;
#pragma stream k block (16,16)
stencil flux ({fluxes}, {qs}, vel, c1, c2) {{
{chr(10).join(lines_flux)}
}}
#pragma stream k block (16,16)
stencil diff ({outs}, {fluxes}, dxinv, dt) {{
{chr(10).join(lines_diff)}
}}
flux ({fluxes}, {qs}, vel, c1, c2);
diff ({outs}, {fluxes}, dxinv, dt);
copyout {outs};
"""


_D8 = ("a1", "a2", "a3", "a4")


def hypterm() -> str:
    """ExpCNS hyperbolic flux: 8th-order advective derivatives.

    13 full-rank arrays: 4 momenta/energy + 4 primitives + 5 fluxes.
    """
    body: List[str] = []
    body.append(f"  dxp = dxinv*{d1('p', 2, 4, _D8)};")
    body.append(f"  dyp = dxinv*{d1('p', 1, 4, _D8)};")
    body.append(f"  dzp = dxinv*{d1('p', 0, 4, _D8)};")
    body.append(
        f"  flux0[k][j][i] = -(dxinv*{d1('mx', 2, 4, _D8)} + "
        f"dxinv*{d1('my', 1, 4, _D8)} + dxinv*{d1('mz', 0, 4, _D8)});"
    )
    for index, mom in enumerate(("mx", "my", "mz")):
        terms = [
            f"dxinv*{d1_product(mom, 'vx', 2, 4, _D8)}",
            f"dxinv*{d1_product(mom, 'vy', 1, 4, _D8)}",
            f"dxinv*{d1_product(mom, 'vz', 0, 4, _D8)}",
        ]
        pressure = ("dxp", "dyp", "dzp")[index]
        body.append(
            f"  flux{index + 1}[k][j][i] = -({sum_of(terms)} + {pressure});"
        )
    energy_terms = []
    for axis, vel in ((2, "vx"), (1, "vy"), (0, "vz")):
        parts = []
        for distance in range(1, 5):
            plus = (
                f"({at_axis('E', axis, distance)} + "
                f"{at_axis('p', axis, distance)})*"
                f"{at_axis(vel, axis, distance)}"
            )
            minus = (
                f"({at_axis('E', axis, -distance)} + "
                f"{at_axis('p', axis, -distance)})*"
                f"{at_axis(vel, axis, -distance)}"
            )
            parts.append(f"{_D8[distance - 1]}*({plus} - {minus})")
        energy_terms.append("dxinv*(" + sum_of(parts) + ")")
    body.append(
        f"  flux4[k][j][i] = -({sum_of(energy_terms)}) "
        f"+ cv*({at('vx')}*dxp + {at('vy')}*dyp + {at('vz')}*dzp) "
        f"+ cw*{at('p')};"
    )
    return f"""
parameter W=320;
iterator k, j, i;
double mx[W,W,W], my[W,W,W], mz[W,W,W], E[W,W,W],
       vx[W,W,W], vy[W,W,W], vz[W,W,W], p[W,W,W],
       flux0[W,W,W], flux1[W,W,W], flux2[W,W,W], flux3[W,W,W],
       flux4[W,W,W], a1, a2, a3, a4, cv, cw, dxinv;
copyin mx, my, mz, E, vx, vy, vz, p, a1, a2, a3, a4, cv, cw, dxinv;
#pragma stream k block (16,16)
stencil hypterm (flux0, flux1, flux2, flux3, flux4,
                 mx, my, mz, E, vx, vy, vz, p, a1, a2, a3, a4, cv, cw,
                 dxinv) {{
{chr(10).join(body)}
}}
hypterm (flux0, flux1, flux2, flux3, flux4, mx, my, mz, E, vx, vy, vz, p,
         a1, a2, a3, a4, cv, cw, dxinv);
copyout flux0, flux1, flux2, flux3, flux4;
"""


_D2C = ("b1", "b2", "b3", "b4")


def diffterm() -> str:
    """ExpCNS diffusive terms: Laplacians then stress/energy assembly.

    11 full-rank arrays: 3 velocities + temperature + 3 Laplacians +
    4 outputs; two kernels as in Table III.
    """
    lap_lines: List[str] = []
    for index, vel in enumerate(("vx", "vy", "vz")):
        parts = [
            d2(vel, 2, 4, _D2C, "b0"),
            d2(vel, 1, 4, _D2C, "b0"),
            d2(vel, 0, 4, _D2C, "b0"),
        ]
        lap_lines.append(f"  lap{index}[k][j][i] = {sum_of(parts)};")

    out_lines: List[str] = []
    # Momentum diffusion: eta*(lap + third * grad(div v)) where the
    # divergence derivative is re-expanded with first derivatives.
    for index, (vel, axis) in enumerate(
        (("vx", 2), ("vy", 1), ("vz", 0))
    ):
        div_terms = [
            f"dxinv*{d1('vx', 2, 4, _D8)}",
            f"dxinv*{d1('vy', 1, 4, _D8)}",
            f"dxinv*{d1('vz', 0, 4, _D8)}",
        ]
        out_lines.append(
            f"  dm{index}[k][j][i] = eta*({at(f'lap{index}')} "
            f"+ third*({sum_of(div_terms)}));"
        )
    # Energy diffusion: conduction + viscous dissipation.
    phi_terms = []
    for vel_index, vel in enumerate(("vx", "vy", "vz")):
        for axis in range(3):
            term = d1(vel, axis, 2, ("g1", "g2"))
            phi_terms.append(f"dxinv*{term}*{term}")
    cond_terms = [
        f"dxinv*{d2('T', 2, 4, _D2C, 'b0')}",
        f"dxinv*{d2('T', 1, 4, _D2C, 'b0')}",
        f"dxinv*{d2('T', 0, 4, _D2C, 'b0')}",
    ]
    out_lines.append(
        f"  dE[k][j][i] = kap*({sum_of(cond_terms)}) "
        f"+ eta*({at('vx')}*{at('lap0')} + {at('vy')}*{at('lap1')} "
        f"+ {at('vz')}*{at('lap2')} + {sum_of(phi_terms)});"
    )
    return f"""
parameter W=320;
iterator k, j, i;
double vx[W,W,W], vy[W,W,W], vz[W,W,W], T[W,W,W],
       lap0[W,W,W], lap1[W,W,W], lap2[W,W,W],
       dm0[W,W,W], dm1[W,W,W], dm2[W,W,W], dE[W,W,W],
       b0, b1, b2, b3, b4, a1, a2, a3, a4, g1, g2, eta, third, kap, dxinv;
copyin vx, vy, vz, T, b0, b1, b2, b3, b4, a1, a2, a3, a4, g1, g2,
       eta, third, kap, dxinv;
#pragma stream k block (16,16)
stencil lap_kernel (lap0, lap1, lap2, vx, vy, vz,
                    b0, b1, b2, b3, b4) {{
{chr(10).join(lap_lines)}
}}
#pragma stream k block (16,16)
stencil assemble (dm0, dm1, dm2, dE, vx, vy, vz, T, lap0, lap1, lap2,
                  b0, b1, b2, b3, b4, a1, a2, a3, a4, g1, g2,
                  eta, third, kap, dxinv) {{
{chr(10).join(out_lines)}
}}
lap_kernel (lap0, lap1, lap2, vx, vy, vz, b0, b1, b2, b3, b4);
assemble (dm0, dm1, dm2, dE, vx, vy, vz, T, lap0, lap1, lap2,
          b0, b1, b2, b3, b4, a1, a2, a3, a4, g1, g2, eta, third, kap,
          dxinv);
copyout dm0, dm1, dm2, dE;
"""


def _addsgd(order: int) -> str:
    """SW4 super-grid dissipation, shared by addsgd4 (order 2) and
    addsgd6 (order 3).

    The operator applies, per displacement component and per direction,
    a "birch" difference: an outer sum over ``order + 1`` positions of
    (density x damping-coefficient x stretching) factors times an inner
    alternating difference of (u - um) over ``order + 1`` points.

    10 full-rank arrays: 3 predictors (up), 3 current (u), 3 previous
    (um), rho — plus 1-D stretchings/coefficients strx, stry, dcx, dcy
    (the mixed-rank feature STENCILGEN rejects).
    """
    width = order + 1
    half = width // 2
    # Outer positions, symmetric so the overall reach equals ``order``.
    positions = list(range(-((width - 1) // 2), width // 2 + 1))
    # Per-direction (damping-coefficient x stretching) products; the z
    # direction has no super-grid layer, so it uses the scalar czz with
    # the in-plane stretchings.
    dir_coeff = {
        2: lambda d: f"dcx[{off('i', d)}]*strx[{off('i', d)}]*stry[j]",
        1: lambda d: f"dcy[{off('j', d)}]*stry[{off('j', d)}]*strx[i]",
        0: lambda d: "czz*strx[i]*stry[j]",
    }

    body: List[str] = []
    body.append(f"  irho = 1.0 / {at('rho')};")
    if order >= 3:
        body.append("  zw = czz*wz;")
    for comp in range(3):
        u, um, up = f"u{comp}", f"um{comp}", f"up{comp}"
        dir_exprs: List[str] = []
        for axis in range(3):
            outer_terms: List[str] = []
            for position in positions:
                inner_terms: List[str] = []
                for tap in range(width):
                    delta = position + tap - half
                    diff = (
                        f"({at_axis(u, axis, delta)} - "
                        f"{at_axis(um, axis, delta)})"
                    )
                    inner_terms.append(f"w{tap}*{diff}")
                inner = "(" + sum_of(inner_terms) + ")"
                coeff = dir_coeff[axis](position)
                rho_c = at_axis("rho", axis, position)
                outer_terms.append(f"{rho_c}*{coeff}*{inner}")
            dir_exprs.append("(" + sum_of(outer_terms) + ")")
        body.append(f"  d{comp} = {sum_of(dir_exprs)};")
        # Centre correction: a damped restoring term toward the previous
        # time level, stretch-weighted (SW4's supergrid forcing).
        if order >= 3:
            corner = (
                f"cs*(({at(u)} - {at(um)}) "
                f"+ wz*(({at_axis(u, 0, 1)} - {at_axis(um, 0, 1)}) "
                f"+ ({at_axis(u, 0, -1)} - {at_axis(um, 0, -1)})))"
                f"*strx[i]*stry[j]"
                f" + zw*({at_axis(u, 1, 1)} - {at_axis(um, 1, 1)})*stry[j]"
            )
        else:
            corner = f"cs*({at(u)} - {at(um)})*strx[i]*stry[j]"
        body.append(
            f"  {up}[k][j][i] = {at(up)} - beta*irho*(d{comp} + {corner});"
        )
    arrays = (
        [f"up{c}[W,W,W]" for c in range(3)]
        + [f"u{c}[W,W,W]" for c in range(3)]
        + [f"um{c}[W,W,W]" for c in range(3)]
        + ["rho[W,W,W]", "strx[W]", "stry[W]", "dcx[W]", "dcy[W]"]
    )
    params = (
        [f"up{c}" for c in range(3)]
        + [f"u{c}" for c in range(3)]
        + [f"um{c}" for c in range(3)]
        + ["rho", "strx", "stry", "dcx", "dcy"]
    )
    weight_names = [f"w{t}" for t in range(width)] + ["beta", "czz", "cs"]
    if order >= 3:
        weight_names.append("wz")
    name = f"addsgd{2 * order}"
    return f"""
parameter W=320;
iterator k, j, i;
double {', '.join(arrays)}, {', '.join(weight_names)};
copyin {', '.join(params)}, {', '.join(weight_names)};
#pragma stream k block (16,16)
stencil {name} ({', '.join(params)}, {', '.join(weight_names)}) {{
  #assign gmem (strx, stry, dcx, dcy, rho)
{chr(10).join(body)}
}}
{name} ({', '.join(params)}, {', '.join(weight_names)});
copyout up0, up1, up2;
"""


def addsgd4() -> str:
    return _addsgd(2)


def addsgd6() -> str:
    return _addsgd(3)


def rhs4center() -> str:
    """SW4 rhs4center: order-2 elastic-wave RHS, Figure 3a's DAG shape.

    8 full-rank arrays: u0, u1, u2, mu, la in; uacc0..2 out.
    """
    body: List[str] = []
    # Variable-coefficient weights (Figure 3a's mux1..muz4 temporaries):
    # averaged (2*mu + la) products with a wider correction tap.
    for axis, tag in ((2, "mux"), (1, "muy"), (0, "muz")):
        for index, delta in enumerate((-2, -1, 1, 2), start=1):
            inner = at_axis("mu", axis, delta)
            la_c = at_axis("la", axis, delta)
            far = at_axis("mu", axis, 2 if delta > 0 else -2)
            far_la = at_axis("la", axis, 2 if delta > 0 else -2)
            body.append(
                f"  {tag}{index} = {inner}*{la_c} "
                f"- ha*({at('mu')}*{at('la')} + {inner}*{la_c}) "
                f"+ hb*({far} + {far_la});"
            )
    for comp in range(3):
        u = f"u{comp}"
        axis_parts: List[str] = []
        for axis, tag in ((2, "mux"), (1, "muy"), (0, "muz")):
            terms = []
            for index, delta in enumerate((-2, -1, 1, 2), start=1):
                terms.append(
                    f"{tag}{index}*({at_axis(u, axis, delta)} - {at(u)})"
                )
            axis_parts.append("h2*(" + sum_of(terms) + ")")
        cross_parts: List[str] = []
        for a1, a2 in ((2, 1), (2, 0), (1, 2), (1, 0), (0, 2), (0, 1)):
            terms = []
            for delta in (-2, -1, 1, 2):
                offsets = [0, 0, 0]
                offsets[a1] = delta
                plus = [0, 0, 0]
                plus[a1] = delta
                plus[a2] = 1
                minus = [0, 0, 0]
                minus[a1] = delta
                minus[a2] = -1
                terms.append(
                    f"hb*({at('la', *offsets)} + 2.0*{at('mu', *offsets)})*"
                    f"({at(u, *plus)} - {at(u, *minus)})"
                )
            cross_parts.append("(" + sum_of(terms) + ")")
        body.append(
            f"  r{comp} = {sum_of(axis_parts)} + hb2*({sum_of(cross_parts)});"
        )
        body.append(
            f"  uacc{comp}[k][j][i] = hc*r{comp} + hd*{at(u)};"
        )
    arrays = (
        [f"uacc{c}[W,W,W]" for c in range(3)]
        + [f"u{c}[W,W,W]" for c in range(3)]
        + ["mu[W,W,W]", "la[W,W,W]"]
    )
    params = (
        [f"uacc{c}" for c in range(3)]
        + [f"u{c}" for c in range(3)]
        + ["mu", "la"]
    )
    return f"""
parameter W=320;
iterator k, j, i;
double {', '.join(arrays)}, ha, hb, hc, hd, h2, hb2;
copyin u0, u1, u2, mu, la, ha, hb, hc, hd, h2, hb2;
#pragma stream k block (16,16)
stencil rhs4center ({', '.join(params)}, ha, hb, hc, hd, h2, hb2) {{
  #assign shmem (u0, u1, u2), gmem (mu, la)
{chr(10).join(body)}
}}
rhs4center ({', '.join(params)}, ha, hb, hc, hd, h2, hb2);
copyout uacc0, uacc1, uacc2;
"""


def rhs4sgcurv() -> str:
    """SW4 rhs4sgcurv: curvilinear elastic-wave RHS (the register-
    pressure monster of Section VIII-D).

    13 full-rank arrays: u0..2, mu, la, met1..4, jac, uacc0..2.
    """
    body: List[str] = []
    # Metric-weighted coefficient temporaries, per axis and offset — one
    # set for the (2mu+la) longitudinal terms, one for the mu shear
    # terms (the real kernel's cof1..cof5 families).
    for axis, tags in ((2, ("cx", "dx")), (1, ("cy", "dy")), (0, ("cz", "dz"))):
        for index, delta in enumerate((-2, -1, 1, 2), start=1):
            mu_c = at_axis("mu", axis, delta)
            la_c = at_axis("la", axis, delta)
            jac_c = at_axis("jac", axis, delta)
            far_mu = at_axis("mu", axis, 2 if delta > 0 else -2)
            body.append(
                f"  {tags[0]}{index} = ({mu_c} + la_s*{la_c})*"
                f"{at_axis('met1', axis, delta)}*"
                f"{at_axis('met2', axis, delta)}/{jac_c} + hb*{far_mu};"
            )
            body.append(
                f"  {tags[1]}{index} = ({mu_c} + la_s*{la_c})*"
                f"{at_axis('met3', axis, delta)}*"
                f"{at_axis('met4', axis, delta)}/{jac_c};"
            )
    body.append(f"  jinv = 1.0 / (h2*{at('jac')});")
    for comp in range(3):
        u = f"u{comp}"
        axis_parts: List[str] = []
        for axis, tags in (
            (2, ("cx", "dx")),
            (1, ("cy", "dy")),
            (0, ("cz", "dz")),
        ):
            terms = []
            for index, delta in enumerate((-2, -1, 1, 2), start=1):
                diff = f"({at_axis(u, axis, delta)} - {at(u)})"
                terms.append(f"{tags[0]}{index}*{diff}")
                terms.append(f"{tags[1]}{index}*{diff}")
            axis_parts.append("(" + sum_of(terms) + ")")
        cross_sets: List[str] = []
        for weight_arr, met_pair in (("la", ("met1", "met3")),
                                     ("mu", ("met2", "met4")),
                                     ("la", ("met1", "met4"))):
            cross_parts: List[str] = []
            for a1, a2 in ((2, 1), (2, 0), (1, 2), (1, 0), (0, 2), (0, 1)):
                terms = []
                for delta in (-2, -1, 1, 2):
                    offsets = [0, 0, 0]
                    offsets[a1] = delta
                    plus = [0, 0, 0]
                    plus[a1] = delta
                    plus[a2] = 1
                    minus = [0, 0, 0]
                    minus[a1] = delta
                    minus[a2] = -1
                    terms.append(
                        f"hb*{at(weight_arr, *offsets)}*"
                        f"{at(met_pair[0], *offsets)}*"
                        f"{at(met_pair[1], *offsets)}*"
                        f"({at(u, *plus)} - {at(u, *minus)})/"
                        f"{at('jac', *offsets)}"
                    )
                cross_parts.append("(" + sum_of(terms) + ")")
            cross_sets.append(sum_of(cross_parts))
        # Curvilinear correction: metric gradients against every
        # displacement component along every axis.
        corr_parts: List[str] = []
        for other in range(3):
            v = f"u{other}"
            for axis in range(3):
                corr_parts.append(
                    f"({at('met3')}*{at('met4')}*{at('met1')})*"
                    f"({at_axis(v, axis, 1)} - {at_axis(v, axis, -1)})*"
                    f"({at_axis('met2', axis, 1)} - "
                    f"{at_axis('met2', axis, -1)})*{at('met2')}"
                    f"/{at('jac')}"
                )
        body.append(
            f"  r{comp} = {sum_of(axis_parts)} + {sum_of(cross_sets)}"
            f" + hd*({sum_of(corr_parts)});"
        )
        body.append(
            f"  uacc{comp}[k][j][i] = (r{comp} + hd2*{at(u)})*jinv;"
        )
    arrays = (
        [f"uacc{c}[W,W,W]" for c in range(3)]
        + [f"u{c}[W,W,W]" for c in range(3)]
        + ["mu[W,W,W]", "la[W,W,W]", "met1[W,W,W]", "met2[W,W,W]",
           "met3[W,W,W]", "met4[W,W,W]", "jac[W,W,W]"]
    )
    params = (
        [f"uacc{c}" for c in range(3)]
        + [f"u{c}" for c in range(3)]
        + ["mu", "la", "met1", "met2", "met3", "met4", "jac"]
    )
    return f"""
parameter W=320;
iterator k, j, i;
double {', '.join(arrays)}, la_s, hb, hd, hd2, h2;
copyin u0, u1, u2, mu, la, met1, met2, met3, met4, jac, la_s, hb, hd, hd2, h2;
#pragma stream k block (16,16)
stencil rhs4sgcurv ({', '.join(params)}, la_s, hb, hd, hd2, h2) {{
  #assign shmem (u0, u1, u2), gmem (mu, la, met1, met2, met3, met4, jac)
{chr(10).join(body)}
}}
rhs4sgcurv ({', '.join(params)}, la_s, hb, hd, hd2, h2);
copyout uacc0, uacc1, uacc2;
"""
