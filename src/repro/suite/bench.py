"""Search-performance regression harness (``repro bench``).

Runs the full ARTEMIS flow on a fixed subset of the Table I suite and
records the *search-cost profile* — evaluation-engine request count,
cache hit rate, simulation count, wall time — alongside the predicted
result quality (best GFLOPS, winning variant).  The counts are exact
deterministic functions of the search algorithm (the analytical model
never varies between runs), so a committed baseline
(``BENCH_search.json``) turns them into a regression gate: a change
that silently doubles evaluator traffic, or degrades the winner, fails
``repro bench --check`` even though every functional test still passes.

Wall time is recorded but never gated — CI machines are too noisy for a
wall-clock threshold to mean anything.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from ..gpu.device import DeviceSpec, P100
from ..tuning.evaluator import PlanEvaluator

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BENCHMARKS",
    "GATED_METRICS",
    "run_bench",
    "compare_bench",
    "format_bench",
]

BENCH_SCHEMA_VERSION = 1

#: One temporal benchmark (deep tuning + opt(T)) and one spatial
#: register-pressure benchmark (fission + global alternatives) — the
#: same pairing the evaluator-speedup benchmark uses, covering both
#: search shapes while keeping the gate fast enough for every CI run.
DEFAULT_BENCHMARKS = ("7pt-smoother", "addsgd4")

#: Metric -> direction of regression.  ``up`` regresses when the value
#: grows past tolerance (search got more expensive); ``down`` regresses
#: when it shrinks (result quality or cache efficiency dropped).
GATED_METRICS = {
    "requests": "up",
    "simulations": "up",
    "best_gflops": "down",
}


def run_bench(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    device: DeviceSpec = P100,
    top_k: int = 2,
) -> Dict[str, Any]:
    """Run the suite and collect the search-cost profile per benchmark."""
    from ..pipeline import optimize
    from . import get as get_benchmark

    results: Dict[str, Any] = {}
    for name in benchmarks:
        ir = get_benchmark(name).ir()
        engine = PlanEvaluator(device=device)
        start = time.perf_counter()
        outcome = optimize(ir, device=device, top_k=top_k, evaluator=engine)
        wall = time.perf_counter() - start
        stats = outcome.eval_stats
        hit_rate = stats.hits / stats.requests if stats.requests else 0.0
        results[name] = {
            "requests": stats.requests,
            "hits": stats.hits,
            "simulations": stats.misses,
            "screened": stats.screened,
            # Prescreen-vs-simulate split: ``lint_rejections`` counts
            # candidates rejected with a stable RLxxx rule code before
            # the model ran; ``simulate_calls`` the full model
            # invocations that remained (misses minus screened).
            "lint_rejections": stats.lint_rejections,
            "simulate_calls": stats.simulations,
            "rungs_skipped": stats.rungs_skipped,
            "cache_hit_rate": round(hit_rate, 4),
            "evaluations": outcome.evaluations,
            "best_gflops": round(outcome.tflops * 1e3, 3),
            "variant": outcome.variant,
            "wall_s": round(wall, 4),
        }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "top_k": top_k,
        "device": device.name,
        "benchmarks": results,
    }


def compare_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.15,
) -> List[str]:
    """Regressions in ``current`` vs ``baseline``; empty when clean.

    Each gated metric may drift up to ``tolerance`` (relative) in its
    harmless direction without comment; past it in the regressing
    direction produces one message.  Improvements are never flagged.
    """
    problems: List[str] = []
    base_benchmarks = baseline.get("benchmarks", {})
    cur_benchmarks = current.get("benchmarks", {})
    for name, base in base_benchmarks.items():
        cur = cur_benchmarks.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        for metric, direction in GATED_METRICS.items():
            base_value = base.get(metric)
            cur_value = cur.get(metric)
            if base_value is None or cur_value is None:
                continue
            if not base_value:
                continue
            change = (cur_value - base_value) / base_value
            if direction == "up" and change > tolerance:
                problems.append(
                    f"{name}: {metric} regressed {change * 100:+.1f}% "
                    f"({base_value} -> {cur_value}, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
            elif direction == "down" and change < -tolerance:
                problems.append(
                    f"{name}: {metric} regressed {change * 100:+.1f}% "
                    f"({base_value} -> {cur_value}, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
        base_variant = base.get("variant")
        if base_variant and cur.get("variant") != base_variant:
            problems.append(
                f"{name}: winning variant changed "
                f"({base_variant} -> {cur.get('variant')})"
            )
    return problems


def format_bench(
    results: Dict[str, Any], problems: Optional[List[str]] = None
) -> str:
    """Human-readable table for the ``repro bench`` output."""
    lines: List[str] = [
        f"search benchmark (device {results.get('device', '?')}, "
        f"top_k={results.get('top_k', '?')})",
        f"{'benchmark':15s} {'requests':>9s} {'sims':>7s} {'hit%':>6s} "
        f"{'GFLOPS':>9s} {'variant':14s} {'wall s':>7s}",
    ]
    for name, row in results.get("benchmarks", {}).items():
        lines.append(
            f"{name:15s} {row['requests']:9d} {row['simulations']:7d} "
            f"{row['cache_hit_rate'] * 100:5.1f}% "
            f"{row['best_gflops']:9.1f} {row['variant']:14s} "
            f"{row['wall_s']:7.3f}"
        )
    if problems is not None:
        if problems:
            lines.append("")
            lines.append("regressions vs baseline:")
            lines.extend(f"  - {p}" for p in problems)
        else:
            lines.append("")
            lines.append("no regressions vs baseline")
    return "\n".join(lines)
