"""Search-performance regression harness (``repro bench``).

Runs the full ARTEMIS flow on a fixed subset of the Table I suite and
records the *search-cost profile* — evaluation-engine request count,
cache hit rate, simulation count, wall time — alongside the predicted
result quality (best GFLOPS, winning variant).  The counts are exact
deterministic functions of the search algorithm (the analytical model
never varies between runs), so a committed baseline
(``BENCH_search.json``) turns them into a regression gate: a change
that silently doubles evaluator traffic, or degrades the winner, fails
``repro bench --check`` even though every functional test still passes.

Wall time is recorded but gated only on opt-in
(``compare_bench(..., wall_tolerance=...)``) — CI machines are noisy,
so the wall gate needs a generous tolerance and an explicit decision
to enable it.

Schema 2 splits the cost profile along the vectorized-pricing seam:
``priced_candidates`` counts logical model evaluations (every candidate
that got a price, scalar or vectorized), ``simulate_calls`` the actual
scalar ``simulate()`` invocations that remained, ``vectorized`` the
lanes priced by the family backend, and ``cache_hit_rate_by_phase``
attributes the memo hit rate to the tuner stage that earned it.  On a
cold run the stages are all-miss by design (stage 2 deduplicates
against measured families before requesting), so the near-zero overall
rate is expected: the only hits are deep tuning's post-tune winner
classifications, now visible in their own ``classify`` phase.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import simulate_call_count
from ..tuning.evaluator import PlanEvaluator

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BENCHMARKS",
    "GATED_METRICS",
    "run_bench",
    "compare_bench",
    "format_bench",
]

BENCH_SCHEMA_VERSION = 2

#: One temporal benchmark (deep tuning + opt(T)) and one spatial
#: register-pressure benchmark (fission + global alternatives) — the
#: same pairing the evaluator-speedup benchmark uses, covering both
#: search shapes while keeping the gate fast enough for every CI run.
DEFAULT_BENCHMARKS = ("7pt-smoother", "addsgd4")

#: Metric -> direction of regression.  ``up`` regresses when the value
#: grows past tolerance (search got more expensive); ``down`` regresses
#: when it shrinks (result quality or cache efficiency dropped).
GATED_METRICS = {
    "requests": "up",
    "simulations": "up",
    "best_gflops": "down",
}


def run_bench(
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    device: DeviceSpec = P100,
    top_k: int = 2,
    vectorize: Optional[bool] = None,
    executor: str = "thread",
) -> Dict[str, Any]:
    """Run the suite and collect the search-cost profile per benchmark.

    ``vectorize``/``executor`` configure the shared :class:`PlanEvaluator`
    (defaults match production: family pricing on when numpy is
    available, thread executor) — the before/after comparison artifact
    runs the same suite with ``vectorize=False`` to measure the scalar
    path on the same machine.
    """
    from ..pipeline import optimize
    from . import get as get_benchmark

    results: Dict[str, Any] = {}
    for name in benchmarks:
        ir = get_benchmark(name).ir()
        engine = PlanEvaluator(
            device=device, vectorize=vectorize, executor=executor
        )
        calls_before = simulate_call_count()
        start = time.perf_counter()
        outcome = optimize(ir, device=device, top_k=top_k, evaluator=engine)
        wall = time.perf_counter() - start
        stats = outcome.eval_stats
        hit_rate = stats.hits / stats.requests if stats.requests else 0.0
        results[name] = {
            "requests": stats.requests,
            "hits": stats.hits,
            "simulations": stats.misses,
            "screened": stats.screened,
            # Prescreen-vs-price-vs-simulate split: ``lint_rejections``
            # counts candidates rejected with a stable RLxxx rule code
            # before the model ran; ``priced_candidates`` the logical
            # model evaluations that remained (misses minus screened);
            # ``simulate_calls`` the scalar ``simulate()`` invocations
            # actually made (priced minus vectorized lanes).
            "lint_rejections": stats.lint_rejections,
            "priced_candidates": stats.simulations,
            "simulate_calls": simulate_call_count() - calls_before,
            "vectorized": stats.vectorized,
            "rungs_skipped": stats.rungs_skipped,
            "cache_hit_rate": round(hit_rate, 4),
            "cache_hit_rate_by_phase": {
                phase: {
                    "requests": ps.requests,
                    "hits": ps.hits,
                    "hit_rate": round(ps.hit_rate, 4),
                }
                for phase, ps in engine.phase_stats.items()
            },
            "evaluations": outcome.evaluations,
            "best_gflops": round(outcome.tflops * 1e3, 3),
            "variant": outcome.variant,
            "wall_s": round(wall, 4),
            # Engine-attributed busy time (merged intervals): isolates
            # pricing/evaluation cost from planning and codegen, so the
            # pricing-only speedup is measurable next to end-to-end.
            "engine_wall_s": round(stats.wall_s, 4),
        }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "top_k": top_k,
        "device": device.name,
        "benchmarks": results,
    }


def compare_bench(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.15,
    wall_tolerance: Optional[float] = None,
) -> List[str]:
    """Regressions in ``current`` vs ``baseline``; empty when clean.

    Each gated metric may drift up to ``tolerance`` (relative) in its
    harmless direction without comment; past it in the regressing
    direction produces one message.  Improvements are never flagged.

    ``wall_tolerance`` opts into gating ``wall_s`` (relative growth
    past the threshold fails); leave None on machines whose load the
    caller does not control.
    """
    problems: List[str] = []
    base_benchmarks = baseline.get("benchmarks", {})
    cur_benchmarks = current.get("benchmarks", {})
    for name, base in base_benchmarks.items():
        cur = cur_benchmarks.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        for metric, direction in GATED_METRICS.items():
            base_value = base.get(metric)
            cur_value = cur.get(metric)
            if base_value is None or cur_value is None:
                continue
            if not base_value:
                continue
            change = (cur_value - base_value) / base_value
            if direction == "up" and change > tolerance:
                problems.append(
                    f"{name}: {metric} regressed {change * 100:+.1f}% "
                    f"({base_value} -> {cur_value}, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
            elif direction == "down" and change < -tolerance:
                problems.append(
                    f"{name}: {metric} regressed {change * 100:+.1f}% "
                    f"({base_value} -> {cur_value}, tolerance "
                    f"{tolerance * 100:.0f}%)"
                )
        base_variant = base.get("variant")
        if base_variant and cur.get("variant") != base_variant:
            problems.append(
                f"{name}: winning variant changed "
                f"({base_variant} -> {cur.get('variant')})"
            )
        if wall_tolerance is not None:
            base_wall = base.get("wall_s")
            cur_wall = cur.get("wall_s")
            if base_wall and cur_wall is not None:
                change = (cur_wall - base_wall) / base_wall
                if change > wall_tolerance:
                    problems.append(
                        f"{name}: wall_s regressed {change * 100:+.1f}% "
                        f"({base_wall} -> {cur_wall}, tolerance "
                        f"{wall_tolerance * 100:.0f}%)"
                    )
    return problems


def format_bench(
    results: Dict[str, Any], problems: Optional[List[str]] = None
) -> str:
    """Human-readable table for the ``repro bench`` output."""
    lines: List[str] = [
        f"search benchmark (device {results.get('device', '?')}, "
        f"top_k={results.get('top_k', '?')})",
        f"{'benchmark':15s} {'requests':>9s} {'priced':>7s} {'simcall':>8s} "
        f"{'vector':>7s} {'hit%':>6s} "
        f"{'GFLOPS':>9s} {'variant':14s} {'wall s':>7s}",
    ]
    for name, row in results.get("benchmarks", {}).items():
        lines.append(
            f"{name:15s} {row['requests']:9d} "
            f"{row.get('priced_candidates', row['simulations']):7d} "
            f"{row.get('simulate_calls', 0):8d} "
            f"{row.get('vectorized', 0):7d} "
            f"{row['cache_hit_rate'] * 100:5.1f}% "
            f"{row['best_gflops']:9.1f} {row['variant']:14s} "
            f"{row['wall_s']:7.3f}"
        )
    if problems is not None:
        if problems:
            lines.append("")
            lines.append("regressions vs baseline:")
            lines.extend(f"  - {p}" for p in problems)
        else:
            lines.append("")
            lines.append("no regressions vs baseline")
    return "\n".join(lines)
