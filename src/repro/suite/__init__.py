"""The 11-benchmark evaluation suite of the paper's Table I.

Use :data:`BENCHMARKS` (ordered as in the paper) or :func:`get` /
:func:`load_ir` to obtain specifications and IR.  Each entry carries the
Table I characteristics for verification and the paper-reported ARTEMIS
performance where the text states it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..dsl.parser import parse
from ..ir.stencil import ProgramIR, build_ir
from . import specs


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table I row plus its DSL builder."""

    name: str
    build: Callable[[], str]
    domain: Tuple[int, int, int]
    time_iterations: int
    order: int
    flops_per_point: int
    io_arrays: int  # full-rank (3-D) arrays, as Table I counts them
    iterative: bool
    #: ARTEMIS TFLOPS the paper states in the text (None when only shown
    #: as a figure bar).
    paper_artemis_tflops: Optional[float] = None
    notes: str = ""

    def dsl(self) -> str:
        return self.build()

    def ir(self) -> ProgramIR:
        return build_ir(parse(self.dsl()))


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec(
            name="7pt-smoother",
            build=specs.smoother_7pt,
            domain=(512, 512, 512),
            time_iterations=12,
            order=1,
            flops_per_point=10,
            io_arrays=2,
            iterative=True,
            notes="HPGMG Jacobi smoother (Listing 1)",
        ),
        BenchmarkSpec(
            name="27pt-smoother",
            build=specs.smoother_27pt,
            domain=(512, 512, 512),
            time_iterations=12,
            order=1,
            flops_per_point=32,
            io_arrays=2,
            iterative=True,
            notes="HPGMG 27-point box smoother; retiming is key (§VIII-G)",
        ),
        BenchmarkSpec(
            name="helmholtz",
            build=specs.helmholtz,
            domain=(512, 512, 512),
            time_iterations=12,
            order=2,
            flops_per_point=17,
            io_arrays=2,
            iterative=True,
            notes="HPGMG order-2 Helmholtz smoother",
        ),
        BenchmarkSpec(
            name="denoise",
            build=specs.denoise,
            domain=(512, 512, 512),
            time_iterations=12,
            order=1,
            flops_per_point=61,
            io_arrays=4,
            iterative=True,
            notes="CDSC image-processing pipeline (2-kernel DAG)",
        ),
        BenchmarkSpec(
            name="miniflux",
            build=specs.miniflux,
            domain=(320, 320, 320),
            time_iterations=1,
            order=2,
            flops_per_point=135,
            io_arrays=25,
            iterative=False,
            notes="loop-chain CFD benchmark [5]; two kernels (Table III)",
        ),
        BenchmarkSpec(
            name="hypterm",
            build=specs.hypterm,
            domain=(320, 320, 320),
            time_iterations=1,
            order=4,
            flops_per_point=358,
            io_arrays=13,
            iterative=False,
            notes="ExpCNS hyperbolic flux; DRAM-bound despite shmem (§IV)",
        ),
        BenchmarkSpec(
            name="diffterm",
            build=specs.diffterm,
            domain=(320, 320, 320),
            time_iterations=1,
            order=4,
            flops_per_point=415,
            io_arrays=11,
            iterative=False,
            notes="ExpCNS diffusive terms; two kernels (Table III)",
        ),
        BenchmarkSpec(
            name="addsgd4",
            build=specs.addsgd4,
            domain=(320, 320, 320),
            time_iterations=1,
            order=2,
            flops_per_point=373,
            io_arrays=10,
            iterative=False,
            paper_artemis_tflops=1.05,
            notes="SW4lite dissipation; §VIII-E resource-assignment study",
        ),
        BenchmarkSpec(
            name="addsgd6",
            build=specs.addsgd6,
            domain=(320, 320, 320),
            time_iterations=1,
            order=3,
            flops_per_point=626,
            io_arrays=10,
            iterative=False,
            notes="SW4lite order-6 dissipation; folding profits (§VIII-G)",
        ),
        BenchmarkSpec(
            name="rhs4center",
            build=specs.rhs4center,
            domain=(320, 320, 320),
            time_iterations=1,
            order=2,
            flops_per_point=666,
            io_arrays=8,
            iterative=False,
            paper_artemis_tflops=1.29,
            notes="SW4lite elastic RHS (Figure 3); manual kernel: 1.13",
        ),
        BenchmarkSpec(
            name="rhs4sgcurv",
            build=specs.rhs4sgcurv,
            domain=(320, 320, 320),
            time_iterations=1,
            order=2,
            flops_per_point=2126,
            io_arrays=13,
            iterative=False,
            paper_artemis_tflops=1.048,
            notes="SW4lite curvilinear RHS; §VIII-D fission study "
            "(maxfuse spills: 0.48 TFLOPS)",
        ),
    )
}

#: Benchmark names in the paper's Table I order.
BENCHMARK_ORDER = tuple(BENCHMARKS)

#: The seven spatial (non-iterative) stencils of Table III.
SPATIAL_BENCHMARKS = tuple(
    name for name, spec in BENCHMARKS.items() if not spec.iterative
)

#: The four iterative stencils deep tuning applies to (§VIII-B).
ITERATIVE_BENCHMARKS = tuple(
    name for name, spec in BENCHMARKS.items() if spec.iterative
)


def get(name: str) -> BenchmarkSpec:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        ) from None


def load_ir(name: str) -> ProgramIR:
    """Parse and lower a benchmark by name."""
    return get(name).ir()


__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkSpec",
    "ITERATIVE_BENCHMARKS",
    "SPATIAL_BENCHMARKS",
    "get",
    "load_ir",
]
