"""PPCG-like baseline (Section VIII-F).

PPCG's polyhedral flow maps loop nests with fixed heuristics; the paper
attributes its losses to "poor fusion/fission choices, and the complex
conditionals in the PPCG-generated code" plus "inefficient resource
assignment heuristics".  The model here reproduces those strategy
choices:

* fixed heuristic thread block (32 x 4 x 4, PPCG's default tile shape),
  with a small autotuned sweep over per-thread registers and unroll
  factors only (the paper reports extensively tuning PPCG for block
  dimensions, unroll factors and registers — but PPCG's code structure,
  not its parameters, is the limiter, so the sweep is narrow);
* no streaming and no shared-memory buffering of stencil arrays;
* maximal fusion of the kernel DAG (PPCG does not fission);
* a guard-complexity overhead: polyhedral code guards every statement
  with multi-clause affine conditionals, costing issue slots that grow
  with statement count.
"""

from __future__ import annotations

from typing import List, Optional

from ..codegen.plan import KernelPlan, ProgramPlan, STREAM_NONE
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import PlanInfeasible
from ..ir.stencil import ProgramIR
from ..tuning.evaluator import PlanEvaluator
from ..tuning.fusion import maxfuse
from .naive import BaselineResult

#: Per-statement fractional issue overhead of polyhedral guard code.
GUARD_OVERHEAD_PER_STATEMENT = 0.015
#: Cap on total guard overhead.
GUARD_OVERHEAD_CAP = 0.6

_BLOCKS = ((4, 4, 32), (4, 8, 32), (2, 4, 64))
_UNROLLS = ((1, 1, 1), (1, 1, 2), (1, 1, 4))


def guard_overhead(ir: ProgramIR) -> float:
    statements = sum(len(k.statements) for k in ir.kernels)
    return min(GUARD_OVERHEAD_CAP, GUARD_OVERHEAD_PER_STATEMENT * statements)


def run_ppcg(
    ir: ProgramIR,
    device: DeviceSpec = P100,
    evaluator: Optional[PlanEvaluator] = None,
) -> BaselineResult:
    """Simulate the PPCG strategy on a program."""
    # PPCG emits whatever its heuristics pick — there is no planner
    # feasibility screen, so the evaluator only skips mappings the
    # device itself rejects.
    engine = evaluator or PlanEvaluator(device=device, validate=False)
    fused = maxfuse(ir, name="ppcg_fused")
    result = _run_on(fused, engine)
    if not result.supported and len(fused.kernels) < len(ir.kernels):
        # The fused mapping does not fit the device; PPCG falls back to
        # per-loop-nest kernels.
        result = _run_on(ir, engine)
    return result


def _run_on(fused: ProgramIR, engine: PlanEvaluator) -> BaselineResult:
    overhead = 1.0 + guard_overhead(fused)

    total_time = 0.0
    useful = 0.0
    plans: List[KernelPlan] = []
    for instance in fused.kernels:
        candidates = [
            KernelPlan(
                kernel_names=(instance.name,),
                block=block,
                streaming=STREAM_NONE,
                unroll=unroll,
                unroll_blocked=False,  # PPCG strip-mines cyclically
                max_registers=regs,
            )
            for block in _BLOCKS
            for unroll in _UNROLLS
            for regs in (64, 128, 255)
        ]
        results = engine.evaluate_batch(
            fused, candidates, catch=(PlanInfeasible,)
        )
        best_time = None
        best_plan = None
        best_useful = 0.0
        for plan, sim in zip(candidates, results):
            if sim is None:
                continue
            time_s = sim.time_s * overhead
            if best_time is None or time_s < best_time:
                best_time = time_s
                best_plan = plan
                best_useful = sim.counters.useful_flops
        if best_time is None:
            return BaselineResult(
                label="ppcg",
                tflops=0.0,
                schedule=None,
                supported=False,
                reason=f"no feasible mapping for {instance.name}",
            )
        total_time += best_time
        useful += best_useful
        plans.append(best_plan)
    tflops = useful / total_time / 1e12 if total_time else 0.0
    # Iterative programs launch the fused kernel once per time step (PPCG
    # does not time-tile across the arbitrary time loop): throughput is
    # per-step and therefore unchanged.
    return BaselineResult(
        label="ppcg", tflops=tflops, schedule=ProgramPlan(plans=tuple(plans))
    )
