"""The two global-memory reference generators of Section VIII-F.

* ``global`` — tiles all three dimensions, reads everything through the
  texture path, no shared memory.  Thread-block sizes are autotuned.
* ``global-stream`` — streams along the slowest-varying dimension but
  still uses no shared memory.  The paper highlights that this version
  surprisingly *loses* to plain tiling: streaming without on-chip
  buffering wrecks L2 locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..codegen.plan import KernelPlan, ProgramPlan, STREAM_NONE, STREAM_SERIAL
from ..codegen.generator import schedule_tflops
from ..gpu.device import DeviceSpec, P100
from ..ir.stencil import ProgramIR
from ..tuning.evaluator import PlanEvaluator
from ..tuning.hierarchical import HierarchicalTuner


@dataclass(frozen=True)
class BaselineResult:
    """Performance of one baseline generator on one program."""

    label: str
    tflops: float
    schedule: Optional[ProgramPlan]
    supported: bool = True
    reason: str = ""


def _tuned_schedule(
    ir: ProgramIR,
    seed: KernelPlan,
    device: DeviceSpec,
    use_unrolling: bool = True,
    evaluator: Optional[PlanEvaluator] = None,
) -> ProgramPlan:
    plans: List[KernelPlan] = []
    for instance in ir.kernels:
        base = seed.replace(kernel_names=(instance.name,))
        tuner = HierarchicalTuner(
            ir, device=device, use_unrolling=use_unrolling,
            evaluator=evaluator,
        )
        plans.append(tuner.tune(base).best_plan)
    return ProgramPlan(plans=tuple(plans))


def run_global(
    ir: ProgramIR,
    device: DeviceSpec = P100,
    evaluator: Optional[PlanEvaluator] = None,
) -> BaselineResult:
    """Tuned 3-D tiled global-memory version."""
    seed = KernelPlan(
        kernel_names=(ir.kernels[0].name,),
        block=(4, 4, 16),
        streaming=STREAM_NONE,
    )
    schedule = _tuned_schedule(ir, seed, device, evaluator=evaluator)
    return BaselineResult(
        label="global",
        tflops=schedule_tflops(ir, schedule, device),
        schedule=schedule,
    )


def run_global_stream(
    ir: ProgramIR,
    device: DeviceSpec = P100,
    evaluator: Optional[PlanEvaluator] = None,
) -> BaselineResult:
    """Tuned streaming global-memory version (no shared memory)."""
    seed = KernelPlan(
        kernel_names=(ir.kernels[0].name,),
        block=(16, 16),
        streaming=STREAM_SERIAL,
        stream_axis=0,
    )
    schedule = _tuned_schedule(ir, seed, device, evaluator=evaluator)
    return BaselineResult(
        label="global-stream",
        tflops=schedule_tflops(ir, schedule, device),
        schedule=schedule,
    )
