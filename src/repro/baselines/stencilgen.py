"""STENCILGEN-like baseline (Section VIII-F).

STENCILGEN is the strongest prior generator the paper compares against.
Its strategy (per the paper and [9], [17]):

* serial streaming with **every** full-rank input buffered in shared
  memory — it "applies all the optimizations simultaneously" with no
  resource-driven assignment;
* time tiling / fusion for iterative and multi-statement stencils, with
  retiming when the statements are in a retimable form;
* **no** loop unrolling, prefetching, concurrent streaming or
  thread-block load/compute adjustment (the ARTEMIS-specific
  optimizations the paper credits for its wins);
* no kernel fission — the DAG is maximally fused;
* it "does not support domains with different dimensions within the
  same stencil function", so the SW4lite kernels are unsupported.
"""

from __future__ import annotations

from typing import List, Optional

from ..codegen.plan import KernelPlan, ProgramPlan, SHMEM, STREAM_SERIAL
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import PlanInfeasible, simulate
from ..ir.homogenize import kernel_retimable
from ..ir.stencil import ProgramIR, StencilInstance
from ..tuning.fusion import maxfuse
from .naive import BaselineResult

_BLOCKS = ((16, 16), (32, 16), (16, 32), (32, 32), (8, 32), (64, 8))


class UnsupportedProgram(Exception):
    """The program uses features STENCILGEN cannot compile."""


def check_supported(ir: ProgramIR) -> None:
    """STENCILGEN rejects mixed-dimensionality stencil functions."""
    for instance in ir.kernels:
        ranks = set()
        for array in instance.io_arrays():
            info = ir.array_map.get(array)
            if info is not None:
                ranks.add(info.ndim)
        if len(ranks) > 1:
            raise UnsupportedProgram(
                f"kernel {instance.name!r} mixes array ranks {sorted(ranks)}: "
                "STENCILGEN does not support domains with different "
                "dimensions within the same stencil function"
            )


def _all_shared(ir: ProgramIR, instance: StencilInstance) -> tuple:
    placements = []
    for array in instance.arrays_read():
        info = ir.array_map.get(array)
        if info is not None and info.ndim == ir.ndim:
            placements.append((array, SHMEM))
    return tuple(placements)


def run_stencilgen(
    ir: ProgramIR,
    device: DeviceSpec = P100,
    max_fusion: int = 4,
) -> BaselineResult:
    """Simulate the STENCILGEN strategy on a program."""
    try:
        check_supported(ir)
    except UnsupportedProgram as exc:
        return BaselineResult(
            label="stencilgen",
            tflops=0.0,
            schedule=None,
            supported=False,
            reason=str(exc),
        )
    fused = maxfuse(ir, name="sg_fused")
    result = _run_on(fused, device, max_fusion)
    if not result.supported and len(fused.kernels) < len(ir.kernels):
        # All-shared buffering of the fully fused DAG does not fit:
        # fall back to per-kernel generation (still all-shared).
        result = _run_on(ir, device, max_fusion)
    return result


def _run_on(
    fused: ProgramIR, device: DeviceSpec, max_fusion: int
) -> BaselineResult:
    best_tflops = 0.0
    best_schedule: Optional[ProgramPlan] = None
    fusion_degrees = (
        range(1, max_fusion + 1) if fused.is_iterative else (1,)
    )
    for degree in fusion_degrees:
        total_time = 0.0
        useful = 0.0
        plans: List[KernelPlan] = []
        feasible = True
        for instance in fused.kernels:
            iterator = fused.iterators[0]
            retime = kernel_retimable(fused, instance, iterator)
            best_time = None
            best_plan = None
            stage_useful = 0.0
            for block in _BLOCKS:
                plan = KernelPlan(
                    kernel_names=(instance.name,),
                    block=block,
                    streaming=STREAM_SERIAL,
                    stream_axis=0,
                    time_tile=degree if fused.is_iterative else 1,
                    placements=_all_shared(fused, instance),
                    retime=retime,
                )
                try:
                    sim = simulate(fused, plan, device)
                except PlanInfeasible:
                    continue
                if best_time is None or sim.time_s < best_time:
                    best_time = sim.time_s
                    best_plan = plan
                    stage_useful = sim.counters.useful_flops
            if best_time is None:
                feasible = False
                break
            total_time += best_time
            useful += stage_useful
            plans.append(best_plan)
        if not feasible or total_time <= 0:
            continue
        tflops = useful / total_time / 1e12
        if tflops > best_tflops:
            best_tflops = tflops
            best_schedule = ProgramPlan(plans=tuple(plans))
    if best_schedule is None:
        return BaselineResult(
            label="stencilgen",
            tflops=0.0,
            schedule=None,
            supported=False,
            reason="no feasible shared-memory mapping (resource "
            "over-subscription)",
        )
    return BaselineResult(
        label="stencilgen", tflops=best_tflops, schedule=best_schedule
    )
