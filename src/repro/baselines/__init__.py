"""Comparison code generators of Section VIII-F, re-implemented as
strategies over the same simulated device."""

from .naive import BaselineResult, run_global, run_global_stream
from .ppcg import guard_overhead, run_ppcg
from .stencilgen import UnsupportedProgram, check_supported, run_stencilgen

__all__ = [
    "BaselineResult",
    "UnsupportedProgram",
    "check_supported",
    "guard_overhead",
    "run_global",
    "run_global_stream",
    "run_ppcg",
    "run_stencilgen",
]
