"""Human-readable optimization reports.

ARTEMIS emits "some optimization hints for the user in the form of
textual output" (Section VII); this module renders the outcome of the
end-to-end flow, including the chosen plans, predicted performance, the
profiling verdicts and any generated fission candidates.
"""

from __future__ import annotations

from typing import List

from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import simulate
from ..profiling.roofline import classify_result
from .artemis import OptimizationOutcome


def format_report(
    outcome: OptimizationOutcome, device: DeviceSpec = P100
) -> str:
    """Render an optimization outcome as a textual report."""
    lines: List[str] = []
    lines.append("=" * 72)
    lines.append("ARTEMIS optimization report")
    lines.append("=" * 72)
    lines.append(f"variant chosen : {outcome.variant}")
    lines.append(f"performance    : {outcome.tflops:.3f} TFLOPS (simulated)")
    lines.append(f"evaluations    : {outcome.evaluations}")
    if outcome.eval_stats is not None:
        stats = outcome.eval_stats
        lines.append(
            f"eval engine    : {stats.requests} requests, "
            f"{stats.hits} cache hits, {stats.simulations} simulated, "
            f"{stats.rungs_skipped} escalation rungs skipped"
        )
        lines.append(
            f"                 {stats.simulations_avoided} simulations "
            f"avoided, {stats.wall_s * 1e3:.1f} ms in evaluation"
        )
    lines.append("")
    lines.append("launches:")
    for plan, count in zip(outcome.schedule.plans, outcome.schedule.counts):
        sim = simulate(outcome.ir, plan, device)
        report = classify_result(sim, device)
        suffix = f" x{count}" if count > 1 else ""
        lines.append(f"  - {plan.describe()}{suffix}")
        lines.append(
            f"      {sim.time_ms:.3f} ms/launch, occupancy "
            f"{sim.occupancy.occupancy:.0%}, bound at {report.bound_level}, "
            f"OI(dram/tex/shm) = "
            f"{sim.counters.oi('dram'):.2f}/"
            f"{sim.counters.oi('tex'):.2f}/"
            f"{sim.counters.oi('shm'):.2f}"
        )
    if outcome.hints:
        lines.append("")
        lines.append("hints:")
        for hint in outcome.hints:
            lines.append(f"  * {hint}")
    if outcome.fission_candidates:
        lines.append("")
        lines.append("fission candidates written (DSL):")
        for candidate in outcome.fission_candidates:
            kernels = len(candidate.ir.kernels)
            lines.append(f"  * {candidate.label}: {kernels} kernel(s)")
    if outcome.deep_tuning is not None:
        lines.append("")
        lines.append("deep tuning (per fusion degree):")
        for entry in outcome.deep_tuning.entries:
            marker = (
                "  <-- tipping point"
                if entry.time_tile == outcome.deep_tuning.tipping_point
                else ""
            )
            lines.append(
                f"  ({entry.time_tile} x 1): {entry.tflops:.3f} TFLOPS, "
                f"bound at {entry.bound_level}{marker}"
            )
    return "\n".join(lines)
