"""Human-readable optimization reports.

ARTEMIS emits "some optimization hints for the user in the form of
textual output" (Section VII); this module renders the outcome of the
end-to-end flow, including the chosen plans, predicted performance, the
profiling verdicts and any generated fission candidates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import simulate
from ..obs import Span, aggregate_phases, get_tracer, tracing_enabled
from ..profiling.roofline import classify_result
from .artemis import OptimizationOutcome


def format_phase_timings(spans: Sequence[Span]) -> List[str]:
    """Per-phase timing table: one row per span name.

    ``total`` sums every span of that name; ``self`` excludes time
    already billed to child phases (so "tuning" does not re-count its
    "tuning.stage1"/"tuning.stage2" sub-phases or the simulations they
    ran).
    """
    totals = aggregate_phases(spans)
    if not totals:
        return []
    lines = ["phase timings:"]
    name_width = max(24, max(len(p.name) for p in totals) + 2)
    lines.append(
        f"  {'phase':{name_width}s} {'calls':>7s} {'total ms':>10s} "
        f"{'self ms':>10s}"
    )
    for phase in totals:
        lines.append(
            f"  {phase.name:{name_width}s} {phase.count:7d} "
            f"{phase.total_s * 1e3:10.2f} {phase.self_s * 1e3:10.2f}"
        )
    return lines


def format_report(
    outcome: OptimizationOutcome,
    device: DeviceSpec = P100,
    phase_spans: Optional[Sequence[Span]] = None,
) -> str:
    """Render an optimization outcome as a textual report.

    When tracing is active (or ``phase_spans`` is passed explicitly), a
    per-phase timing table is appended after the eval-stats block.
    """
    lines: List[str] = []
    lines.append("=" * 72)
    lines.append("ARTEMIS optimization report")
    lines.append("=" * 72)
    lines.append(f"variant chosen : {outcome.variant}")
    lines.append(f"performance    : {outcome.tflops:.3f} TFLOPS (simulated)")
    lines.append(f"evaluations    : {outcome.evaluations}")
    if outcome.eval_stats is not None:
        stats = outcome.eval_stats
        lines.append(
            f"eval engine    : {stats.requests} requests, "
            f"{stats.hits} cache hits, {stats.simulations} simulated, "
            f"{stats.rungs_skipped} escalation rungs skipped"
        )
        lines.append(
            f"                 {stats.simulations_avoided} simulations "
            f"avoided, {stats.wall_s * 1e3:.1f} ms wall "
            f"({stats.cpu_s * 1e3:.1f} ms cpu-sum) in evaluation"
        )
    spans = phase_spans
    if spans is None and tracing_enabled():
        spans = get_tracer().finished()
    if spans:
        lines.append("")
        lines.extend(format_phase_timings(spans))
    lines.append("")
    lines.append("launches:")
    for plan, count in zip(outcome.schedule.plans, outcome.schedule.counts):
        sim = simulate(outcome.ir, plan, device)
        report = classify_result(sim, device)
        suffix = f" x{count}" if count > 1 else ""
        lines.append(f"  - {plan.describe()}{suffix}")
        lines.append(
            f"      {sim.time_ms:.3f} ms/launch, occupancy "
            f"{sim.occupancy.occupancy:.0%}, bound at {report.bound_level}, "
            f"OI(dram/tex/shm) = "
            f"{sim.counters.oi('dram'):.2f}/"
            f"{sim.counters.oi('tex'):.2f}/"
            f"{sim.counters.oi('shm'):.2f}"
        )
    if outcome.hints:
        lines.append("")
        lines.append("hints:")
        for hint in outcome.hints:
            lines.append(f"  * {hint}")
    if outcome.fission_candidates:
        lines.append("")
        lines.append("fission candidates written (DSL):")
        for candidate in outcome.fission_candidates:
            kernels = len(candidate.ir.kernels)
            lines.append(f"  * {candidate.label}: {kernels} kernel(s)")
    if outcome.deep_tuning is not None:
        lines.append("")
        lines.append("deep tuning (per fusion degree):")
        for entry in outcome.deep_tuning.entries:
            marker = (
                "  <-- tipping point"
                if entry.time_tile == outcome.deep_tuning.tipping_point
                else ""
            )
            lines.append(
                f"  ({entry.time_tile} x 1): {entry.tflops:.3f} TFLOPS, "
                f"bound at {entry.bound_level}{marker}"
            )
    return "\n".join(lines)
