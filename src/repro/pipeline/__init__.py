"""End-to-end ARTEMIS optimization flow (Section VII)."""

from .artemis import OptimizationOutcome, optimize
from .report import format_report

__all__ = ["OptimizationOutcome", "format_report", "optimize"]
