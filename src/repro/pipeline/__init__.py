"""End-to-end ARTEMIS optimization flow (Section VII)."""

from .artemis import OptimizationOutcome, optimize
from .report import format_phase_timings, format_report

__all__ = [
    "OptimizationOutcome",
    "format_phase_timings",
    "format_report",
    "optimize",
]
