"""The end-to-end ARTEMIS flow (paper Section VII).

Steps, mirroring the paper's summary:

1. generate a baseline version from the DSL pragmas (seed plan + user
   ``#assign`` constraints + automatic resource assignment);
2. profile the baseline to determine (un)profitable optimizations and
   prune the autotuning space (Section IV);
3. hierarchically autotune the kernel (Section V), then re-profile the
   winner for bottlenecks and emit textual hints;
4. when profiling flags register pressure, generate and evaluate the
   fission candidates (Section VI-B); when it flags residual DRAM
   bandwidth-boundedness with shared memory, also evaluate the global-
   memory version;
5. for iterative stencils, deep-tune the fusion degree and solve the
   ``opt(T)`` schedule for the requested iteration count (Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from ..codegen.generator import lower, schedule_tflops
from ..codegen.plan import GMEM, KernelPlan, ProgramPlan
from ..codegen.resources import auto_assign, seed_plan_from_pragma
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import PlanInfeasible
from ..ir.stencil import ProgramIR
from ..obs import span as _span
from ..obs.search import log_context as _log_context
from ..profiling.advisor import Advice, advise
from ..resilience.checkpoint import TuningJournal
from ..tuning.deeptuning import (
    DeepTuningResult,
    deep_tune,
    fusion_schedule,
    schedule_to_program_plan,
)
from ..tuning.evaluator import EvalStats, PlanEvaluator
from ..tuning.fission import (
    FissionCandidate,
    dedupe_candidates,
    generate_fission_candidates,
)
from ..tuning.hierarchical import HierarchicalTuner


@dataclass(frozen=True)
class OptimizationOutcome:
    """Result of the full ARTEMIS flow on one program."""

    ir: ProgramIR
    schedule: ProgramPlan
    tflops: float
    variant: str  # 'tuned' | 'maxfuse' | 'trivial-fission' | ...
    hints: Tuple[str, ...] = ()
    advice: Tuple[Advice, ...] = ()
    deep_tuning: Optional[DeepTuningResult] = None
    fission_candidates: Tuple[FissionCandidate, ...] = ()
    evaluations: int = 0
    eval_stats: Optional[EvalStats] = None


def optimize(
    source_or_ir: Union[str, ProgramIR],
    device: DeviceSpec = P100,
    iterations: Optional[int] = None,
    explore_fission: bool = True,
    top_k: int = 4,
    evaluator: Optional[PlanEvaluator] = None,
    workers: Optional[int] = None,
    journal: Optional[TuningJournal] = None,
    make_tuner: Optional[Callable[..., HierarchicalTuner]] = None,
) -> OptimizationOutcome:
    """Run the end-to-end ARTEMIS optimization flow.

    One :class:`PlanEvaluator` is shared by every tuning phase of the
    run (per-kernel tuning, fused/fission/global alternatives, deep
    tuning), so any plan the flow revisits is a memo-cache hit.
    ``workers`` fans candidate batches out over that many threads.
    ``journal`` checkpoints every evaluated candidate as it completes;
    the journal's records are content-addressed by IR fingerprint, so
    one journal file safely serves every phase (including fission
    variants, which are distinct IRs) and an interrupted run restarted
    with the same journal resumes instead of re-tuning.
    """
    with _span("optimize"):
        with _span("lower"):
            ir = lower(source_or_ir)
        engine = evaluator or PlanEvaluator(device=device, workers=workers)
        stats_before = engine.stats.snapshot()
        outcome = _optimize(
            ir, engine, iterations, explore_fission, top_k, journal,
            make_tuner=make_tuner,
        )
    from dataclasses import replace

    outcome = replace(outcome, eval_stats=engine.stats.since(stats_before))
    if engine.search_log is not None:
        engine.search_log.winner(outcome)
    return outcome


def _optimize(
    ir: ProgramIR,
    engine: PlanEvaluator,
    iterations: Optional[int],
    explore_fission: bool,
    top_k: int,
    journal: Optional[TuningJournal] = None,
    make_tuner: Optional[Callable[..., HierarchicalTuner]] = None,
) -> OptimizationOutcome:
    device = engine.device
    if ir.is_iterative and len(ir.kernels) == 1:
        return _optimize_iterative(
            ir, device, iterations, top_k, engine, journal, make_tuner
        )
    if ir.is_iterative:
        # Multi-statement iterative DAGs (e.g. denoise): fuse the DAG
        # into one kernel, deep-tune the time dimension, and keep the
        # per-step (unfused-time) schedule as the fallback.
        from ..tuning.fusion import maxfuse

        fused = maxfuse(ir)
        spatial = _optimize_spatial(
            ir, device, explore_fission, top_k, engine, journal, make_tuner
        )
        if len(fused.kernels) == 1:
            try:
                fused_outcome = _optimize_iterative(
                    fused, device, iterations, top_k, engine, journal,
                    make_tuner,
                )
            except (PlanInfeasible, ValueError):
                return spatial
            if fused_outcome.tflops > spatial.tflops:
                return fused_outcome
        return spatial
    return _optimize_spatial(
        ir, device, explore_fission, top_k, engine, journal, make_tuner
    )


# ---------------------------------------------------------------------------
# iterative programs: deep tuning + opt(T)
# ---------------------------------------------------------------------------


def _optimize_iterative(
    ir: ProgramIR,
    device: DeviceSpec,
    iterations: Optional[int],
    top_k: int,
    evaluator: Optional[PlanEvaluator] = None,
    journal: Optional[TuningJournal] = None,
    make_tuner: Optional[Callable[..., HierarchicalTuner]] = None,
) -> OptimizationOutcome:
    steps = iterations if iterations is not None else ir.time_iterations
    deep = deep_tune(
        ir, device=device, top_k=top_k, evaluator=evaluator, journal=journal,
        make_tuner=make_tuner,
    )
    schedule = fusion_schedule(deep, steps)
    program_plan = schedule_to_program_plan(deep, schedule)
    tflops = schedule_tflops(ir, program_plan, device)
    hints = (
        f"deep tuning explored fusion degrees 1..{deep.k}; tipping point "
        f"at {deep.tipping_point}",
        f"schedule for T={steps}: {schedule.describe()}",
    )
    return OptimizationOutcome(
        ir=ir,
        schedule=program_plan,
        tflops=tflops,
        variant="deep-tuned",
        hints=hints,
        deep_tuning=deep,
        evaluations=deep.evaluations,
    )


# ---------------------------------------------------------------------------
# spatial programs: profile -> tune -> fission/global alternatives
# ---------------------------------------------------------------------------


def _optimize_spatial(
    ir: ProgramIR,
    device: DeviceSpec,
    explore_fission: bool,
    top_k: int,
    evaluator: Optional[PlanEvaluator] = None,
    journal: Optional[TuningJournal] = None,
    make_tuner: Optional[Callable[..., HierarchicalTuner]] = None,
) -> OptimizationOutcome:
    log = evaluator.search_log if evaluator is not None else None
    with _log_context(log, variant="tuned"):
        schedule, advice_list, evaluations = _tune_kernels(
            ir, device, top_k, evaluator=evaluator, journal=journal,
            make_tuner=make_tuner,
        )
    best_tflops = schedule_tflops(ir, schedule, device)
    best = OptimizationOutcome(
        ir=ir,
        schedule=schedule,
        tflops=best_tflops,
        variant="tuned",
        hints=tuple(h for a in advice_list for h in a.hints),
        advice=tuple(advice_list),
        evaluations=evaluations,
    )

    wants_fission = any(a.explore_fission for a in advice_list)
    wants_global = any(a.generate_global_version for a in advice_list)
    candidates: Tuple[FissionCandidate, ...] = ()

    # Multi-kernel spatial DAGs: fusing stages eliminates intermediate
    # arrays' global traffic (Section VI) — evaluate the fused form.
    if len(ir.kernels) > 1:
        from ..tuning.fusion import maxfuse

        fused_ir = maxfuse(ir)
        if len(fused_ir.kernels) < len(ir.kernels):
            try:
                with _log_context(log, variant="dag-fused"):
                    f_schedule, f_advice, f_evals = _tune_kernels(
                        fused_ir, device, top_k, evaluator=evaluator,
                        journal=journal, make_tuner=make_tuner,
                    )
                f_tflops = schedule_tflops(fused_ir, f_schedule, device)
                if f_tflops > best.tflops:
                    best = OptimizationOutcome(
                        ir=fused_ir,
                        schedule=f_schedule,
                        tflops=f_tflops,
                        variant="dag-fused",
                        hints=best.hints
                        + ("fusing the kernel DAG eliminates intermediate "
                           "array traffic",),
                        advice=tuple(f_advice),
                        evaluations=best.evaluations + f_evals,
                    )
            except PlanInfeasible:
                pass

    if explore_fission and wants_fission:
        candidates = generate_fission_candidates(ir, search_log=log)
        for candidate in dedupe_candidates(candidates):
            if candidate.label == "maxfuse" and len(candidate.ir.kernels) == len(
                ir.kernels
            ):
                continue  # identical to the input
            try:
                with _log_context(log, variant=candidate.label):
                    cand_schedule, cand_advice, cand_evals = _tune_kernels(
                        candidate.ir, device, top_k, evaluator=evaluator,
                        journal=journal, make_tuner=make_tuner,
                    )
            except PlanInfeasible:
                continue
            cand_tflops = schedule_tflops(candidate.ir, cand_schedule, device)
            if cand_tflops > best.tflops:
                best = OptimizationOutcome(
                    ir=candidate.ir,
                    schedule=cand_schedule,
                    tflops=cand_tflops,
                    variant=candidate.label,
                    hints=best.hints
                    + (f"{candidate.label} outperforms the fused kernel",),
                    advice=tuple(cand_advice),
                    fission_candidates=candidates,
                    evaluations=best.evaluations + cand_evals,
                )

    if wants_global:
        with _log_context(log, variant="global"):
            global_schedule, _, g_evals = _tune_kernels(
                ir, device, top_k, force_gmem=True, evaluator=evaluator,
                journal=journal, make_tuner=make_tuner,
            )
        g_tflops = schedule_tflops(ir, global_schedule, device)
        if g_tflops > best.tflops:
            best = OptimizationOutcome(
                ir=ir,
                schedule=global_schedule,
                tflops=g_tflops,
                variant="global",
                hints=best.hints
                + ("global-memory version outperforms shared memory",),
                advice=best.advice,
                fission_candidates=candidates,
                evaluations=best.evaluations + g_evals,
            )
    if candidates and best.variant == "tuned":
        best = OptimizationOutcome(
            ir=best.ir,
            schedule=best.schedule,
            tflops=best.tflops,
            variant=best.variant,
            hints=best.hints,
            advice=best.advice,
            fission_candidates=candidates,
            evaluations=best.evaluations,
        )
    return best


def _tune_kernels(
    ir: ProgramIR,
    device: DeviceSpec,
    top_k: int,
    force_gmem: bool = False,
    evaluator: Optional[PlanEvaluator] = None,
    journal: Optional[TuningJournal] = None,
    make_tuner: Optional[Callable[..., HierarchicalTuner]] = None,
):
    """Profile-advise-tune every kernel of a program."""
    plans: List[KernelPlan] = []
    advice_list: List[Advice] = []
    evaluations = 0
    log = evaluator.search_log if evaluator is not None else None
    for instance in ir.kernels:
        with _span("planning", kernel=instance.name):
            seed = seed_plan_from_pragma(ir, instance)
            if force_gmem:
                # The global version tiles all three dimensions (§VIII-F:
                # plain tiling beats streaming when nothing is buffered).
                seed = seed.replace(
                    streaming="none",
                    block=(4, 4, 16),
                    placements=tuple(
                        (array, GMEM) for array, _ in seed.placements
                    ),
                )
            else:
                seed = auto_assign(ir, seed, device).plan
        with _span("analysis", kernel=instance.name):
            kernel_advice = advise(ir, seed, device)
        if log is not None:
            log.advice(instance.name, kernel_advice)
        advice_list.append(kernel_advice)
        tuner = (make_tuner or HierarchicalTuner)(
            ir,
            device=device,
            use_unrolling=kernel_advice.use_unrolling,
            use_register_opts=kernel_advice.use_register_opts,
            bandwidth_bound=not kernel_advice.bottleneck.compute_bound(),
            top_k=top_k,
            evaluator=evaluator,
            journal=journal,
        )
        if not kernel_advice.use_shared_memory:
            seed = seed.replace(
                placements=tuple((a, GMEM) for a, _ in seed.placements)
            )
        result = tuner.tune(seed)
        evaluations += tuner.evaluations
        plans.append(result.best_plan)
    return ProgramPlan(plans=tuple(plans)), advice_list, evaluations
