"""Resource assignment and rationing (paper Sections II-B1 and II-B2).

Resource *assignment* decides which arrays are cached in shared memory,
held in register windows, or read straight from global memory.  Unlike
code generators that buffer everything (and then must shrink the thread
block until it fits), ARTEMIS:

* honours the user's ``#assign`` constraints verbatim;
* auto-assigns remaining arrays by benefit density (reads served per
  byte of shared memory), admitting buffers while the block still fits
  the device's shared-memory and occupancy budget;
* under an ``occupancy t`` pragma clause (resource *rationing*),
  repeatedly demotes the shared buffer with the fewest accesses to
  global memory until the target occupancy is reachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..gpu.device import DeviceSpec, P100
from ..gpu.occupancy import occupancy
from ..gpu.registers import compiled_registers
from ..ir.analysis import access_summary, read_halos
from ..ir.homogenize import kernel_retimable
from ..ir.stencil import ProgramIR, StencilInstance
from ..ir.types import sizeof
from ..resilience.errors import InfeasiblePlanError
from .plan import GMEM, KernelPlan, REGISTER, SHMEM
from .tiling import (
    build_stages,
    buffer_requirements,
    is_star_along,
    launch_geometry,
    shmem_bytes_per_block,
)


class InvalidPlan(InfeasiblePlanError):
    """Raised when a plan combines transformations illegally.

    Part of the :mod:`repro.resilience` taxonomy (and still a
    ``ValueError``, as in the seed implementation).
    """


def validate_plan(ir: ProgramIR, plan: KernelPlan) -> None:
    """Check a plan's transformation legality (not device feasibility).

    * ``register`` placement demands a star access pattern along the
      stream axis (a register cannot hold a neighbour thread's value);
    * retiming demands every fused kernel be homogenizable along the
      stream axis and requires streaming;
    * the stream axis must exist;
    * every fused kernel instance must exist in the program.
    """
    for name in plan.kernel_names:
        try:
            ir.kernel(name)
        except KeyError:
            raise InvalidPlan(f"unknown kernel instance {name!r}") from None
    if plan.stream_axis >= ir.ndim:
        raise InvalidPlan(
            f"stream axis {plan.stream_axis} out of range for "
            f"{ir.ndim}-D program"
        )
    try:
        stages = build_stages(ir, plan)
    except ValueError as exc:
        # e.g. a multi-kernel time tile: stage construction refuses the
        # shape; classify it as the structural invalidity it is instead
        # of leaking a bare ValueError past the INFEASIBLE taxonomy.
        raise InvalidPlan(str(exc)) from None
    if plan.retime:
        if not plan.uses_streaming:
            raise InvalidPlan("retiming requires streaming")
        iterator = ir.iterators[plan.stream_axis]
        for stage in stages:
            if not kernel_retimable(ir, stage.instance, iterator):
                raise InvalidPlan(
                    f"kernel {stage.instance.name!r} is not homogenizable "
                    f"along {iterator!r}; retiming is illegal"
                )
    for array, storage in plan.placements:
        if storage == REGISTER and plan.uses_streaming:
            for stage in stages:
                if array in stage.instance.arrays_read() and not is_star_along(
                    ir, stage.instance, array, plan.stream_axis
                ):
                    raise InvalidPlan(
                        f"array {array!r} has cross-thread reads off the "
                        "stream plane; register placement is illegal"
                    )


# ---------------------------------------------------------------------------
# automatic assignment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of resource assignment for one plan."""

    plan: KernelPlan
    demoted: Tuple[str, ...] = ()  # arrays pushed to gmem by rationing
    notes: Tuple[str, ...] = ()


def candidate_arrays(ir: ProgramIR, plan: KernelPlan) -> List[str]:
    """Arrays that could profit from on-chip buffering, most reads first."""
    scores: Dict[str, int] = {}
    for name in plan.kernel_names:
        instance = ir.kernel(name)
        for array, info in access_summary(ir, instance).items():
            if info.reads_total == 0:
                continue
            scores[array] = scores.get(array, 0) + info.reads_total
    return sorted(scores, key=lambda a: (-scores[a], a))


def auto_assign(
    ir: ProgramIR,
    plan: KernelPlan,
    device: DeviceSpec = P100,
    shmem_budget_fraction: float = 0.9,
) -> AssignmentResult:
    """Assign storage classes automatically, honouring user constraints.

    Arrays already placed by the plan (user ``#assign``) are untouched.
    Remaining read arrays are admitted to shared memory by benefit
    density until the shared-memory budget is exhausted; full-rank arrays
    with a star pattern cost only one plane, so they are admitted first.
    Lower-rank arrays (e.g. 1-D coefficient vectors) stay in global
    memory — their reuse is already captured by L2/constant caches.
    """
    fixed = plan.placement_map
    budget = int(device.shared_mem_per_block * shmem_budget_fraction)
    placements: List[Tuple[str, str]] = list(plan.placements)
    notes: List[str] = []

    ranked = []
    reuse = {}
    for name in plan.kernel_names:
        for array, info in access_summary(ir, ir.kernel(name)).items():
            reuse[array] = max(reuse.get(array, 0), info.reads_distinct)
    for array in candidate_arrays(ir, plan):
        if array in fixed:
            continue
        info = ir.array_map.get(array)
        if info is None or info.ndim < ir.ndim:
            notes.append(f"{array}: lower-rank, kept in global memory")
            continue
        if reuse.get(array, 0) <= 1:
            # Read at a single offset: a shared buffer adds fill and
            # load traffic without removing any global access.
            notes.append(f"{array}: no reuse, kept in global memory")
            continue
        ranked.append(array)

    # Admission is tested at a conservative reference block: the
    # autotuner will shrink the block when a buffer set does not fit a
    # large one, so assignment must not depend on the seed's block size.
    if plan.uses_streaming:
        reference = plan.replace(block=(16, 16), unroll=())
    else:
        reference = plan.replace(block=(4, 8, 8), unroll=())

    current = plan
    ref_current = reference
    for array in ranked:
        trial = ref_current.replace(
            placements=tuple(placements + [(array, SHMEM)])
        )
        if shmem_bytes_per_block(ir, trial) <= budget:
            placements.append((array, SHMEM))
            ref_current = trial
            current = current.replace(placements=tuple(placements))
        else:
            notes.append(f"{array}: shared-memory budget exhausted")
    return AssignmentResult(plan=current, notes=tuple(notes))


# ---------------------------------------------------------------------------
# rationing: occupancy targets (Section II-B2)
# ---------------------------------------------------------------------------


def apply_occupancy_target(
    ir: ProgramIR,
    plan: KernelPlan,
    target: float,
    device: DeviceSpec = P100,
) -> AssignmentResult:
    """Demote least-accessed shared buffers until ``target`` is reachable.

    Mirrors the paper: "the resource mapping algorithm must choose a
    shared memory buffer with minimum number of accesses, and demote its
    storage to global memory.  This process is repeated till the shared
    memory usage is no longer a bottleneck in achieving the targeted
    occupancy."
    """
    if not 0.0 < target <= 1.0:
        raise ValueError("occupancy target must be in (0, 1]")
    current = plan
    demoted: List[str] = []
    notes: List[str] = []
    while True:
        if _occupancy_reachable(ir, current, target, device):
            break
        victim = _least_accessed_shared(ir, current)
        if victim is None:
            notes.append(
                "no shared buffers left to demote; target occupancy "
                "unreachable via rationing"
            )
            break
        placements = tuple(
            (a, GMEM if a == victim else s) for a, s in current.placements
        )
        current = current.replace(placements=placements)
        demoted.append(victim)
        notes.append(f"{victim}: demoted to global memory")
    return AssignmentResult(
        plan=current, demoted=tuple(demoted), notes=tuple(notes)
    )


def _occupancy_reachable(
    ir: ProgramIR, plan: KernelPlan, target: float, device: DeviceSpec
) -> bool:
    geometry = launch_geometry(ir, plan)
    shmem = shmem_bytes_per_block(ir, plan)
    regs = compiled_registers(ir, plan)["compiled"]
    try:
        result = occupancy(device, geometry.threads_per_block, regs, shmem)
    except ValueError:
        return False
    return result.occupancy >= target


def _least_accessed_shared(ir: ProgramIR, plan: KernelPlan) -> Optional[str]:
    shared = [a for a, s in plan.placements if s == SHMEM]
    if not shared:
        return None
    counts: Dict[str, int] = {a: 0 for a in shared}
    for name in plan.kernel_names:
        instance = ir.kernel(name)
        for array, info in access_summary(ir, instance).items():
            if array in counts:
                counts[array] += info.reads_total
    return min(counts, key=lambda a: (counts[a], a))


def seed_plan_from_pragma(
    ir: ProgramIR, instance: StencilInstance
) -> KernelPlan:
    """Baseline plan from the stencil's ``#pragma`` (Section VII, step 1).

    Uses the pragma's streaming dimension, block size and unroll factors;
    fills in conservative defaults when absent.
    """
    pragma = instance.pragma
    ndim = ir.ndim
    if pragma is not None and pragma.stream_dim:
        stream_axis = ir.axis_of(pragma.stream_dim)
        streaming = "serial"
    else:
        stream_axis = 0
        streaming = "serial" if ndim >= 3 else "none"
    if pragma is not None and pragma.block:
        block = tuple(pragma.block)
    else:
        block = (16, 16) if streaming == "serial" else (16, 4, 4)
    unroll = [1] * ndim
    if pragma is not None:
        for it_name, factor in pragma.unroll:
            unroll[ir.axis_of(it_name)] = factor
    plan = KernelPlan(
        kernel_names=(instance.name,),
        block=block,
        streaming=streaming,
        stream_axis=stream_axis,
        unroll=tuple(unroll),
        placements=instance.placements,
    )
    if pragma is not None and pragma.occupancy is not None:
        plan = apply_occupancy_target(ir, plan, pragma.occupancy).plan
    return plan
