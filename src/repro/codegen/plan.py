"""Kernel plans: the configuration space of generated GPU code.

A :class:`KernelPlan` captures every decision ARTEMIS makes when lowering
one kernel launch: which stencil instances are fused into it, the thread
block geometry, the tiling/streaming scheme, unrolling, prefetching,
per-array storage placements, retiming, folding, and the register budget.
Plans are immutable values; the autotuner enumerates them, the simulator
prices them, the CUDA emitter renders them, and the functional executor
validates them.

Axis convention: tuples indexed by *program axis*, outermost first (the
DSL's ``iterator k, j, i`` gives axis 0 = k, 1 = j, 2 = i).  Only the
CUDA emitter converts to CUDA's x-fastest convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..ir.folding import FoldGroup

#: Streaming modes (paper Sections III-A2 and III-B1).
STREAM_NONE = "none"
STREAM_SERIAL = "serial"
STREAM_CONCURRENT = "concurrent"
STREAMING_MODES = (STREAM_NONE, STREAM_SERIAL, STREAM_CONCURRENT)

#: Thread-block perspectives (paper Section III-B3).
PERSPECTIVE_OUTPUT = "output"
PERSPECTIVE_INPUT = "input"
PERSPECTIVE_MIXED = "mixed"
PERSPECTIVES = (PERSPECTIVE_OUTPUT, PERSPECTIVE_INPUT, PERSPECTIVE_MIXED)

#: Storage classes for array placement.
SHMEM = "shmem"
GMEM = "gmem"
REGISTER = "register"
CONSTANT = "constant"
STORAGE_CLASSES = (SHMEM, GMEM, REGISTER, CONSTANT)

#: Register budgets explored by the autotuner (paper Section V).
REGISTER_LEVELS = (32, 64, 128, 255)


@dataclass(frozen=True)
class KernelPlan:
    """One generated-kernel configuration.

    ``kernel_names`` lists the stencil instances fused into this launch,
    in execution order.  ``time_tile`` > 1 fuses that many applications
    of an iterative stencil (overlapped time tiling).
    """

    kernel_names: Tuple[str, ...]
    block: Tuple[int, ...]  # threads per axis, outermost first
    time_tile: int = 1
    streaming: str = STREAM_NONE
    stream_axis: int = 0
    concurrent_chunks: int = 1  # z-partitions under concurrent streaming
    unroll: Tuple[int, ...] = ()  # per-axis unroll factors ((=all 1s))
    unroll_blocked: bool = True  # blocked vs cyclic work distribution
    prefetch: bool = False
    perspective: str = PERSPECTIVE_OUTPUT
    placements: Tuple[Tuple[str, str], ...] = ()
    retime: bool = False
    fold_groups: Tuple[FoldGroup, ...] = ()
    max_registers: int = 255

    # -- validation -----------------------------------------------------------

    def __post_init__(self):
        if not self.kernel_names:
            raise ValueError("plan must cover at least one kernel instance")
        if self.streaming not in STREAMING_MODES:
            raise ValueError(f"unknown streaming mode {self.streaming!r}")
        if self.perspective not in PERSPECTIVES:
            raise ValueError(f"unknown perspective {self.perspective!r}")
        if self.time_tile < 1:
            raise ValueError("time_tile must be >= 1")
        if self.concurrent_chunks < 1:
            raise ValueError("concurrent_chunks must be >= 1")
        if not (1 <= self.max_registers <= 255):
            raise ValueError("max_registers must be in [1, 255]")
        for b in self.block:
            if b < 1:
                raise ValueError("block sizes must be positive")
        for u in self.unroll:
            if u < 1:
                raise ValueError("unroll factors must be positive")
        for _, storage in self.placements:
            if storage not in STORAGE_CLASSES:
                raise ValueError(f"unknown storage class {storage!r}")

    # -- derived geometry ------------------------------------------------------

    @property
    def uses_streaming(self) -> bool:
        return self.streaming in (STREAM_SERIAL, STREAM_CONCURRENT)

    @property
    def placement_map(self) -> Dict[str, str]:
        return dict(self.placements)

    def placement_of(self, array: str) -> str:
        """Storage class for an array (default: global memory)."""
        return self.placement_map.get(array, GMEM)

    def unroll_factor(self, axis: int) -> int:
        if axis < len(self.unroll):
            return self.unroll[axis]
        return 1

    def block_threads(self) -> int:
        threads = 1
        for extent in self.block:
            threads *= extent
        return threads

    def block_on_axis(self, axis: int, ndim: int) -> int:
        """Thread count along a program axis.

        The ``block`` tuple assigns threads to the *tiled* axes.  Under
        streaming the stream axis has one thread layer; the remaining
        block entries map onto the other axes outermost-first.
        """
        tiled_axes = self.tiled_axes(ndim)
        if axis not in tiled_axes:
            return 1
        position = tiled_axes.index(axis)
        if position < len(self.block):
            return self.block[position]
        return 1

    def tiled_axes(self, ndim: int) -> Tuple[int, ...]:
        """Axes that receive thread-block tiling (all but the stream axis)."""
        if self.uses_streaming:
            return tuple(a for a in range(ndim) if a != self.stream_axis)
        return tuple(range(ndim))

    def tile_extent(self, axis: int, ndim: int) -> int:
        """Output points per block along an axis (threads x unroll)."""
        return self.block_on_axis(axis, ndim) * self.unroll_factor(axis)

    def total_unroll(self) -> int:
        total = 1
        for factor in self.unroll:
            total *= factor
        return total

    def replace(self, **changes) -> "KernelPlan":
        # Hand-rolled for speed: the tuners derive every candidate from a
        # seed via replace(), so this runs tens of thousands of times per
        # search.  One C-level __dict__ copy plus re-running
        # __post_init__ validation beats dataclasses.replace's generic
        # machinery by an order of magnitude.  The pinned identity
        # caches survive the copy exactly when the changed fields are
        # factored out of them: ``_family_key`` excludes only
        # ``max_registers``, ``_structural_key`` additionally the grid
        # axes (block, unroll, unroll_blocked) — so the register
        # escalation ladder and the tile sweep inherit their parents'
        # keys instead of recomputing them per candidate.
        new = object.__new__(KernelPlan)
        d = new.__dict__
        d.update(self.__dict__)
        changed = changes.keys()
        if changed - _STRUCTURAL_EXEMPT:
            d.pop("_structural_key", None)
        if changed - _FAMILY_EXEMPT:
            d.pop("_family_key", None)
        for name, value in changes.items():
            if name not in _PLAN_FIELD_SET:
                raise TypeError(
                    f"replace() got an unexpected field {name!r}"
                )
            d[name] = value
        new.__post_init__()
        return new

    def describe(self) -> str:
        """Human-readable one-line summary (used by reports and tuning logs)."""
        parts = [
            "+".join(self.kernel_names),
            f"block={'x'.join(str(b) for b in self.block)}",
        ]
        if self.time_tile > 1:
            parts.append(f"tt={self.time_tile}")
        if self.uses_streaming:
            parts.append(f"stream={self.streaming}@{self.stream_axis}")
            if self.streaming == STREAM_CONCURRENT:
                parts.append(f"chunks={self.concurrent_chunks}")
        if self.unroll and any(u > 1 for u in self.unroll):
            parts.append(f"unroll={'x'.join(str(u) for u in self.unroll)}")
        if self.prefetch:
            parts.append("prefetch")
        if self.retime:
            parts.append("retime")
        if self.fold_groups:
            parts.append(f"fold={len(self.fold_groups)}")
        if self.perspective != PERSPECTIVE_OUTPUT:
            parts.append(self.perspective)
        shm = [a for a, s in self.placements if s == SHMEM]
        if shm:
            parts.append(f"shm({','.join(shm)})")
        parts.append(f"regs<={self.max_registers}")
        return " ".join(parts)


#: Declared field names, in order, for the fast ``KernelPlan.replace``.
_PLAN_FIELDS = tuple(f.name for f in KernelPlan.__dataclass_fields__.values())
_PLAN_FIELD_SET = frozenset(_PLAN_FIELDS)

#: Fields factored out of the pinned identity caches (see
#: ``repro.codegen.tiling.plan_family_key`` / ``plan_structural_key``):
#: a ``replace`` touching only these keeps the corresponding cache.
_FAMILY_EXEMPT = frozenset({"max_registers"})
_STRUCTURAL_EXEMPT = frozenset(
    {"max_registers", "block", "unroll", "unroll_blocked"}
)


@dataclass(frozen=True)
class ProgramPlan:
    """A full schedule: one plan per launch, in execution order.

    For iterative programs, ``launch_counts[i]`` says how many times
    launch ``i`` is invoked (a deep-tuned fusion schedule such as
    ``(4x3 ⊕ 1x1)`` becomes two entries with counts 3 and 1).
    """

    plans: Tuple[KernelPlan, ...]
    launch_counts: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.launch_counts and len(self.launch_counts) != len(self.plans):
            raise ValueError("launch_counts must match plans")

    @property
    def counts(self) -> Tuple[int, ...]:
        if self.launch_counts:
            return self.launch_counts
        return tuple(1 for _ in self.plans)

    def total_time_steps(self) -> int:
        """Total iterative applications covered by this schedule."""
        return sum(p.time_tile * c for p, c in zip(self.plans, self.counts))
