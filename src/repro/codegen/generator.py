"""Top-level code generation entry points.

``generate_baseline`` performs the first step of the paper's end-to-end
flow (Section VII): derive a plan for every kernel of a program from the
user's pragmas, apply automatic resource assignment within the device's
budget, honour any occupancy target, validate the transformation mix,
and render CUDA plus a simulated performance report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..dsl.ast import Program
from ..dsl.parser import parse
from ..gpu.counters import SimulationResult
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import simulate
from ..ir.stencil import ProgramIR, build_ir
from .cuda_emitter import GeneratedKernel, emit_cuda
from .plan import KernelPlan, ProgramPlan
from .resources import auto_assign, seed_plan_from_pragma, validate_plan


@dataclass(frozen=True)
class GeneratedProgram:
    """Everything produced for one program: plans, CUDA, predicted perf."""

    ir: ProgramIR
    schedule: ProgramPlan
    kernels: Tuple[GeneratedKernel, ...]
    simulations: Tuple[SimulationResult, ...]

    @property
    def total_time_s(self) -> float:
        return sum(
            sim.time_s * count
            for sim, count in zip(self.simulations, self.schedule.counts)
        )

    @property
    def tflops(self) -> float:
        """Aggregate useful-FLOP throughput across all launches."""
        useful = sum(
            sim.counters.useful_flops * count
            for sim, count in zip(self.simulations, self.schedule.counts)
        )
        total = self.total_time_s
        return useful / total / 1e12 if total > 0 else 0.0

    @property
    def source(self) -> str:
        return "\n".join(k.source for k in self.kernels)


def lower(source_or_program: Union[str, Program, ProgramIR]) -> ProgramIR:
    """Accept DSL text, a parsed Program, or IR, and return IR."""
    if isinstance(source_or_program, ProgramIR):
        return source_or_program
    if isinstance(source_or_program, Program):
        return build_ir(source_or_program)
    return build_ir(parse(source_or_program))


def generate_baseline(
    source_or_program: Union[str, Program, ProgramIR],
    device: DeviceSpec = P100,
    auto_resources: bool = True,
) -> GeneratedProgram:
    """Generate the pragma-seeded baseline version of a program."""
    ir = lower(source_or_program)
    plans: List[KernelPlan] = []
    for instance in ir.kernels:
        plan = seed_plan_from_pragma(ir, instance)
        if auto_resources:
            plan = auto_assign(ir, plan, device).plan
        validate_plan(ir, plan)
        plans.append(plan)
    schedule = ProgramPlan(plans=tuple(plans))
    return realize(ir, schedule, device)


def realize(
    ir: ProgramIR, schedule: ProgramPlan, device: DeviceSpec = P100
) -> GeneratedProgram:
    """Emit CUDA and simulate every launch of a schedule."""
    kernels = tuple(emit_cuda(ir, plan) for plan in schedule.plans)
    simulations = tuple(simulate(ir, plan, device) for plan in schedule.plans)
    return GeneratedProgram(
        ir=ir, schedule=schedule, kernels=kernels, simulations=simulations
    )


def schedule_tflops(
    ir: ProgramIR, schedule: ProgramPlan, device: DeviceSpec = P100
) -> float:
    """Useful-FLOP throughput of a schedule without emitting CUDA."""
    total_time = 0.0
    useful = 0.0
    for plan, count in zip(schedule.plans, schedule.counts):
        sim = simulate(ir, plan, device)
        total_time += sim.time_s * count
        useful += sim.counters.useful_flops * count
    return useful / total_time / 1e12 if total_time > 0 else 0.0
