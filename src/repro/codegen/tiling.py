"""Tile geometry: overlapped tiling, streaming windows, buffer shapes.

This module answers the geometric questions every other component asks
about a :class:`~repro.codegen.plan.KernelPlan`:

* how the fused launch decomposes into *stages* (time-tile replication
  for iterative stencils, kernel order for fused DAG stages) and how the
  computed region grows per stage under overlapped tiling (Figure 1b);
* how many blocks the launch creates and how many points each stage
  computes per block (including redundant halo recomputation);
* which shared-memory planes and per-thread register planes each array
  needs under streaming (Figure 1c / Listing 2), and the resulting
  shared-memory bytes per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.analysis import (
    access_patterns,
    internal_reach,
    kernel_flops_per_point,
    memoized_kv,
    read_halos,
)
from ..ir.folding import apply_folding
from ..ir.stencil import ProgramIR, StencilInstance
from ..ir.types import sizeof
from ..obs import counter as _counter, metrics_enabled as _metrics_enabled
from ..obs import span as _span
from .plan import (
    GMEM,
    KernelPlan,
    REGISTER,
    SHMEM,
    STREAM_CONCURRENT,
)

Halo = Tuple[Tuple[int, int], ...]  # per-axis (lo, hi)


# ---------------------------------------------------------------------------
# plan-family memoization
#
# Every geometric quantity below is a pure function of (IR, plan) — and
# none of them depend on ``plan.max_registers``, so all the register-
# escalation rungs of one candidate share the same *plan family* and the
# same cached geometry.  Results are keyed by IR identity (strong ref
# held, as in ir.analysis) plus the canonical register-independent plan
# key.  The cache can be disabled wholesale (benchmarks compare against
# the uncached seed path; tests verify cached == uncached).
# ---------------------------------------------------------------------------

_PLAN_MEMO: dict = {}
_PLAN_MEMO_ENABLED = True


def plan_family_key(plan: KernelPlan) -> tuple:
    """Canonical identity of a plan with ``max_registers`` factored out.

    Two plans with equal family keys describe the same generated code
    shape — geometry, stages, buffers, shared memory and register
    *demand* are all identical; only the compile-time register cap (and
    therefore spilling and occupancy) may differ.

    The key is pinned on the (frozen) plan object after the first call:
    the memo layers below hash it on every lookup, thousands of times
    per tuning run.
    """
    key = plan.__dict__.get("_family_key")
    if key is None:
        key = (
            plan.kernel_names,
            plan.block,
            plan.time_tile,
            plan.streaming,
            plan.stream_axis,
            plan.concurrent_chunks,
            plan.unroll,
            plan.unroll_blocked,
            plan.prefetch,
            plan.perspective,
            plan.placements,
            plan.retime,
            plan.fold_groups,
        )
        object.__setattr__(plan, "_family_key", key)
    return key


def plan_structural_key(plan: KernelPlan) -> tuple:
    """Identity of a plan's *structure*: the family key with the grid
    knobs (block tile, unroll factors, register cap) factored out too.

    Plans sharing a structural key differ only in tile sizes, unroll
    factors and the register budget — exactly the axes the vectorized
    family pricer (:func:`repro.gpu.pricing.price_family`) sweeps as
    NumPy arrays.  Which arrays are buffered where, the stage list, the
    per-array halos and every branch of the counter model are constant
    across the structural group; only the arithmetic over tile extents
    varies.
    """
    key = plan.__dict__.get("_structural_key")
    if key is None:
        key = (
            plan.kernel_names,
            plan.time_tile,
            plan.streaming,
            plan.stream_axis,
            plan.concurrent_chunks,
            plan.prefetch,
            plan.perspective,
            plan.placements,
            plan.retime,
            plan.fold_groups,
        )
        object.__setattr__(plan, "_structural_key", key)
    return key


def _plan_memoized(tag: str, ir: ProgramIR, plan: KernelPlan, compute,
                   extra: tuple = ()):
    if not _PLAN_MEMO_ENABLED:
        return compute()
    key = (tag, id(ir), plan_family_key(plan)) + extra
    hit = _PLAN_MEMO.get(key)
    if hit is not None and hit[0] is ir:
        return hit[1]
    # Only cache misses are worth observing: they are where geometry is
    # actually computed, and they are rare enough (one per plan family)
    # that instrumentation cannot perturb the hit fast-path.
    if _metrics_enabled():
        _counter(f"tiling.plan_cache_miss.{tag}").add()
    with _span(f"planning.{tag}"):
        value = compute()
    _PLAN_MEMO[key] = (ir, value)
    return value


def _ir_memoized(tag: str, ir: ProgramIR, key: tuple, compute):
    """Like :func:`_plan_memoized` but with an explicit sub-plan key.

    Several geometric analyses depend on only a few plan fields (the
    stage list reads nothing but ``kernel_names``/``time_tile``/
    ``fold_groups``), so keying them by the full family key would
    recompute them once per tile size.  Shares the plan cache and its
    enable switch, so seed-equivalence benchmarks still disable
    everything at once.
    """
    if not _PLAN_MEMO_ENABLED:
        return compute()
    full_key = (tag, id(ir)) + key
    hit = _PLAN_MEMO.get(full_key)
    if hit is not None and hit[0] is ir:
        return hit[1]
    if _metrics_enabled():
        _counter(f"tiling.plan_cache_miss.{tag}").add()
    with _span(f"planning.{tag}"):
        value = compute()
    _PLAN_MEMO[full_key] = (ir, value)
    return value


def set_plan_cache_enabled(enabled: bool) -> None:
    """Toggle the (ir, plan-family) geometry cache; clears it on change."""
    global _PLAN_MEMO_ENABLED
    _PLAN_MEMO_ENABLED = bool(enabled)
    _PLAN_MEMO.clear()


def plan_cache_enabled() -> bool:
    return _PLAN_MEMO_ENABLED


def clear_plan_cache() -> None:
    _PLAN_MEMO.clear()


def plan_cache_size() -> int:
    return len(_PLAN_MEMO)


@dataclass(frozen=True)
class Stage:
    """One fused stage: a stencil application inside a single launch."""

    instance: StencilInstance
    index: int
    halo: Halo  # combined read halo of this stage
    expand: Halo  # extra region computed beyond the output tile
    is_last: bool

    @property
    def flops_per_point(self) -> int:
        return kernel_flops_per_point(self.instance)


def planned_instances(ir: ProgramIR, plan: KernelPlan) -> List[StencilInstance]:
    """The kernel instances covered by a plan, folding applied."""
    instances = [ir.kernel(name) for name in plan.kernel_names]
    if plan.fold_groups:
        instances = [apply_folding(k, plan.fold_groups)[0] for k in instances]
    return instances


def build_stages(ir: ProgramIR, plan: KernelPlan) -> List[Stage]:
    """Stage list of a launch, first-executed first.

    Iterative time tiling replicates the (single) instance ``time_tile``
    times; DAG fusion uses the instances in order.  Halos accumulate
    backwards: an earlier stage must compute a region expanded by the
    total halo of everything after it (overlapped tiling).

    Memoized per (IR, kernel set, time tile, folding) — the only plan
    fields the stage list reads — so every tile-size and unroll variant
    of one structural family shares the same Stage objects.
    """
    return list(
        _ir_memoized(
            "stages",
            ir,
            (plan.kernel_names, plan.time_tile, plan.fold_groups),
            lambda: _build_stages(ir, plan),
        )
    )


def _build_stages(ir: ProgramIR, plan: KernelPlan) -> List[Stage]:
    instances = planned_instances(ir, plan)
    if plan.time_tile > 1:
        if len(instances) != 1:
            raise ValueError("time tiling applies to a single kernel instance")
        instances = instances * plan.time_tile

    ndim = ir.ndim
    # A stage's effective halo is its *internal reach*: the combined read
    # halo plus any intra-kernel recompute expansion (a fused DAG whose
    # later statements consume earlier outputs at offsets reaches further
    # per application than its raw read halo).
    halos = [internal_reach(ir, inst) for inst in instances]
    stages: List[Stage] = []
    count = len(instances)
    for index, (inst, halo) in enumerate(zip(instances, halos)):
        expand = [[0, 0] for _ in range(ndim)]
        for later in range(index + 1, count):
            for axis in range(ndim):
                expand[axis][0] += halos[later][axis][0]
                expand[axis][1] += halos[later][axis][1]
        stages.append(
            Stage(
                instance=inst,
                index=index,
                halo=halo,
                expand=tuple((lo, hi) for lo, hi in expand),
                is_last=index == count - 1,
            )
        )
    return stages


# ---------------------------------------------------------------------------
# launch geometry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LaunchGeometry:
    """Block decomposition of the output domain for one plan."""

    domain: Tuple[int, ...]
    tile: Tuple[int, ...]  # output points per block per axis
    blocks_per_axis: Tuple[int, ...]
    blocks: int
    threads_per_block: int
    sweep_axis: Optional[int]  # streaming axis, None if not streaming
    sweep_length: int  # planes visited per block along the sweep axis


def launch_geometry(ir: ProgramIR, plan: KernelPlan) -> LaunchGeometry:
    """Block decomposition of a plan (memoized per IR + plan family)."""
    return _plan_memoized(
        "geometry", ir, plan, lambda: _launch_geometry(ir, plan)
    )


def _launch_geometry(ir: ProgramIR, plan: KernelPlan) -> LaunchGeometry:
    domain = ir.domain_shape()
    ndim = len(domain)
    tile: List[int] = []
    blocks_axis: List[int] = []
    sweep_axis: Optional[int] = None
    sweep_length = 1
    for axis in range(ndim):
        if plan.uses_streaming and axis == plan.stream_axis:
            sweep_axis = axis
            chunks = (
                plan.concurrent_chunks
                if plan.streaming == STREAM_CONCURRENT
                else 1
            )
            sweep_length = -(-domain[axis] // chunks)
            tile.append(sweep_length)
            blocks_axis.append(chunks)
        else:
            extent = plan.tile_extent(axis, ndim)
            tile.append(extent)
            blocks_axis.append(-(-domain[axis] // extent))
    blocks = 1
    for count in blocks_axis:
        blocks *= count

    threads = _threads_per_block(ir, plan)
    return LaunchGeometry(
        domain=domain,
        tile=tuple(tile),
        blocks_per_axis=tuple(blocks_axis),
        blocks=blocks,
        threads_per_block=threads,
        sweep_axis=sweep_axis,
        sweep_length=sweep_length,
    )


def _threads_per_block(ir: ProgramIR, plan: KernelPlan) -> int:
    """Thread count, adjusted for the load/compute perspective (§III-B3)."""
    ndim = ir.ndim
    threads = plan.block_threads()
    if plan.perspective == "output":
        return threads
    # Input and mixed perspectives enlarge the thread block by the halo
    # of the *first* stage (the loads it must cover).
    stages = build_stages(ir, plan)
    halo = stages[0].halo
    tiled = plan.tiled_axes(ndim)
    innermost = tiled[-1] if tiled else ndim - 1
    total = 1
    for axis in tiled:
        base = plan.block_on_axis(axis, ndim)
        lo, hi = halo[axis]
        if plan.perspective == "input":
            total *= base + lo + hi
        else:  # mixed: extend only the innermost (coalescing) axis
            total *= base + ((lo + hi) if axis == innermost else 0)
    return total


def points_computed(
    ir: ProgramIR, plan: KernelPlan, stage: Stage, geometry: LaunchGeometry
) -> int:
    """Grid points one block computes at ``stage`` (incl. redundancy)."""
    total = 1
    for axis, extent in enumerate(geometry.tile):
        if geometry.sweep_axis == axis:
            # The sweep covers the chunk plus the stage's expansion.
            lo, hi = stage.expand[axis]
            total *= extent + lo + hi
        else:
            lo, hi = stage.expand[axis]
            total *= extent + lo + hi
    return total


def read_footprint(
    ir: ProgramIR,
    plan: KernelPlan,
    stage: Stage,
    geometry: LaunchGeometry,
    array: str,
) -> int:
    """Elements of ``array`` one block reads at ``stage`` (unique).

    ``stage`` and ``geometry`` are derived from (ir, plan), so the result
    is memoized per (IR, plan family, stage index, array).
    """
    return _plan_memoized(
        "footprint",
        ir,
        plan,
        lambda: _read_footprint(ir, plan, stage, geometry, array),
        extra=(stage.index, array),
    )


def _read_footprint(
    ir: ProgramIR,
    plan: KernelPlan,
    stage: Stage,
    geometry: LaunchGeometry,
    array: str,
) -> int:
    halos = read_halos(ir, stage.instance)
    if array not in halos:
        return 0
    halo = halos[array]
    info = ir.array_map.get(array)
    total = 1
    for axis, extent in enumerate(geometry.tile):
        exp_lo, exp_hi = stage.expand[axis]
        h_lo, h_hi = halo[axis]
        span = extent + exp_lo + exp_hi + h_lo + h_hi
        if info is not None and info.ndim < ir.ndim:
            # Lower-rank arrays only span the axes they index; detect by
            # whether any access carries an offset on this axis.
            if not _array_indexes_axis(ir, stage.instance, array, axis):
                continue
        total *= min(span, geometry.domain[axis] + h_lo + h_hi)
    return total


def _array_indexes_axis(
    ir: ProgramIR, instance: StencilInstance, array: str, axis: int
) -> bool:
    for pattern in access_patterns(ir, instance):
        if pattern.array == array and pattern.axis_offsets[axis] is not None:
            return True
    return False


# ---------------------------------------------------------------------------
# buffer requirements under streaming (Listing 2 / Figure 1c)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BufferSpec:
    """Storage layout of one array inside a kernel.

    Under streaming, an order-k window of 2k+1 planes is live per array.
    Planes whose values are only read in the thread's own column (a
    "star" access pattern along the stream axis) can live in per-thread
    registers; planes read at cross offsets must be shared.
    """

    array: str
    storage: str  # effective storage class: shmem | register | gmem
    shm_planes: int  # planes buffered in shared memory
    reg_planes: int  # planes buffered in per-thread registers
    plane_elements: int  # elements of one shared plane (incl. halo)
    dtype: str = "double"

    @property
    def shm_bytes(self) -> int:
        return self.shm_planes * self.plane_elements * sizeof(self.dtype)


def stream_window(ir: ProgramIR, instance: StencilInstance, array: str,
                  stream_axis: int) -> Tuple[int, int]:
    """(lo, hi) extent of the array's read window along the stream axis."""
    halos = read_halos(ir, instance)
    if array not in halos:
        return (0, 0)
    return halos[array][stream_axis]


def is_star_along(
    ir: ProgramIR, instance: StencilInstance, array: str, stream_axis: int
) -> bool:
    """True when off-center planes are read only at the thread's column.

    An access with non-zero stream-axis offset *and* a non-zero offset on
    any other axis forces the off-center plane into shared memory (a
    register cannot hold a neighbour thread's value).
    """
    for pattern in access_patterns(ir, instance):
        if pattern.array != array or pattern.is_write:
            continue
        stream_offset = pattern.axis_offsets[stream_axis]
        if stream_offset in (None, 0):
            continue
        for axis, offset in enumerate(pattern.axis_offsets):
            if axis != stream_axis and offset not in (None, 0):
                return False
    return True


def buffer_requirements(
    ir: ProgramIR, plan: KernelPlan
) -> Dict[str, BufferSpec]:
    """Effective buffering of every read array under this plan.

    Honours the plan's placements (which include any user ``#assign``
    constraints folded in by resource assignment).  Streaming plans get
    the shm/register plane split of Listing 2; non-streaming shmem plans
    buffer the full input tile.  Memoized per (IR, plan family).
    """
    return dict(
        _plan_memoized(
            "buffers", ir, plan, lambda: _buffer_requirements(ir, plan)
        )
    )


def _buffer_requirements(
    ir: ProgramIR, plan: KernelPlan
) -> Dict[str, BufferSpec]:
    geometry = launch_geometry(ir, plan)
    stages = build_stages(ir, plan)
    ndim = ir.ndim
    specs: Dict[str, BufferSpec] = {}
    # The widest stage footprint governs the buffer shape.
    for stage in stages:
        halos = read_halos(ir, stage.instance)
        written_here = set(stage.instance.arrays_written())
        for array, halo in halos.items():
            if array in written_here:
                # Produced by this very kernel: staged on chip, accounted
                # by :func:`intra_staging_bytes`, never loaded from global.
                continue
            storage = plan.placement_of(array)
            dtype = (
                ir.array_map[array].dtype if array in ir.array_map else "double"
            )
            plane_elems = _plane_elements(ir, plan, stage, geometry, array)
            if storage == GMEM or storage == "constant":
                spec = BufferSpec(array, storage, 0, 0, plane_elems, dtype)
            elif plan.uses_streaming:
                lo, hi = halo[plan.stream_axis]
                window = lo + hi + 1
                star = is_star_along(ir, stage.instance, array, plan.stream_axis)
                if plan.retime:
                    # Retiming accumulates partial results as each input
                    # plane arrives: only the current plane is ever live
                    # in shared memory, regardless of the stream window
                    # (this is why retiming rescues box stencils like the
                    # 27pt smoother, Section VIII-G).
                    spec = BufferSpec(array, SHMEM, 1, 0, plane_elems, dtype)
                elif storage == REGISTER:
                    # Full window in registers (legal only for star arrays;
                    # resource assignment enforces this).
                    spec = BufferSpec(array, storage, 0, window, plane_elems, dtype)
                elif star:
                    spec = BufferSpec(
                        array, SHMEM, 1, window - 1, plane_elems, dtype
                    )
                else:
                    spec = BufferSpec(array, SHMEM, window, 0, plane_elems, dtype)
            else:
                if storage == REGISTER:
                    spec = BufferSpec(array, storage, 0, 1, plane_elems, dtype)
                else:
                    # Non-streaming shared memory: the full 3D input tile.
                    tile_planes = _tile_planes(ir, plan, stage, geometry, array)
                    spec = BufferSpec(
                        array, SHMEM, tile_planes, 0, plane_elems, dtype
                    )
            previous = specs.get(array)
            if previous is None or _spec_bytes(spec) > _spec_bytes(previous):
                specs[array] = spec
    return specs


def _spec_bytes(spec: BufferSpec) -> int:
    return spec.shm_bytes + spec.reg_planes


def _plane_elements(ir, plan, stage, geometry, array) -> int:
    """Elements of one buffered plane (tile + halo, depth axis excluded).

    The depth axis is the stream axis under streaming, else the
    outermost axis (whose extent :func:`_tile_planes` reports).
    """
    halos = read_halos(ir, stage.instance)
    halo = halos[array]
    depth_axis = plan.stream_axis if plan.uses_streaming else 0
    total = 1
    for axis in range(ir.ndim):
        if axis == depth_axis:
            continue
        exp_lo, exp_hi = stage.expand[axis]
        h_lo, h_hi = halo[axis]
        total *= geometry.tile[axis] + exp_lo + exp_hi + h_lo + h_hi
    return total


def _tile_planes(ir, plan, stage, geometry, array) -> int:
    """Stream-axis (or outermost) depth of a full-tile shared buffer."""
    halos = read_halos(ir, stage.instance)
    halo = halos[array]
    axis = plan.stream_axis if plan.uses_streaming else 0
    exp_lo, exp_hi = stage.expand[axis]
    h_lo, h_hi = halo[axis]
    return geometry.tile[axis] + exp_lo + exp_hi + h_lo + h_hi


@dataclass(frozen=True)
class IntermediateSpec:
    """Buffering of one inter-stage value inside a fused launch."""

    array: str
    stage_index: int  # producer stage
    shm_planes: int
    reg_planes: int
    plane_elements: int
    center_reads: int  # consumer reads served by the shared plane(s)
    total_reads: int  # consumer's distinct reads of this value
    dtype: str = "double"

    @property
    def shm_bytes(self) -> int:
        return self.shm_planes * self.plane_elements * sizeof(self.dtype)


def intermediate_specs(
    ir: ProgramIR, plan: KernelPlan
) -> Tuple[IntermediateSpec, ...]:
    """Buffering of values passed between fused stages.

    Under streaming, the consumer's stream-axis window of the value is
    live.  When the consumer's cross-plane reads are column-local (star
    pattern), only the centre plane needs shared memory and the rest sit
    in per-thread registers — the same Listing-2 split as for inputs.
    Retimed kernels accumulate in registers instead (no shared planes).
    Memoized per (IR, plan family).
    """
    return _plan_memoized(
        "inter_specs", ir, plan, lambda: _intermediate_specs(ir, plan)
    )


def _intermediate_specs(
    ir: ProgramIR, plan: KernelPlan
) -> Tuple[IntermediateSpec, ...]:
    stages = build_stages(ir, plan)
    if len(stages) <= 1:
        return ()
    geometry = launch_geometry(ir, plan)
    specs: List[IntermediateSpec] = []
    for stage, consumer in zip(stages[:-1], stages[1:]):
        # What the consumer reads from the producer's output.  For
        # iterative time tiling the producer's output array *becomes*
        # the consumer's input (ping-pong), so the consumer's halo is
        # looked up under the read array's name.
        produced = set(stage.instance.arrays_written())
        halos = read_halos(ir, consumer.instance)
        if plan.time_tile > 1:
            written, read = pingpong_pair(ir, stage.instance)
            produced = {read} if read in halos else set()
        for array in produced:
            if array not in halos:
                continue
            halo = halos[array]
            dtype = ir.array_map[array].dtype if array in ir.array_map else "double"
            plane = 1
            for axis in range(ir.ndim):
                if plan.uses_streaming and axis == plan.stream_axis:
                    continue
                exp_lo, exp_hi = consumer.expand[axis]
                h_lo, h_hi = halo[axis]
                plane *= geometry.tile[axis] + exp_lo + exp_hi + h_lo + h_hi
            distinct, center = _consumer_read_counts(
                ir, consumer.instance, array, plan
            )
            if plan.uses_streaming:
                lo, hi = halo[plan.stream_axis]
                window = lo + hi + 1
                if plan.retime:
                    # Finished planes still cross threads via one shared
                    # plane; the in-flight window lives in accumulators.
                    shm_planes, reg_planes = 1, 0
                elif is_star_along(ir, consumer.instance, array, plan.stream_axis):
                    shm_planes, reg_planes = 1, window - 1
                else:
                    shm_planes, reg_planes = window, 0
            else:
                exp_lo, exp_hi = consumer.expand[0]
                h_lo, h_hi = halo[0]
                depth = geometry.tile[0] + exp_lo + exp_hi + h_lo + h_hi
                shm_planes, reg_planes = (0, 0) if plan.retime else (depth, 0)
            specs.append(
                IntermediateSpec(
                    array=array,
                    stage_index=stage.index,
                    shm_planes=shm_planes,
                    reg_planes=reg_planes,
                    plane_elements=plane,
                    center_reads=center,
                    total_reads=distinct,
                    dtype=dtype,
                )
            )
    return tuple(specs)


def _consumer_read_counts(
    ir: ProgramIR, instance: StencilInstance, array: str, plan: KernelPlan
) -> Tuple[int, int]:
    """(distinct reads, centre-plane reads) of ``array`` by a consumer."""
    seen = set()
    center = 0
    for pattern in access_patterns(ir, instance):
        if pattern.array != array or pattern.is_write:
            continue
        if pattern.axis_offsets in seen:
            continue
        seen.add(pattern.axis_offsets)
        if plan.uses_streaming:
            if pattern.axis_offsets[plan.stream_axis] in (None, 0):
                center += 1
        else:
            center += 1
    return len(seen), center


def intermediate_buffer_bytes(ir: ProgramIR, plan: KernelPlan) -> int:
    """Shared-memory bytes for values passed between fused stages."""
    return sum(spec.shm_bytes for spec in intermediate_specs(ir, plan))


def distinct_read_offsets(ir: ProgramIR, instance: StencilInstance, array: str):
    """Distinct per-axis read offset vectors of ``array`` in a kernel.

    Memoized per (instance identity, array) — the simulator and register
    model ask for this thousands of times per tuning run.
    """

    def compute():
        seen: List[Tuple] = []
        for pattern in access_patterns(ir, instance):
            if pattern.array != array or pattern.is_write:
                continue
            if pattern.axis_offsets not in seen:
                seen.append(pattern.axis_offsets)
        return seen

    return list(memoized_kv("distinct_offsets", instance, array, compute))


def gmem_loads_per_point(
    ir: ProgramIR, plan: KernelPlan, instance: StencilInstance, array: str
) -> float:
    """Distinct global loads per computed point for a gmem array.

    Blocked unrolling lets one thread reuse overlapping neighbour loads
    across its unroll points: along an axis unrolled by ``u``, a set of
    offsets spanning ``s = max - min + 1`` costs ``min(u*n, s + u - 1)``
    loads for ``u`` points instead of ``u*n``.  The compiler only
    realizes this CSE along one axis at a time in practice (the paper's
    texture counters for complex kernels show near-zero cross-axis
    reuse), so the combined reduction is floored.

    Memoized per (instance, unroll configuration, array) — only the
    plan's unroll fields participate in the result.
    """
    return memoized_kv(
        "gmem_loads",
        instance,
        (plan.unroll, plan.unroll_blocked, array),
        lambda: _gmem_loads_per_point(ir, plan, instance, array),
    )


def _gmem_loads_per_point(
    ir: ProgramIR, plan: KernelPlan, instance: StencilInstance, array: str
) -> float:
    offsets = distinct_read_offsets(ir, instance, array)
    if not offsets:
        return 0.0
    loads = float(len(offsets))
    if not plan.unroll_blocked:
        return loads
    factor_product = 1.0
    for axis in range(ir.ndim):
        factor = plan.unroll_factor(axis)
        if factor <= 1:
            continue
        axis_offsets = sorted(
            {o[axis] for o in offsets if o[axis] is not None}
        )
        if len(axis_offsets) <= 1:
            continue
        span = axis_offsets[-1] - axis_offsets[0] + 1
        count = len(axis_offsets)
        merged = min(factor * count, span + factor - 1)
        factor_product *= merged / (factor * count)
    return loads * max(factor_product, 0.55)


def pingpong_pair(ir: ProgramIR, instance: StencilInstance) -> Tuple[str, str]:
    """(written, read) arrays swapped between iterations of a smoother.

    Iterative stencils follow the Jacobi convention: the output of one
    application becomes the input of the next.  The written array is the
    instance's ``copyout`` output when one exists (multi-statement
    kernels like denoise also produce auxiliary arrays), else its last
    output.  The read array is the first same-shaped full-rank array the
    instance reads without writing.
    """
    written_arrays = instance.arrays_written()
    written = written_arrays[-1]
    for candidate in written_arrays:
        if candidate in ir.copyout:
            written = candidate
            break
    target_shape = ir.array_map[written].shape
    for array in instance.arrays_read():
        info = ir.array_map.get(array)
        if (
            info is not None
            and info.shape == target_shape
            and array not in written_arrays
        ):
            return written, array
    raise ValueError(
        f"kernel {instance.name!r} has no ping-pong input matching "
        f"{written!r}"
    )


def intra_staging_bytes(ir: ProgramIR, plan: KernelPlan) -> int:
    """Shared memory for values produced and consumed *within* one
    kernel (fused-DAG temporaries): a stream window under streaming, the
    full expanded tile otherwise.  Memoized per (IR, plan family)."""
    return _plan_memoized(
        "intra_staging", ir, plan, lambda: _intra_staging_bytes(ir, plan)
    )


def _intra_staging_bytes(ir: ProgramIR, plan: KernelPlan) -> int:
    geometry = launch_geometry(ir, plan)
    total = 0
    for stage in build_stages(ir, plan):
        instance = stage.instance
        halos = read_halos(ir, instance)
        for array in instance.arrays_written():
            if array not in halos:
                continue
            halo = halos[array]
            dtype = (
                ir.array_map[array].dtype if array in ir.array_map else "double"
            )
            plane = 1
            depth_axis = plan.stream_axis if plan.uses_streaming else 0
            for axis in range(ir.ndim):
                if axis == depth_axis:
                    continue
                exp_lo, exp_hi = stage.expand[axis]
                h_lo, h_hi = halo[axis]
                plane *= geometry.tile[axis] + exp_lo + exp_hi + h_lo + h_hi
            if plan.uses_streaming:
                lo, hi = halo[plan.stream_axis]
                depth = lo + hi + 1
            else:
                exp_lo, exp_hi = stage.expand[0]
                h_lo, h_hi = halo[0]
                depth = geometry.tile[0] + exp_lo + exp_hi + h_lo + h_hi
            total += plane * depth * sizeof(dtype)
    return total


def shmem_bytes_per_block(ir: ProgramIR, plan: KernelPlan) -> int:
    """Total static shared memory one block of this plan allocates.

    Memoized per (IR, plan family) — shared memory does not depend on
    the register cap.
    """

    def compute():
        total = sum(
            spec.shm_bytes for spec in buffer_requirements(ir, plan).values()
        )
        total += intermediate_buffer_bytes(ir, plan)
        total += intra_staging_bytes(ir, plan)
        return total

    return _plan_memoized("shmem_bytes", ir, plan, compute)
