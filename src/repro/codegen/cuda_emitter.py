"""CUDA C source emission for kernel plans.

This renders a :class:`~repro.codegen.plan.KernelPlan` as compilable-
style CUDA C: a ``__global__`` kernel per launch plus a host wrapper that
performs the ``copyin``/``copyout`` transfers and the kernel launch.  The
generated structure follows the paper's Listing 2:

* block/thread index setup honouring the load/compute perspective;
* shared-memory buffer declarations (one plane for star arrays, a
  rotating window for box arrays, full tiles for non-streaming plans);
* register window declarations (``in_reg_m1``-style) for star planes;
* the streaming main loop with its two ``__syncthreads()`` phases,
  buffer rotation, and optional prefetch registers;
* guarded stores over the output tile;
* retimed kernels emit accumulator windows and homogenized terms;
* unrolling emits ``#pragma unroll`` loops with blocked work distribution.

CUDA uses x-fastest thread indexing: program axis ``ndim-1`` (the DSL's
innermost iterator) maps to ``threadIdx.x``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dsl.ast import ArrayAccess, BinOp, Call, Expr, Name, Num, UnaryOp
from ..ir.analysis import read_halos
from ..ir.decompose import split_accumulation
from ..ir.homogenize import expr_homogenization
from ..ir.stencil import ProgramIR, Statement, StencilInstance
from ..ir.types import DTYPE_CUDA
from .plan import GMEM, KernelPlan, REGISTER, SHMEM
from .tiling import (
    Stage,
    build_stages,
    buffer_requirements,
    intermediate_specs,
    launch_geometry,
    planned_instances,
)


@dataclass(frozen=True)
class GeneratedKernel:
    """Emitted CUDA for one launch."""

    name: str
    source: str
    plan: KernelPlan


def kernel_symbol(plan: KernelPlan) -> str:
    base = "_".join(n.replace(".", "_") for n in plan.kernel_names)
    if plan.time_tile > 1:
        base += f"_tt{plan.time_tile}"
    return f"{base}_kernel"


# ---------------------------------------------------------------------------
# expression rendering
# ---------------------------------------------------------------------------


class _ExprRenderer:
    """Renders IR expressions with plan-aware access substitution."""

    def __init__(
        self,
        ir: ProgramIR,
        plan: KernelPlan,
        buffers,
        stage: Stage,
        locals_seen: set,
        coord_names: Optional[Dict[int, str]] = None,
    ):
        self.ir = ir
        self.plan = plan
        self.buffers = buffers
        self.stage = stage
        self.locals_seen = locals_seen
        #: per-axis coordinate variable (defaults to the iterator name);
        #: unrolled loops shadow the base coordinate with ``j_u`` etc.
        self.coord_names = coord_names or {}

    def coord(self, axis: int) -> str:
        return self.coord_names.get(axis, self.ir.iterators[axis])

    def render(self, expr: Expr) -> str:
        if isinstance(expr, Num):
            if expr.is_int:
                return f"{int(expr.value)}.0"
            return repr(expr.value)
        if isinstance(expr, Name):
            return expr.id
        if isinstance(expr, UnaryOp):
            return f"(-{self.render(expr.operand)})"
        if isinstance(expr, BinOp):
            return (
                f"({self.render(expr.left)} {expr.op} "
                f"{self.render(expr.right)})"
            )
        if isinstance(expr, Call):
            args = ", ".join(self.render(a) for a in expr.args)
            return f"{expr.func}({args})"
        assert isinstance(expr, ArrayAccess)
        return self.render_access(expr)

    def render_access(self, access: ArrayAccess) -> str:
        ir, plan = self.ir, self.plan
        info = ir.array_map.get(access.name)
        spec = self.buffers.get(access.name)
        if info is None or spec is None or spec.storage == GMEM:
            return self._global_access(access)
        if not plan.uses_streaming:
            if spec.shm_planes > 0:
                return self._shared_tile_access(access)
            return self._global_access(access)
        stream_offset = self._stream_offset(access)
        if spec.storage == REGISTER or (
            spec.reg_planes > 0 and stream_offset != 0
        ):
            return _reg_name(access.name, stream_offset)
        if spec.shm_planes > 1:
            return self._shared_window_access(access, stream_offset)
        return self._shared_plane_access(access)

    def _stream_offset(self, access: ArrayAccess) -> int:
        iterator = self.ir.iterators[self.plan.stream_axis]
        for idx in access.indices:
            if idx.single_iterator() == iterator:
                return idx.const
        return 0

    def _global_access(self, access: ArrayAccess) -> str:
        subs = "".join(f"[{self._render_index(idx)}]" for idx in access.indices)
        return f"{access.name}{subs}"

    def _render_index(self, idx) -> str:
        iterator = idx.single_iterator()
        if iterator is not None and iterator in self.ir.iterators:
            name = self.coord(self.ir.axis_of(iterator))
            if idx.const > 0:
                return f"{name} + {idx.const}"
            if idx.const < 0:
                return f"{name} - {-idx.const}"
            return name
        return str(idx)

    def _local_coord(self, axis: int, offset: int) -> str:
        it = self.ir.iterators[axis]
        base = f"{self.coord(axis)} - {it}0"
        if offset > 0:
            return f"{base} + {offset}"
        if offset < 0:
            return f"{base} - {-offset}"
        return base

    def _plane_coords(self, access: ArrayAccess) -> str:
        parts = []
        for idx in access.indices:
            iterator = idx.single_iterator()
            if iterator is None:
                continue
            axis = self.ir.axis_of(iterator)
            if self.plan.uses_streaming and axis == self.plan.stream_axis:
                continue
            parts.append(f"[{self._local_coord(axis, idx.const)}]")
        return "".join(parts)

    def _shared_plane_access(self, access: ArrayAccess) -> str:
        return f"{access.name}_shm_c0{self._plane_coords(access)}"

    def _shared_window_access(self, access: ArrayAccess, offset: int) -> str:
        spec = self.buffers[access.name]
        window = spec.shm_planes
        return (
            f"{access.name}_shm[(kbuf + {offset % window + window}) % {window}]"
            f"{self._plane_coords(access)}"
        )

    def _shared_tile_access(self, access: ArrayAccess) -> str:
        parts = []
        for idx in access.indices:
            iterator = idx.single_iterator()
            if iterator is None:
                continue
            axis = self.ir.axis_of(iterator)
            parts.append(f"[{self._local_coord(axis, idx.const)}]")
        return f"{access.name}_shm{''.join(parts)}"


def _reg_name(array: str, stream_offset: int) -> str:
    if stream_offset == 0:
        return f"{array}_reg_c0"
    tag = f"p{stream_offset}" if stream_offset > 0 else f"m{-stream_offset}"
    return f"{array}_reg_{tag}"


# ---------------------------------------------------------------------------
# emitter
# ---------------------------------------------------------------------------


class CudaEmitter:
    """Emit CUDA C for one plan over one program."""

    def __init__(self, ir: ProgramIR, plan: KernelPlan):
        self.ir = ir
        self.plan = plan
        self.geometry = launch_geometry(ir, plan)
        self.stages = build_stages(ir, plan)
        self.buffers = buffer_requirements(ir, plan)
        self.lines: List[str] = []
        self.indent = 0

    # -- low-level helpers -----------------------------------------------------

    def emit(self, text: str = "") -> None:
        self.lines.append(("  " * self.indent + text) if text else "")

    def block_open(self, header: str) -> None:
        self.emit(header + " {")
        self.indent += 1

    def block_close(self, footer: str = "}") -> None:
        self.indent -= 1
        self.emit(footer)

    # -- top level ---------------------------------------------------------------

    def generate(self) -> GeneratedKernel:
        self._emit_header()
        self._emit_kernel()
        self._emit_host_wrapper()
        return GeneratedKernel(
            name=kernel_symbol(self.plan),
            source="\n".join(self.lines) + "\n",
            plan=self.plan,
        )

    def _emit_header(self) -> None:
        domain = self.geometry.domain
        self.emit("// Generated by the ARTEMIS-reproduction stencil compiler.")
        self.emit(f"// plan: {self.plan.describe()}")
        self.emit("#include <cuda_runtime.h>")
        self.emit("#include <math.h>")
        for axis, extent in enumerate(domain):
            self.emit(f"#define DIM{axis} {extent}")
        self.emit()

    # -- kernel ------------------------------------------------------------------

    def _emit_kernel(self) -> None:
        params = self._kernel_params()
        self.block_open(
            f"__global__ void {kernel_symbol(self.plan)}({', '.join(params)})"
        )
        self._emit_index_setup()
        self._emit_buffer_decls()
        if self.plan.uses_streaming:
            self._emit_streaming_body()
        else:
            self._emit_tiled_body()
        self.block_close()
        self.emit()

    def _kernel_params(self) -> List[str]:
        seen: List[str] = []
        params: List[str] = []
        for stage in self.stages:
            for array in stage.instance.io_arrays():
                if array in seen or array not in self.ir.array_map:
                    continue
                seen.append(array)
                info = self.ir.array_map[array]
                ctype = DTYPE_CUDA[info.dtype]
                dims = "".join(f"[{e}]" for e in info.shape[1:])
                qualifier = (
                    "const " if array not in self._written_arrays() else ""
                )
                params.append(f"{qualifier}{ctype} {array}[]{dims}" if dims
                              else f"{qualifier}{ctype} *{array}")
        for name, dtype in self.ir.scalars:
            if self._scalar_used(name):
                params.append(f"{DTYPE_CUDA[dtype]} {name}")
        return params

    def _written_arrays(self) -> set:
        written = set()
        for stage in self.stages:
            written.update(stage.instance.arrays_written())
        return written

    def _scalar_used(self, name: str) -> bool:
        from ..dsl.ast import scalar_names

        for stage in self.stages:
            for stmt in stage.instance.statements:
                if name in set(scalar_names(stmt.rhs)):
                    return True
        return False

    def _emit_index_setup(self) -> None:
        ir, plan = self.ir, self.plan
        ndim = ir.ndim
        tiled = plan.tiled_axes(ndim)
        # CUDA x maps to the innermost tiled axis.
        cuda_dims = ["x", "y", "z"]
        for position, axis in enumerate(reversed(tiled)):
            it = ir.iterators[axis]
            dim = cuda_dims[position]
            extent = plan.tile_extent(axis, ndim)
            self.emit(f"int {it}0 = blockIdx.{dim} * {extent};")
            unroll = plan.unroll_factor(axis)
            if unroll > 1 and plan.unroll_blocked:
                self.emit(
                    f"int {it} = {it}0 + threadIdx.{dim} * {unroll};"
                    f"  // blocked distribution"
                )
            else:
                self.emit(f"int {it} = {it}0 + threadIdx.{dim};")
        if plan.uses_streaming:
            it = ir.iterators[plan.stream_axis]
            if plan.streaming == "concurrent":
                self.emit(
                    f"int {it}_chunk = DIM{plan.stream_axis} / "
                    f"{plan.concurrent_chunks};"
                )
                dim = cuda_dims[len(tiled)] if len(tiled) < 3 else "z"
                self.emit(
                    f"int {it}_begin = blockIdx.{dim} * {it}_chunk;"
                    "  // concurrent streaming"
                )
            else:
                self.emit(f"int {it}_begin = 0;")
        self.emit()

    def _emit_buffer_decls(self) -> None:
        plan = self.plan
        for array, spec in sorted(self.buffers.items()):
            ctype = DTYPE_CUDA[spec.dtype]
            if spec.shm_planes > 0:
                plane = self._plane_decl_dims(array)
                if plan.uses_streaming and spec.shm_planes == 1:
                    self.emit(f"__shared__ {ctype} {array}_shm_c0{plane};")
                elif plan.uses_streaming:
                    self.emit(
                        f"__shared__ {ctype} {array}_shm[{spec.shm_planes}]"
                        f"{plane};"
                    )
                else:
                    self.emit(
                        f"__shared__ {ctype} {array}_shm"
                        f"[{spec.shm_planes}]{plane};"
                    )
            for offset in self._register_offsets(array, spec):
                self.emit(f"{ctype} {_reg_name(array, offset)};")
        for inter in intermediate_specs(self.ir, self.plan):
            ctype = DTYPE_CUDA[inter.dtype]
            if inter.shm_planes > 0:
                self.emit(
                    f"__shared__ {ctype} {inter.array}_stage{inter.stage_index}"
                    f"_shm[{inter.shm_planes}][{inter.plane_elements}];"
                )
        if self.plan.retime:
            self._emit_accumulator_decls()
        if self.plan.prefetch:
            for array, spec in sorted(self.buffers.items()):
                if spec.shm_planes > 0 or spec.reg_planes > 0:
                    ctype = DTYPE_CUDA[spec.dtype]
                    self.emit(f"{ctype} {array}_pref;  // prefetch register")
        self.emit("int kbuf = 0;")
        self.emit()

    def _plane_decl_dims(self, array: str) -> str:
        ir, plan = self.ir, self.plan
        halos = {}
        for stage in self.stages:
            stage_halos = read_halos(ir, stage.instance)
            if array in stage_halos:
                halos = stage_halos[array]
                break
        dims = []
        depth_axis = plan.stream_axis if plan.uses_streaming else 0
        for axis in range(ir.ndim):
            if axis == depth_axis:
                continue
            extent = plan.tile_extent(axis, ir.ndim)
            lo, hi = halos[axis] if halos else (0, 0)
            dims.append(f"[{extent + lo + hi}]")
        return "".join(dims)

    def _register_offsets(self, array: str, spec) -> List[int]:
        if spec.reg_planes == 0 or not self.plan.uses_streaming:
            return []
        offsets = set()
        iterator = self.ir.iterators[self.plan.stream_axis]
        for stage in self.stages:
            for stmt in stage.instance.statements:
                from ..dsl.ast import array_accesses

                for access in array_accesses(stmt.rhs):
                    if access.name != array:
                        continue
                    for idx in access.indices:
                        if idx.single_iterator() == iterator and idx.const != 0:
                            offsets.add(idx.const)
                        elif (
                            idx.single_iterator() == iterator
                            and spec.storage == REGISTER
                        ):
                            offsets.add(0)
        if spec.storage == REGISTER:
            offsets.add(0)
        return sorted(offsets)

    def _emit_accumulator_decls(self) -> None:
        for stage in self.stages:
            window = self._retime_window(stage)
            for output in stage.instance.arrays_written():
                ctype = DTYPE_CUDA[
                    self.ir.array_map[output].dtype
                    if output in self.ir.array_map
                    else "double"
                ]
                self.emit(
                    f"{ctype} {output}_acc{stage.index}[{window}] = {{0.0}};"
                    "  // retimed partial sums"
                )

    def _retime_window(self, stage: Stage) -> int:
        lo, hi = stage.halo[self.plan.stream_axis]
        return lo + hi + 1

    # -- streaming body -----------------------------------------------------------

    def _emit_streaming_body(self) -> None:
        ir, plan = self.ir, self.plan
        it = ir.iterators[plan.stream_axis]
        sweep = self.geometry.sweep_length
        self._emit_preload()
        end = (
            f"{it}_begin + {sweep}"
            if plan.streaming == "concurrent"
            else f"DIM{plan.stream_axis}"
        )
        self.block_open(f"for (int {it} = {it}_begin; {it} < {end}; ++{it})")
        self.emit("__syncthreads();")
        if plan.prefetch:
            self._emit_prefetch_loads()
        for stage in self.stages:
            self._emit_stage_compute(stage)
        self.emit("__syncthreads();")
        self._emit_rotation()
        self.emit("kbuf = (kbuf + 1) % 4;")
        self.block_close()

    def _emit_preload(self) -> None:
        self.emit("// preload the initial stream window")
        for array, spec in sorted(self.buffers.items()):
            if spec.shm_planes == 0 and spec.reg_planes == 0:
                continue
            if spec.shm_planes > 0:
                self._emit_cooperative_fill(array, spec)
            for offset in self._register_offsets(array, spec):
                self.emit(
                    f"{_reg_name(array, offset)} = "
                    f"{self._global_plane_read(array, offset)};"
                )
        self.emit()

    def _emit_cooperative_fill(self, array: str, spec) -> None:
        """Strided cooperative fill of a shared plane/window incl. halo."""
        ir, plan = self.ir, self.plan
        halos = {}
        for stage in self.stages:
            stage_halos = read_halos(ir, stage.instance)
            if array in stage_halos:
                halos = stage_halos[array]
                break
        tiled = [
            axis
            for axis in range(ir.ndim)
            if not (plan.uses_streaming and axis == plan.stream_axis)
        ][-2:]
        loops = []
        cuda_dims = {tiled[-1]: "x"}
        if len(tiled) > 1:
            cuda_dims[tiled[0]] = "y"
        planes = range(spec.shm_planes)
        for plane in planes:
            target = (
                f"{array}_shm_c0"
                if spec.shm_planes == 1
                else f"{array}_shm[{plane}]"
            )
            idx_exprs = []
            src_coords = [""] * ir.ndim
            for axis in range(ir.ndim):
                it = ir.iterators[axis]
                if plan.uses_streaming and axis == plan.stream_axis:
                    lo, _hi = halos[axis] if halos else (0, 0)
                    src_coords[axis] = (
                        f"[max(0, {it}_begin + {plane - (halos[axis][0] if halos else 0)})]"
                        if spec.shm_planes > 1
                        else f"[{it}_begin]"
                    )
                    continue
                lo, hi = halos[axis] if halos else (0, 0)
                extent = plan.tile_extent(axis, ir.ndim) + lo + hi
                dim = cuda_dims.get(axis, "x")
                loops.append(
                    f"for (int f{it} = threadIdx.{dim}; f{it} < {extent}; "
                    f"f{it} += blockDim.{dim})"
                )
                idx_exprs.append(f"[f{it}]")
                src_coords[axis] = (
                    f"[min(DIM{axis} - 1, max(0, {it}0 + f{it} - {lo}))]"
                )
            for loop in loops:
                self.block_open(loop)
            self.emit(
                f"{target}{''.join(idx_exprs)} = "
                f"{array}{''.join(src_coords)};"
            )
            for _ in loops:
                self.block_close()
            loops = []

    def _global_plane_read(self, array: str, stream_offset: int) -> str:
        ir, plan = self.ir, self.plan
        coords = []
        for axis in range(ir.ndim):
            it = ir.iterators[axis]
            if axis == plan.stream_axis:
                base = f"{it}_begin"
                if stream_offset:
                    sign = "+" if stream_offset > 0 else "-"
                    coords.append(
                        f"[min(DIM{axis} - 1, max(0, {base} {sign} "
                        f"{abs(stream_offset)}))]"
                    )
                else:
                    coords.append(f"[{base}]")
            else:
                coords.append(f"[{it}]")
        return f"{array}{''.join(coords)}"

    def _emit_prefetch_loads(self) -> None:
        self.emit("// prefetch next plane concurrently with compute")
        it = self.ir.iterators[self.plan.stream_axis]
        for array, spec in sorted(self.buffers.items()):
            if spec.shm_planes == 0 and spec.reg_planes == 0:
                continue
            lo, hi = (0, 0)
            halos = read_halos(self.ir, self.stages[0].instance)
            if array in halos:
                lo, hi = halos[array][self.plan.stream_axis]
            self.emit(
                f"{array}_pref = {array}"
                + self._pref_coords(array, hi + 1)
                + ";"
            )

    def _pref_coords(self, array: str, ahead: int) -> str:
        ir, plan = self.ir, self.plan
        coords = []
        for axis in range(ir.ndim):
            it = ir.iterators[axis]
            if axis == plan.stream_axis:
                coords.append(f"[min(DIM{axis} - 1, {it} + {ahead})]")
            else:
                coords.append(f"[{it}]")
        return "".join(coords)

    def _emit_stage_compute(self, stage: Stage) -> None:
        guard = self._guard_condition(stage)
        self.block_open(f"if ({guard})")
        unroll_axes = [
            axis
            for axis in range(self.ir.ndim)
            if self.plan.unroll_factor(axis) > 1
            and axis != self.plan.stream_axis
        ]
        coord_names: Dict[int, str] = {}
        for axis in unroll_axes:
            it = self.ir.iterators[axis]
            factor = self.plan.unroll_factor(axis)
            self.emit(f"#pragma unroll")
            self.block_open(
                f"for (int {it}u = 0; {it}u < {factor}; ++{it}u)"
            )
            self.emit(f"int {it}_u = {it} + {it}u;")
            coord_names[axis] = f"{it}_u"
        renderer = _ExprRenderer(
            self.ir, self.plan, self.buffers, stage, set(), coord_names
        )
        if self.plan.retime:
            self._emit_retimed_statements(stage, renderer)
        else:
            self._emit_plain_statements(stage, renderer)
        for _ in unroll_axes:
            self.block_close()
        self.block_close()

    def _emit_plain_statements(self, stage: Stage, renderer) -> None:
        for stmt in stage.instance.statements:
            if stmt.is_local:
                ctype = DTYPE_CUDA.get(stmt.dtype, "double")
                self.emit(
                    f"{ctype} {stmt.target} = {renderer.render(stmt.rhs)};"
                )
            else:
                lhs = self._store_target(stage, stmt, renderer)
                op = "+=" if stmt.op == "+=" else "="
                self.emit(f"{lhs} {op} {renderer.render(stmt.rhs)};")

    def _emit_retimed_statements(self, stage: Stage, renderer) -> None:
        it = self.ir.iterators[self.plan.stream_axis]
        window = self._retime_window(stage)
        self.emit(f"// retimed accumulation (window {window})")
        for stmt in stage.instance.statements:
            if stmt.is_local:
                ctype = DTYPE_CUDA.get(stmt.dtype, "double")
                self.emit(
                    f"{ctype} {stmt.target} = {renderer.render(stmt.rhs)};"
                )
                continue
            for sign, term in split_accumulation(stmt.rhs, distribute=True):
                result = expr_homogenization(
                    term, it
                )
                shifted = result.offset
                slot = f"({it} + {window} - {shifted % window}) % {window}"
                rendered = renderer.render(term)
                prefix = "-" if sign < 0 else ""
                self.emit(
                    f"{stmt.target}_acc{stage.index}[{slot}] += "
                    f"{prefix}{rendered};"
                )
            self.emit(
                f"{self._store_target(stage, stmt, renderer)} = "
                f"{stmt.target}_acc{stage.index}[{it} % {window}];"
                "  // completed plane"
            )
            self.emit(
                f"{stmt.target}_acc{stage.index}[{it} % {window}] = 0.0;"
            )

    def _store_target(self, stage: Stage, stmt: Statement, renderer=None) -> str:
        assert not stmt.is_local
        access = stmt.lhs
        assert isinstance(access, ArrayAccess)
        if stage.is_last:
            if renderer is not None:
                subs = "".join(
                    f"[{renderer._render_index(idx)}]" for idx in access.indices
                )
            else:
                subs = "".join(f"[{idx}]" for idx in access.indices)
            return f"{stmt.target}{subs}"
        # Intermediate stage: store into the staging buffer.
        return (
            f"{stmt.target}_stage{stage.index}_shm[kbuf]"
            f"[threadIdx.y * blockDim.x + threadIdx.x]"
        )

    def _guard_condition(self, stage: Stage) -> str:
        ir, plan = self.ir, self.plan
        clauses: List[str] = []
        for axis in range(ir.ndim):
            it = ir.iterators[axis]
            lo, hi = stage.halo[axis]
            exp_lo, exp_hi = stage.expand[axis]
            if plan.uses_streaming and axis == plan.stream_axis:
                if lo:
                    clauses.append(f"{it} >= {lo}")
                if hi:
                    clauses.append(f"{it} <= DIM{axis} - {1 + hi}")
                continue
            low = max(lo, 0)
            clauses.append(
                f"{it} >= {it}0 - {exp_lo} + {low}"
                if exp_lo
                else f"{it} >= {low}"
            )
            tile = plan.tile_extent(axis, ir.ndim)
            clauses.append(
                f"{it} <= min({it}0 + {tile + exp_hi - 1}, DIM{axis} - {1 + hi})"
            )
        return " && ".join(clauses) if clauses else "1"

    def _emit_rotation(self) -> None:
        self.emit("// rotate the stream window (Listing 2 shift phase)")
        for array, spec in sorted(self.buffers.items()):
            if spec.reg_planes == 0 and spec.shm_planes <= 1 and spec.storage != SHMEM:
                continue
            offsets = self._register_offsets(array, spec)
            if spec.shm_planes == 1 and offsets:
                below = [o for o in offsets if o < 0]
                above = [o for o in offsets if o > 0]
                for offset in sorted(below):
                    src = (
                        f"{array}_shm_c0{self._center_coords(array)}"
                        if offset == -1
                        else _reg_name(array, offset + 1)
                    )
                    self.emit(f"{_reg_name(array, offset)} = {src};")
                if above:
                    self.emit(
                        f"{array}_shm_c0{self._center_coords(array)} = "
                        f"{_reg_name(array, min(above))};"
                    )
                    for offset in sorted(above)[:-1]:
                        self.emit(
                            f"{_reg_name(array, offset)} = "
                            f"{_reg_name(array, offset + 1)};"
                        )
                    top = max(above)
                    load = (
                        f"{array}_pref"
                        if self.plan.prefetch
                        else self._next_plane_load(array, top + 1)
                    )
                    self.emit(f"{_reg_name(array, top)} = {load};")
            elif spec.shm_planes > 1:
                self.emit(
                    f"// window of {array} advances via kbuf modular index"
                )
                load = (
                    f"{array}_pref"
                    if self.plan.prefetch
                    else self._next_plane_load(array, spec.shm_planes // 2 + 1)
                )
                self.emit(
                    f"{array}_shm[(kbuf + {spec.shm_planes - 1}) % "
                    f"{spec.shm_planes}]{self._center_coords(array)} = {load};"
                )

    def _center_coords(self, array: str) -> str:
        ir, plan = self.ir, self.plan
        parts = []
        for axis in range(ir.ndim):
            if plan.uses_streaming and axis == plan.stream_axis:
                continue
            it = ir.iterators[axis]
            parts.append(f"[{it} - {it}0]")
        return "".join(parts)

    def _next_plane_load(self, array: str, ahead: int) -> str:
        ir, plan = self.ir, self.plan
        coords = []
        for axis in range(ir.ndim):
            it = ir.iterators[axis]
            if axis == plan.stream_axis:
                coords.append(f"[min(DIM{axis} - 1, {it} + {ahead})]")
            else:
                coords.append(f"[{it}]")
        return f"{array}{''.join(coords)}"

    # -- non-streaming body --------------------------------------------------------

    def _emit_tiled_body(self) -> None:
        self.emit("// 3-D tiled (non-streaming) body")
        for array, spec in sorted(self.buffers.items()):
            if spec.shm_planes > 0:
                self.emit(f"// cooperative fill of {array}_shm tile")
        if any(s.shm_planes for s in self.buffers.values()):
            self.emit("__syncthreads();")
        for stage in self.stages:
            self._emit_stage_compute(stage)

    # -- host wrapper ---------------------------------------------------------------

    def _emit_host_wrapper(self) -> None:
        ir, plan = self.ir, self.plan
        geometry = self.geometry
        params = []
        for info in ir.arrays:
            ctype = DTYPE_CUDA[info.dtype]
            params.append(f"{ctype} *h_{info.name}")
        for name, dtype in ir.scalars:
            params.append(f"{DTYPE_CUDA[dtype]} {name}")
        symbol = kernel_symbol(plan)
        self.block_open(f"void launch_{symbol}({', '.join(params)})")
        for name in ir.copyin:
            if name in ir.array_map:
                info = ir.array_map[name]
                self.emit(
                    f"cudaMemcpy(d_{name}, h_{name}, "
                    f"{info.elements} * sizeof({DTYPE_CUDA[info.dtype]}), "
                    "cudaMemcpyHostToDevice);"
                )
        tiled = plan.tiled_axes(ir.ndim)
        dims = []
        for axis in reversed(tiled):
            dims.append(str(plan.block_on_axis(axis, ir.ndim)))
        self.emit(f"dim3 block({', '.join(dims)});")
        grid = []
        for axis in reversed(tiled):
            grid.append(str(geometry.blocks_per_axis[axis]))
        if plan.streaming == "concurrent":
            grid.append(str(plan.concurrent_chunks))
        self.emit(f"dim3 grid({', '.join(grid)});")
        args = []
        seen: List[str] = []
        for stage in self.stages:
            for array in stage.instance.io_arrays():
                if array in seen or array not in ir.array_map:
                    continue
                seen.append(array)
                args.append(f"d_{array}")
        for name, _dtype in ir.scalars:
            if self._scalar_used(name):
                args.append(name)
        self.emit(f"{symbol}<<<grid, block>>>({', '.join(args)});")
        for name in ir.copyout:
            if name in ir.array_map:
                info = ir.array_map[name]
                self.emit(
                    f"cudaMemcpy(h_{name}, d_{name}, "
                    f"{info.elements} * sizeof({DTYPE_CUDA[info.dtype]}), "
                    "cudaMemcpyDeviceToHost);"
                )
        self.block_close()


def emit_cuda(ir: ProgramIR, plan: KernelPlan) -> GeneratedKernel:
    """Render one plan as CUDA C source."""
    return CudaEmitter(ir, plan).generate()
