"""ARTEMIS reproduction: profiling-driven GPU stencil code generation.

Public API highlights::

    from repro import parse, build_ir, optimize, simulate, P100

    ir = build_ir(parse(dsl_text))        # frontend + IR
    outcome = optimize(ir)                # end-to-end ARTEMIS flow (§VII)
    print(outcome.tflops, outcome.variant)

    from repro.codegen import emit_cuda   # CUDA source for any plan
    from repro.suite import load_ir       # the 11 paper benchmarks
"""

from .codegen import (
    GeneratedProgram,
    KernelPlan,
    ProgramPlan,
    emit_cuda,
    generate_baseline,
    lower,
    realize,
)
from .dsl import parse
from .gpu import DeviceSpec, P100, V100, SimulationResult, simulate
from .gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_plan,
    execute_program_plan,
    execute_reference,
)
from .ir import ProgramIR, build_ir, characteristics
from .pipeline import OptimizationOutcome, format_report, optimize
from .profiling import advise, classify_result, profile
from .tuning import deep_tune, fusion_schedule, tune_kernel

__version__ = "1.0.0"

__all__ = [
    "DeviceSpec",
    "GeneratedProgram",
    "KernelPlan",
    "OptimizationOutcome",
    "P100",
    "ProgramIR",
    "ProgramPlan",
    "SimulationResult",
    "V100",
    "__version__",
    "advise",
    "allocate_inputs",
    "build_ir",
    "characteristics",
    "classify_result",
    "deep_tune",
    "default_scalars",
    "emit_cuda",
    "execute_plan",
    "execute_program_plan",
    "execute_reference",
    "format_report",
    "fusion_schedule",
    "generate_baseline",
    "lower",
    "optimize",
    "parse",
    "profile",
    "realize",
    "simulate",
    "tune_kernel",
]
