"""Structured observability for the ARTEMIS pipeline.

ARTEMIS's premise is that optimization decisions must be driven by
measured counters rather than guesswork; this package applies the same
standard to the pipeline itself.  Three pieces:

* :mod:`~repro.obs.tracer` — hierarchical, thread-safe span tracing
  (where does wall time go across parse → analysis → planning → tuning
  → simulation?), zero-cost while disabled;
* :mod:`~repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms that the evaluation engine, simulator and
  tuners feed;
* :mod:`~repro.obs.export` — chrome://tracing and flat-JSON export,
  multi-process trace stitching for distributed runs, plus the
  per-phase aggregation behind the report's timing table;
* :mod:`~repro.obs.live` — periodic atomic metric/span snapshots per
  process, merged across a distributed run's workers;
* :mod:`~repro.obs.prom` — Prometheus text exposition and the
  ``/metrics`` + ``/healthz`` HTTP endpoint.

Surfaced on the CLI as ``--trace out.json`` / ``--metrics`` /
``--metrics-port`` on the ``optimize``, ``deep-tune`` and ``profile``
subcommands, and as ``repro top`` for live distributed-run views.  See
``docs/observability.md``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    counter,
    gauge,
    get_metrics,
    histogram,
    metrics_enabled,
)
from .tracer import (
    Span,
    Tracer,
    configure_tracing,
    get_tracer,
    span,
    traced,
    tracing_enabled,
)
from .export import (
    PhaseTotal,
    aggregate_phases,
    chrome_trace,
    flat_json,
    stitch_chrome_traces,
    stitch_run_trace,
    write_trace,
)
from .live import (
    SnapshotFlusher,
    build_snapshot,
    load_snapshots,
    merge_snapshots,
    publish_stats_dict,
    write_snapshot,
)
from .prom import MetricsHTTPServer, prometheus_name, prometheus_text
from .search import SearchLog, log_context, read_events

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "PhaseTotal",
    "SearchLog",
    "SnapshotFlusher",
    "Span",
    "Tracer",
    "aggregate_phases",
    "build_snapshot",
    "chrome_trace",
    "configure_metrics",
    "configure_tracing",
    "counter",
    "flat_json",
    "gauge",
    "get_metrics",
    "get_tracer",
    "histogram",
    "load_snapshots",
    "log_context",
    "merge_snapshots",
    "metrics_enabled",
    "prometheus_name",
    "prometheus_text",
    "publish_stats_dict",
    "read_events",
    "span",
    "stitch_chrome_traces",
    "stitch_run_trace",
    "traced",
    "tracing_enabled",
    "write_snapshot",
    "write_trace",
]


def observability_enabled() -> bool:
    """True when either tracing or metrics collection is active."""
    return tracing_enabled() or metrics_enabled()
