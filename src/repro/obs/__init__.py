"""Structured observability for the ARTEMIS pipeline.

ARTEMIS's premise is that optimization decisions must be driven by
measured counters rather than guesswork; this package applies the same
standard to the pipeline itself.  Three pieces:

* :mod:`~repro.obs.tracer` — hierarchical, thread-safe span tracing
  (where does wall time go across parse → analysis → planning → tuning
  → simulation?), zero-cost while disabled;
* :mod:`~repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms that the evaluation engine, simulator and
  tuners feed;
* :mod:`~repro.obs.export` — chrome://tracing and flat-JSON export,
  plus the per-phase aggregation behind the report's timing table.

Surfaced on the CLI as ``--trace out.json`` / ``--metrics`` on the
``optimize``, ``deep-tune`` and ``profile`` subcommands.  See
``docs/observability.md``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    counter,
    gauge,
    get_metrics,
    histogram,
    metrics_enabled,
)
from .tracer import (
    Span,
    Tracer,
    configure_tracing,
    get_tracer,
    span,
    traced,
    tracing_enabled,
)
from .export import (
    PhaseTotal,
    aggregate_phases,
    chrome_trace,
    flat_json,
    write_trace,
)
from .search import SearchLog, log_context, read_events

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTotal",
    "SearchLog",
    "Span",
    "Tracer",
    "aggregate_phases",
    "chrome_trace",
    "configure_metrics",
    "configure_tracing",
    "counter",
    "flat_json",
    "gauge",
    "get_metrics",
    "get_tracer",
    "histogram",
    "log_context",
    "metrics_enabled",
    "read_events",
    "span",
    "traced",
    "tracing_enabled",
    "write_trace",
]


def observability_enabled() -> bool:
    """True when either tracing or metrics collection is active."""
    return tracing_enabled() or metrics_enabled()
