"""Candidate-level search telemetry for the tuning engines.

ARTEMIS's pitch is *profiling-driven* optimization: every fusion,
fission and tiling decision is justified by the analytical model's
counters.  The span/metrics layers say where wall time went; this module
records **what the search actually did** — one event per candidate the
evaluation engine priced, with the model's full prediction attached —
so a user can ask "which candidates were considered, why were the losers
pruned, and why did the winner win?" and get a machine-readable answer.

The log is a JSONL stream (one self-contained JSON object per line):

* a ``header`` record carrying the schema version and the device's
  roofline parameters (peak GFLOPS, per-level bandwidths and ridge
  points — everything a renderer needs to draw the roofline);
* one ``candidate`` record per evaluation-engine request — plan
  fingerprint + config summary, the cache/screen/infeasibility
  disposition with its reason, and (when the model ran or the memo
  cache answered) the predicted time, occupancy, counter snapshot and
  roofline bottleneck class;
* ``prune`` records for candidates the incremental escalation resolved
  without ever entering the model (infeasible at validation, or
  spilling even at the top register level);
* ``retry`` / ``timeout`` / ``skip`` / ``degraded`` / ``failure``
  markers mirroring the resilience engine's fault handling;
* ``replay`` records for candidates served from a checkpoint journal;
* ``advice`` / ``fission`` / ``winner`` records from the pipeline (which
  advisor rules fired, which fission variants were generated, which
  plans won);
* ``phase`` / ``summary`` footer records (per-phase timing aggregates
  and the final :class:`~repro.tuning.evaluator.EvalStats`).

Accounting invariant (pinned by ``tests/obs/test_search.py``): the
number of ``candidate`` records equals ``EvalStats.requests`` exactly —
cache hits, screened, infeasible, degraded re-runs and injected faults
included — so the log never under- or over-reports what the engine did.

Writing is crash-safe: events accumulate in memory and the whole stream
is serialized through :func:`repro.resilience.atomic_write_text` on
``flush()`` (called automatically every ``flush_every`` events and on
``close()``), so a crash can truncate nothing — the previous complete
snapshot stays on disk.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager, nullcontext
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..resilience.atomic import atomic_write_text
from ..resilience.errors import UsageError

__all__ = [
    "SEARCH_LOG_VERSION",
    "SearchLog",
    "log_context",
    "read_events",
]

SEARCH_LOG_VERSION = 1

#: Candidate dispositions (the ``disposition`` field of ``candidate``
#: records).  ``simulated`` went to the full model; ``cache-hit`` /
#: ``cache-hit-infeasible`` were answered by the memo cache; ``screened``
#: was rejected by the occupancy prescreen; ``infeasible`` failed
#: validation or simulation; ``error`` is an unexpected (injected or
#: real) fault, resolved by the resilience policy.
DISPOSITIONS = (
    "simulated",
    "cache-hit",
    "cache-hit-infeasible",
    "screened",
    "infeasible",
    "error",
)


def _config_summary(plan) -> Dict[str, Any]:
    """Compact, human-scannable summary of a plan's decisions."""
    config: Dict[str, Any] = {
        "kernels": list(plan.kernel_names),
        "block": list(plan.block),
        "registers": plan.max_registers,
    }
    if plan.time_tile > 1:
        config["time_tile"] = plan.time_tile
    if plan.uses_streaming:
        config["streaming"] = plan.streaming
        config["stream_axis"] = plan.stream_axis
        if plan.concurrent_chunks > 1:
            config["chunks"] = plan.concurrent_chunks
    if plan.unroll and any(u > 1 for u in plan.unroll):
        config["unroll"] = list(plan.unroll)
    if plan.prefetch:
        config["prefetch"] = True
    if plan.retime:
        config["retime"] = True
    if plan.fold_groups:
        config["folds"] = len(plan.fold_groups)
    if plan.perspective != "output":
        config["perspective"] = plan.perspective
    shm = [a for a, s in plan.placements if s == "shmem"]
    if shm:
        config["shmem"] = shm
    return config


def _result_payload(result, device) -> Dict[str, Any]:
    """The model's prediction for one candidate, flattened for JSONL."""
    from ..profiling.roofline import classify_result

    counters = result.counters
    verdict = classify_result(result, device) if device is not None else None
    payload: Dict[str, Any] = {
        "time_ms": result.time_ms,
        "gflops": result.tflops * 1e3,
        "occupancy": result.occupancy.occupancy,
        "counters": {
            "flops": counters.flops,
            "useful_flops": counters.useful_flops,
            "dram_bytes": counters.dram_bytes,
            "tex_bytes": counters.tex_bytes,
            "shm_bytes": counters.shm_bytes,
            "spill_bytes": counters.spill_bytes,
            "regs_per_thread": counters.regs_per_thread,
            "regs_demand": counters.regs_demand,
            "oi_dram": counters.oi("dram"),
            "oi_tex": counters.oi("tex"),
            "oi_shm": counters.oi("shm"),
        },
    }
    if verdict is not None:
        payload["bottleneck"] = verdict.bound_level
    return payload


def _device_payload(device) -> Dict[str, Any]:
    return {
        "name": device.name,
        "peak_gflops": device.peak_gflops,
        "dram_bw_gbs": device.dram_bw_gbs,
        "tex_bw_gbs": device.tex_bw_gbs,
        "shm_bw_gbs": device.shm_bw_gbs,
        "ridge_dram": device.ridge("dram"),
        "ridge_tex": device.ridge("tex"),
        "ridge_shm": device.ridge("shm"),
    }


class SearchLog:
    """Collects candidate-level search events; optionally streams JSONL.

    One log serves one search run (typically one ``optimize`` or
    ``deep-tune`` invocation).  Thread-safe: the evaluation engine emits
    from batch worker threads; context tags are tracked per thread and
    inherited by workers via :meth:`capture`/:meth:`use`.

    With ``path=None`` the log is in-memory only (``--explain`` without
    ``--search-log`` uses this); with a path, :meth:`flush` serializes
    the complete event stream atomically.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        device=None,
        flush_every: int = 256,
    ):
        self.path = path
        self.device = device
        self.flush_every = max(1, int(flush_every))
        self._events: List[Dict[str, Any]] = []
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._seq = 0
        self._t0 = time.perf_counter()
        self._unflushed = 0
        self._closed = False
        header: Dict[str, Any] = {
            "kind": "header",
            "version": SEARCH_LOG_VERSION,
            "t0_s": self._t0,
        }
        if device is not None:
            header["device"] = _device_payload(device)
        self._events.append(header)

    # -- context tags --------------------------------------------------------

    def _stack(self) -> List[Dict[str, Any]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def context(self, **tags):
        """Attach tags to every event emitted in this (thread's) scope."""
        stack = self._stack()
        merged = dict(stack[-1]) if stack else {}
        merged.update(tags)
        stack.append(merged)
        try:
            yield
        finally:
            stack.pop()

    def capture(self) -> Dict[str, Any]:
        """The calling thread's merged tags (for handoff to workers)."""
        stack = self._stack()
        return dict(stack[-1]) if stack else {}

    @contextmanager
    def use(self, tags: Dict[str, Any]):
        """Install captured tags on the current (worker) thread."""
        stack = self._stack()
        stack.append(dict(tags))
        try:
            yield
        finally:
            stack.pop()

    # -- emission ------------------------------------------------------------

    def emit(self, kind: str, **fields) -> Dict[str, Any]:
        """Record one event; auto-stamps seq, relative time and context."""
        context = self.capture()
        event: Dict[str, Any] = {"kind": kind}
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            event["t_ms"] = (time.perf_counter() - self._t0) * 1e3
            event.update(fields)
            if context:
                event["context"] = context
            self._events.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
            if kind == "candidate":
                disposition = fields.get("disposition", "?")
                key = f"candidate.{disposition}"
                self._counts[key] = self._counts.get(key, 0) + 1
            self._unflushed += 1
            flush_now = (
                self.path is not None and self._unflushed >= self.flush_every
            )
        if flush_now:
            self.flush()
        return event

    def candidate(
        self,
        plan,
        fingerprint: str,
        family: str,
        disposition: str,
        reason: Optional[str] = None,
        result=None,
        degraded: bool = False,
        device: Optional[str] = None,
    ) -> None:
        """One evaluation-engine request (the core telemetry record).

        ``device`` names the profile the candidate was priced on.  The
        engine always supplies it; when absent, the log's own device
        (the header's) is stamped so every candidate record is
        self-describing even after logs from several devices are merged.
        """
        if device is None and self.device is not None:
            device = self.device.name
        fields: Dict[str, Any] = {
            "fingerprint": fingerprint,
            "family": family,
            "plan": plan.describe(),
            "config": _config_summary(plan),
            "disposition": disposition,
        }
        if device is not None:
            fields["device"] = device
        if reason:
            fields["reason"] = reason
        if degraded:
            fields["degraded"] = True
        if result is not None:
            fields.update(_result_payload(result, self.device))
        self.emit("candidate", **fields)

    def prune(self, plan, family: str, reason: str) -> None:
        """A candidate resolved by the escalation logic without the model."""
        self.emit(
            "prune",
            family=family,
            plan=plan.describe(),
            config=_config_summary(plan),
            reason=reason,
        )

    def marker(self, kind: str, plan, **fields) -> None:
        """Resilience markers: retry / timeout / skip / degraded / failure."""
        described = plan.describe() if hasattr(plan, "describe") else str(plan)
        self.emit(kind, plan=described, **fields)

    def replay(self, plan, source: str = "journal") -> None:
        """A candidate answered from a checkpoint journal (not the engine)."""
        self.emit(
            "replay", plan=plan.describe(), source=source,
            config=_config_summary(plan),
        )

    def advice(self, kernel: str, advice) -> None:
        """Which Section IV-A advisor rules fired for one kernel."""
        self.emit(
            "advice",
            kernel=kernel,
            bound_level=advice.bottleneck.bound_level,
            occupancy=advice.bottleneck.occupancy,
            rules=list(advice.hints),
            suppressed=list(advice.suppressed()),
            flags={
                "use_shared_memory": advice.use_shared_memory,
                "use_unrolling": advice.use_unrolling,
                "use_register_opts": advice.use_register_opts,
                "explore_higher_fusion": advice.explore_higher_fusion,
                "explore_fission": advice.explore_fission,
                "generate_global_version": advice.generate_global_version,
            },
        )

    def fission(self, candidates: Sequence) -> None:
        """The fission/fusion DSL variants generated for exploration."""
        self.emit(
            "fission",
            candidates=[
                {"label": c.label, "kernels": len(c.ir.kernels)}
                for c in candidates
            ],
        )

    def winner(self, outcome) -> None:
        """The pipeline's final choice, linked to its candidate records."""
        from ..tuning.evaluator import plan_fingerprint

        self.emit(
            "winner",
            variant=outcome.variant,
            tflops=outcome.tflops,
            evaluations=outcome.evaluations,
            plans=[
                {
                    "fingerprint": plan_fingerprint(plan),
                    "plan": plan.describe(),
                    "count": count,
                }
                for plan, count in zip(
                    outcome.schedule.plans, outcome.schedule.counts
                )
            ],
        )

    def phases(self, spans: Sequence) -> None:
        """Footer: per-phase timing aggregates (from the span tracer)."""
        from .export import aggregate_phases

        for phase in aggregate_phases(spans):
            self.emit(
                "phase",
                name=phase.name,
                count=phase.count,
                total_ms=phase.total_s * 1e3,
                self_ms=phase.self_s * 1e3,
            )

    def summary(self, stats) -> None:
        """Footer: the run's final evaluation-engine statistics."""
        self.emit("summary", stats=stats.as_dict(), counts=self.counts())

    # -- reading / persistence ----------------------------------------------

    def events(self) -> Tuple[Dict[str, Any], ...]:
        with self._lock:
            return tuple(self._events)

    def counts(self) -> Dict[str, int]:
        """Event counts by kind, plus ``candidate.<disposition>`` splits."""
        with self._lock:
            return dict(self._counts)

    def candidate_count(self) -> int:
        return self.counts().get("candidate", 0)

    def flush(self) -> None:
        """Atomically write the complete JSONL stream (if a path is set)."""
        if self.path is None:
            return
        with self._lock:
            lines = [
                json.dumps(event, default=str) for event in self._events
            ]
            self._unflushed = 0
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush()


def log_context(log: Optional[SearchLog], **tags):
    """``log.context(**tags)`` or a no-op when no log is attached."""
    if log is None:
        return nullcontext()
    return log.context(**tags)


def read_events(path: str) -> List[Dict[str, Any]]:
    """Load a search-log JSONL file.

    The file is written atomically, so a malformed line means damage by
    something other than this writer; the loader fails loudly rather
    than silently analyzing a partial history.
    """
    events: List[Dict[str, Any]] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise UsageError(f"cannot read search log {path}: {exc}") from exc
    with handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise UsageError(
                    f"{path}:{number}: not a search-log line ({exc.msg})"
                ) from exc
    if not events or events[0].get("kind") != "header":
        raise UsageError(
            f"{path}: not a search log (missing header record)"
        )
    return events
