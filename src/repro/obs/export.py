"""Trace and metrics export: chrome://tracing JSON and flat JSON.

Two formats serve two audiences:

* :func:`chrome_trace` renders spans as Trace Event Format *complete*
  events (``ph: "X"``) — the JSON object form with a ``traceEvents``
  list — which chrome://tracing, Perfetto (ui.perfetto.dev) and
  ``about:tracing`` open directly.  Thread-name metadata events put each
  worker thread of a parallel tuning batch on its own labelled track,
  and the metrics snapshot rides along under ``otherData`` (the spec's
  extension point; trace viewers ignore it).
* :func:`flat_json` is the machine-readable form: one JSON object per
  span, plus the metrics snapshot — easy to load into pandas or jq.

Timestamps are microseconds from the earliest exported span, so traces
are small and stable regardless of process start time.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..resilience.atomic import atomic_write_text
from ..resilience.errors import UsageError
from .metrics import MetricsRegistry, get_metrics
from .tracer import Span, Tracer, get_tracer

__all__ = [
    "PhaseTotal",
    "aggregate_phases",
    "chrome_trace",
    "flat_json",
    "stitch_chrome_traces",
    "stitch_run_trace",
    "write_trace",
]


def _spans_of(tracer: Optional[Tracer]) -> Tuple[Span, ...]:
    return (tracer or get_tracer()).finished()


#: Synthetic thread id for the search-candidate instant track.  Real
#: thread ids come from ``threading.get_ident()`` (large addresses), so
#: a small constant cannot collide.
SEARCH_TRACK_TID = 1


def _search_instants(search_events: Sequence[dict]) -> List[Tuple[float, dict]]:
    """(absolute perf_counter seconds, candidate event) pairs.

    Search-log events carry ``t_ms`` relative to the header's ``t0_s``;
    both use the same ``time.perf_counter`` clock as span timestamps, so
    candidate instants line up with tuning spans on the trace timeline.
    """
    t0_s = 0.0
    for event in search_events:
        if event.get("kind") == "header":
            t0_s = float(event.get("t0_s", 0.0))
            break
    out: List[Tuple[float, dict]] = []
    for event in search_events:
        if event.get("kind") != "candidate":
            continue
        out.append((t0_s + float(event.get("t_ms", 0.0)) / 1e3, event))
    return out


def chrome_trace(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    process_name: str = "repro",
    search_events: Optional[Sequence[dict]] = None,
) -> dict:
    """Spans (+ metrics) as a chrome://tracing JSON-object document.

    ``search_events`` (a :mod:`repro.obs.search` event stream) adds one
    *instant* event (``ph: "i"``) per evaluated candidate on a dedicated
    "search candidates" track, time-aligned with the spans.
    """
    spans = _spans_of(tracer)
    instants = _search_instants(search_events) if search_events else []
    # The time base covers every timestamped event exported — spans and
    # candidate instants alike — so a trace holding only one source (or
    # neither) still starts at ts=0 instead of a raw perf_counter value.
    base = min(
        (
            timestamp
            for timestamp in (
                [s.start_s for s in spans] + [t for t, _ in instants]
            )
        ),
        default=0.0,
    )
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    named_threads = set()
    for item in spans:
        if item.thread_id not in named_threads:
            named_threads.add(item.thread_id)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": item.thread_id,
                    "args": {"name": item.thread_name},
                }
            )
        event = {
            "name": item.name,
            "cat": item.name.split(".", 1)[0],
            "ph": "X",
            "pid": 1,
            "tid": item.thread_id,
            "ts": (item.start_s - base) * 1e6,
            "dur": item.duration_s * 1e6,
        }
        args = dict(item.attributes)
        args["span_id"] = item.span_id
        if item.parent_id is not None:
            args["parent_id"] = item.parent_id
        event["args"] = args
        events.append(event)
    if instants:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": SEARCH_TRACK_TID,
                "args": {"name": "search candidates"},
            }
        )
        for timestamp, candidate in instants:
            args = {
                "fingerprint": candidate.get("fingerprint"),
                "plan": candidate.get("plan"),
                "disposition": candidate.get("disposition"),
            }
            if candidate.get("gflops") is not None:
                args["gflops"] = candidate["gflops"]
            if candidate.get("reason"):
                args["reason"] = candidate["reason"]
            events.append(
                {
                    "name": f"candidate:{candidate.get('disposition', '?')}",
                    "cat": "search",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": SEARCH_TRACK_TID,
                    "ts": (timestamp - base) * 1e6,
                    "args": args,
                }
            )
    registry = metrics or get_metrics()
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": registry.snapshot()},
    }
    tracer = tracer or get_tracer()
    if tracer.dropped:
        document["otherData"]["dropped_spans"] = tracer.dropped
    return document


def flat_json(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> dict:
    """Spans and metrics as one flat, schema-stable JSON object."""
    spans = _spans_of(tracer)
    base = min((s.start_s for s in spans), default=0.0)
    registry = metrics or get_metrics()
    return {
        "spans": [
            {
                "name": item.name,
                "span_id": item.span_id,
                "parent_id": item.parent_id,
                "thread": item.thread_name,
                "start_us": (item.start_s - base) * 1e6,
                "duration_us": item.duration_s * 1e6,
                "depth": item.depth,
                "attributes": item.attributes,
            }
            for item in spans
        ],
        "metrics": registry.snapshot(),
    }


def write_trace(
    path: str,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    fmt: str = "chrome",
    search_events: Optional[Sequence[dict]] = None,
    stitch_root: Optional[str] = None,
) -> dict:
    """Serialize the trace to ``path``; returns the written document.

    ``fmt="chrome"`` (default) writes the chrome://tracing object form;
    ``fmt="flat"`` writes the flat span/metrics JSON.  ``search_events``
    (chrome format only) adds the candidate instant track.
    ``stitch_root`` (chrome format only) names a distributed-run
    directory whose worker snapshots are stitched into the document as
    separate processes.  The write is atomic
    (write-tmp-then-rename), so a crash mid-export can never truncate
    an existing trace file.
    """
    if fmt == "chrome" and stitch_root is not None:
        document = stitch_run_trace(stitch_root, tracer, metrics)
    elif fmt == "chrome":
        document = chrome_trace(tracer, metrics, search_events=search_events)
    elif fmt == "flat":
        document = flat_json(tracer, metrics)
    else:
        raise UsageError(f"unknown trace format {fmt!r}; use chrome|flat")
    atomic_write_text(
        path, json.dumps(document, indent=1, default=str) + "\n"
    )
    return document


# ---------------------------------------------------------------------------
# multi-process stitching (distributed runs)
# ---------------------------------------------------------------------------

#: pid of the coordinator process in a stitched trace; workers map to
#: ``worker_id + _WORKER_PID_BASE`` — a stable assignment so traces of
#: the same run directory always render identically, dead workers
#: included.
COORDINATOR_PID = 1
_WORKER_PID_BASE = 2


def _meta(name: str, pid: int, tid: int, label: str) -> dict:
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": label},
    }


def stitch_chrome_traces(
    snapshots: Sequence[Dict[str, Any]],
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    process_name: str = "coordinator",
) -> dict:
    """One chrome://tracing document spanning coordinator + workers.

    ``snapshots`` are :mod:`repro.obs.live` worker snapshot documents
    (``include_spans`` variants); the local tracer contributes the
    coordinator's own spans.  Each worker renders as its own *process*
    (stable ``pid = worker_id + 2``; the coordinator is pid 1) with its
    real thread ids as tids, so the viewer shows one timeline with one
    track group per OS process.

    Timestamps are aligned through each snapshot's wall/perf clock
    anchor, so spans recorded by different processes land at their true
    relative positions.  Open spans (a worker SIGKILLed mid-evaluation)
    render as complete events ending at the snapshot's flush time,
    marked ``"open": true`` — a partial trace still renders.
    """
    from .live import span_wall_ts

    local_spans = (tracer or get_tracer()).finished()
    local_anchor = {"wall_ts": time.time(), "perf_s": time.perf_counter()}

    # (wall_start_s, wall_end_s, pid, tid, span-dict) for every event.
    rows: List[Tuple[float, float, int, int, Dict[str, Any]]] = []
    metas: List[dict] = [
        _meta("process_name", COORDINATOR_PID, 0, process_name)
    ]
    named_threads = {(COORDINATOR_PID, 0)}
    for item in local_spans:
        start = span_wall_ts(item.start_s, local_anchor)
        end = span_wall_ts(item.end_s, local_anchor)
        args = dict(item.attributes)
        args["span_id"] = item.span_id
        if item.parent_id is not None:
            args["parent_id"] = item.parent_id
        rows.append(
            (
                start,
                end,
                COORDINATOR_PID,
                item.thread_id,
                {"name": item.name, "thread_name": item.thread_name,
                 "args": args},
            )
        )

    latest_by_worker: Dict[int, Dict[str, Any]] = {}
    for snapshot in snapshots:
        worker = int(snapshot.get("worker", 0))
        best = latest_by_worker.get(worker)
        if best is None or snapshot.get("seq", 0) >= best.get("seq", 0):
            latest_by_worker[worker] = snapshot
    for worker in sorted(latest_by_worker):
        snapshot = latest_by_worker[worker]
        pid = worker + _WORKER_PID_BASE
        anchor = snapshot.get("anchor", {})
        flush_wall = float(snapshot.get("ts", anchor.get("wall_ts", 0.0)))
        metas.append(_meta("process_name", pid, 0, f"worker-{worker:02d}"))
        for span_data, is_open in [
            (s, False) for s in snapshot.get("spans", ())
        ] + [(s, True) for s in snapshot.get("open_spans", ())]:
            start = span_wall_ts(span_data.get("start_s", 0.0), anchor)
            if is_open or span_data.get("end_s") is None:
                end = flush_wall
            else:
                end = span_wall_ts(span_data["end_s"], anchor)
            args = dict(span_data.get("attributes") or {})
            args["span_id"] = span_data.get("span_id")
            if span_data.get("parent_id") is not None:
                args["parent_id"] = span_data["parent_id"]
            if is_open:
                args["open"] = True
            rows.append(
                (
                    start,
                    max(start, end),
                    pid,
                    int(span_data.get("thread_id") or 0),
                    {
                        "name": span_data.get("name", "?"),
                        "thread_name": span_data.get("thread_name", "?"),
                        "args": args,
                    },
                )
            )

    base = min((row[0] for row in rows), default=0.0)
    events: List[dict] = list(metas)
    for start, end, pid, tid, payload in sorted(
        rows, key=lambda row: (row[0], row[2], row[3])
    ):
        if (pid, tid) not in named_threads:
            named_threads.add((pid, tid))
            events.append(_meta("thread_name", pid, tid,
                                payload["thread_name"]))
        events.append(
            {
                "name": payload["name"],
                "cat": payload["name"].split(".", 1)[0],
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": (start - base) * 1e6,
                "dur": (end - start) * 1e6,
                "args": payload["args"],
            }
        )
    registry = metrics or get_metrics()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "metrics": registry.snapshot(),
            "workers": sorted(latest_by_worker),
        },
    }


def stitch_run_trace(
    root: str,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> dict:
    """Stitch a distributed-run directory's worker snapshots + the
    local tracer into one chrome trace document."""
    import os

    from .live import load_snapshots

    return stitch_chrome_traces(
        load_snapshots(os.path.join(root, "obs")),
        tracer=tracer,
        metrics=metrics,
    )


# ---------------------------------------------------------------------------
# per-phase aggregation (the report table)
# ---------------------------------------------------------------------------


class PhaseTotal:
    """Aggregate of all spans sharing one name."""

    __slots__ = ("name", "count", "total_s", "self_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0


def aggregate_phases(spans: Sequence[Span]) -> List[PhaseTotal]:
    """Group spans by name: call count, total time and self time.

    Self time subtracts each span's direct children, so a parent phase
    ("tuning") does not re-bill the time its sub-phases ("tuning.stage1")
    already account for.  Sorted by total time, descending.
    """
    child_time: Dict[int, float] = {}
    for item in spans:
        if item.parent_id is not None:
            child_time[item.parent_id] = (
                child_time.get(item.parent_id, 0.0) + item.duration_s
            )
    phases: Dict[str, PhaseTotal] = {}
    for item in spans:
        phase = phases.get(item.name)
        if phase is None:
            phase = phases[item.name] = PhaseTotal(item.name)
        phase.count += 1
        phase.total_s += item.duration_s
        phase.self_s += max(0.0, item.duration_s - child_time.get(item.span_id, 0.0))
    return sorted(phases.values(), key=lambda p: p.total_s, reverse=True)
