"""Trace and metrics export: chrome://tracing JSON and flat JSON.

Two formats serve two audiences:

* :func:`chrome_trace` renders spans as Trace Event Format *complete*
  events (``ph: "X"``) — the JSON object form with a ``traceEvents``
  list — which chrome://tracing, Perfetto (ui.perfetto.dev) and
  ``about:tracing`` open directly.  Thread-name metadata events put each
  worker thread of a parallel tuning batch on its own labelled track,
  and the metrics snapshot rides along under ``otherData`` (the spec's
  extension point; trace viewers ignore it).
* :func:`flat_json` is the machine-readable form: one JSON object per
  span, plus the metrics snapshot — easy to load into pandas or jq.

Timestamps are microseconds from the earliest exported span, so traces
are small and stable regardless of process start time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..resilience.atomic import atomic_write_text
from ..resilience.errors import UsageError
from .metrics import MetricsRegistry, get_metrics
from .tracer import Span, Tracer, get_tracer

__all__ = [
    "PhaseTotal",
    "aggregate_phases",
    "chrome_trace",
    "flat_json",
    "write_trace",
]


def _spans_of(tracer: Optional[Tracer]) -> Tuple[Span, ...]:
    return (tracer or get_tracer()).finished()


#: Synthetic thread id for the search-candidate instant track.  Real
#: thread ids come from ``threading.get_ident()`` (large addresses), so
#: a small constant cannot collide.
SEARCH_TRACK_TID = 1


def _search_instants(search_events: Sequence[dict]) -> List[Tuple[float, dict]]:
    """(absolute perf_counter seconds, candidate event) pairs.

    Search-log events carry ``t_ms`` relative to the header's ``t0_s``;
    both use the same ``time.perf_counter`` clock as span timestamps, so
    candidate instants line up with tuning spans on the trace timeline.
    """
    t0_s = 0.0
    for event in search_events:
        if event.get("kind") == "header":
            t0_s = float(event.get("t0_s", 0.0))
            break
    out: List[Tuple[float, dict]] = []
    for event in search_events:
        if event.get("kind") != "candidate":
            continue
        out.append((t0_s + float(event.get("t_ms", 0.0)) / 1e3, event))
    return out


def chrome_trace(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    process_name: str = "repro",
    search_events: Optional[Sequence[dict]] = None,
) -> dict:
    """Spans (+ metrics) as a chrome://tracing JSON-object document.

    ``search_events`` (a :mod:`repro.obs.search` event stream) adds one
    *instant* event (``ph: "i"``) per evaluated candidate on a dedicated
    "search candidates" track, time-aligned with the spans.
    """
    spans = _spans_of(tracer)
    instants = _search_instants(search_events) if search_events else []
    # The time base covers every timestamped event exported — spans and
    # candidate instants alike — so a trace holding only one source (or
    # neither) still starts at ts=0 instead of a raw perf_counter value.
    base = min(
        (
            timestamp
            for timestamp in (
                [s.start_s for s in spans] + [t for t, _ in instants]
            )
        ),
        default=0.0,
    )
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    named_threads = set()
    for item in spans:
        if item.thread_id not in named_threads:
            named_threads.add(item.thread_id)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": item.thread_id,
                    "args": {"name": item.thread_name},
                }
            )
        event = {
            "name": item.name,
            "cat": item.name.split(".", 1)[0],
            "ph": "X",
            "pid": 1,
            "tid": item.thread_id,
            "ts": (item.start_s - base) * 1e6,
            "dur": item.duration_s * 1e6,
        }
        args = dict(item.attributes)
        args["span_id"] = item.span_id
        if item.parent_id is not None:
            args["parent_id"] = item.parent_id
        event["args"] = args
        events.append(event)
    if instants:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": SEARCH_TRACK_TID,
                "args": {"name": "search candidates"},
            }
        )
        for timestamp, candidate in instants:
            args = {
                "fingerprint": candidate.get("fingerprint"),
                "plan": candidate.get("plan"),
                "disposition": candidate.get("disposition"),
            }
            if candidate.get("gflops") is not None:
                args["gflops"] = candidate["gflops"]
            if candidate.get("reason"):
                args["reason"] = candidate["reason"]
            events.append(
                {
                    "name": f"candidate:{candidate.get('disposition', '?')}",
                    "cat": "search",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": SEARCH_TRACK_TID,
                    "ts": (timestamp - base) * 1e6,
                    "args": args,
                }
            )
    registry = metrics or get_metrics()
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"metrics": registry.snapshot()},
    }
    tracer = tracer or get_tracer()
    if tracer.dropped:
        document["otherData"]["dropped_spans"] = tracer.dropped
    return document


def flat_json(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> dict:
    """Spans and metrics as one flat, schema-stable JSON object."""
    spans = _spans_of(tracer)
    base = min((s.start_s for s in spans), default=0.0)
    registry = metrics or get_metrics()
    return {
        "spans": [
            {
                "name": item.name,
                "span_id": item.span_id,
                "parent_id": item.parent_id,
                "thread": item.thread_name,
                "start_us": (item.start_s - base) * 1e6,
                "duration_us": item.duration_s * 1e6,
                "depth": item.depth,
                "attributes": item.attributes,
            }
            for item in spans
        ],
        "metrics": registry.snapshot(),
    }


def write_trace(
    path: str,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    fmt: str = "chrome",
    search_events: Optional[Sequence[dict]] = None,
) -> dict:
    """Serialize the trace to ``path``; returns the written document.

    ``fmt="chrome"`` (default) writes the chrome://tracing object form;
    ``fmt="flat"`` writes the flat span/metrics JSON.  ``search_events``
    (chrome format only) adds the candidate instant track.  The write is
    atomic (write-tmp-then-rename), so a crash mid-export can never
    truncate an existing trace file.
    """
    if fmt == "chrome":
        document = chrome_trace(tracer, metrics, search_events=search_events)
    elif fmt == "flat":
        document = flat_json(tracer, metrics)
    else:
        raise UsageError(f"unknown trace format {fmt!r}; use chrome|flat")
    atomic_write_text(
        path, json.dumps(document, indent=1, default=str) + "\n"
    )
    return document


# ---------------------------------------------------------------------------
# per-phase aggregation (the report table)
# ---------------------------------------------------------------------------


class PhaseTotal:
    """Aggregate of all spans sharing one name."""

    __slots__ = ("name", "count", "total_s", "self_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.self_s = 0.0


def aggregate_phases(spans: Sequence[Span]) -> List[PhaseTotal]:
    """Group spans by name: call count, total time and self time.

    Self time subtracts each span's direct children, so a parent phase
    ("tuning") does not re-bill the time its sub-phases ("tuning.stage1")
    already account for.  Sorted by total time, descending.
    """
    child_time: Dict[int, float] = {}
    for item in spans:
        if item.parent_id is not None:
            child_time[item.parent_id] = (
                child_time.get(item.parent_id, 0.0) + item.duration_s
            )
    phases: Dict[str, PhaseTotal] = {}
    for item in spans:
        phase = phases.get(item.name)
        if phase is None:
            phase = phases[item.name] = PhaseTotal(item.name)
        phase.count += 1
        phase.total_s += item.duration_s
        phase.self_s += max(0.0, item.duration_s - child_time.get(item.span_id, 0.0))
    return sorted(phases.values(), key=lambda p: p.total_s, reverse=True)
