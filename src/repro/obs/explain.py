"""Explainable plan selection: "why did this plan win?".

Consumes the candidate-level event stream recorded by
:mod:`repro.obs.search` (either the in-memory events of a live
:class:`~repro.obs.search.SearchLog` or a JSONL file loaded with
:func:`~repro.obs.search.read_events`) and derives the artifacts a user
needs to audit the search:

* the **winner** — the pipeline's final plan(s), joined back to their
  candidate records so the model's full prediction is attached;
* the **top-k runners-up** — the best distinct losing plans, each with
  counter deltas against the winner (the quantitative "why it lost");
* the **advisor rules** that fired per kernel (which Section IV-A
  decisions shaped the pruned search space);
* the **convergence trajectory** — running best GFLOPS over candidate
  sequence, i.e. how quickly the search found the winner;
* the **disposition summary** — how the engine resolved each request
  (simulated / cache-hit / screened / infeasible / error) plus prune,
  replay and resilience-marker counts.

Everything is derived strictly from the event stream, so the same
explanation is available live (``repro optimize --explain``), from a log
file (``repro report``), and machine-readably (``--json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..resilience.errors import UsageError

__all__ = [
    "CandidateView",
    "ExplainReport",
    "build_explain",
    "format_explain",
]

#: Counters compared between the winner and each runner-up, in display
#: order.  Lower is better for all of them except occupancy/gflops.
DELTA_COUNTERS = (
    "dram_bytes",
    "tex_bytes",
    "shm_bytes",
    "spill_bytes",
    "flops",
)


@dataclass(frozen=True)
class CandidateView:
    """One candidate record, normalized for analysis."""

    seq: int
    fingerprint: str
    family: str
    plan: str
    config: Dict[str, Any]
    disposition: str
    gflops: Optional[float] = None
    time_ms: Optional[float] = None
    occupancy: Optional[float] = None
    bottleneck: Optional[str] = None
    counters: Dict[str, float] = field(default_factory=dict)
    context: Dict[str, Any] = field(default_factory=dict)
    reason: Optional[str] = None
    degraded: bool = False

    @property
    def measured(self) -> bool:
        """True when the model's prediction is attached."""
        return self.gflops is not None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "seq": self.seq,
            "fingerprint": self.fingerprint,
            "family": self.family,
            "plan": self.plan,
            "config": self.config,
            "disposition": self.disposition,
        }
        if self.measured:
            out.update(
                gflops=self.gflops,
                time_ms=self.time_ms,
                occupancy=self.occupancy,
                bottleneck=self.bottleneck,
                counters=self.counters,
            )
        if self.reason:
            out["reason"] = self.reason
        if self.degraded:
            out["degraded"] = True
        if self.context:
            out["context"] = self.context
        return out


@dataclass(frozen=True)
class RunnerUp:
    """A losing candidate plus its counter deltas against the winner."""

    candidate: CandidateView
    #: counter -> (runner value, winner value, ratio runner/winner)
    deltas: Dict[str, Tuple[float, float, Optional[float]]]
    gflops_gap_pct: float  # how far behind the winner, in percent

    def as_dict(self) -> Dict[str, Any]:
        return {
            "candidate": self.candidate.as_dict(),
            "gflops_gap_pct": self.gflops_gap_pct,
            "deltas": {
                name: {"value": value, "winner": winner, "ratio": ratio}
                for name, (value, winner, ratio) in self.deltas.items()
            },
        }


@dataclass(frozen=True)
class ExplainReport:
    """The derived explanation for one search run."""

    device: Optional[Dict[str, Any]]
    winner: Optional[Dict[str, Any]]  # the pipeline's winner event
    winner_candidate: Optional[CandidateView]
    runners: Tuple[RunnerUp, ...]
    advice: Tuple[Dict[str, Any], ...]
    convergence: Tuple[Tuple[int, float], ...]  # (seq, best-so-far GFLOPS)
    dispositions: Dict[str, int]
    markers: Dict[str, int]  # retry/timeout/skip/degraded/failure/prune/replay
    phases: Tuple[Dict[str, Any], ...]
    stats: Optional[Dict[str, Any]]
    candidates: int = 0
    measured: int = 0
    distinct_plans: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "device": self.device,
            "winner": self.winner,
            "winner_candidate": (
                self.winner_candidate.as_dict()
                if self.winner_candidate is not None
                else None
            ),
            "runners_up": [r.as_dict() for r in self.runners],
            "advice": list(self.advice),
            "convergence": [
                {"seq": seq, "gflops": gflops}
                for seq, gflops in self.convergence
            ],
            "dispositions": self.dispositions,
            "markers": self.markers,
            "phases": list(self.phases),
            "stats": self.stats,
            "candidates": self.candidates,
            "measured": self.measured,
            "distinct_plans": self.distinct_plans,
        }


def _candidate_view(event: Dict[str, Any]) -> CandidateView:
    counters = event.get("counters") or {}
    return CandidateView(
        seq=int(event.get("seq", 0)),
        fingerprint=str(event.get("fingerprint", "")),
        family=str(event.get("family", "")),
        plan=str(event.get("plan", "")),
        config=dict(event.get("config") or {}),
        disposition=str(event.get("disposition", "?")),
        gflops=event.get("gflops"),
        time_ms=event.get("time_ms"),
        occupancy=event.get("occupancy"),
        bottleneck=event.get("bottleneck"),
        counters=dict(counters),
        context=dict(event.get("context") or {}),
        reason=event.get("reason"),
        degraded=bool(event.get("degraded", False)),
    )


MARKER_KINDS = (
    "prune", "replay", "retry", "timeout", "skip", "degraded", "failure",
)


def build_explain(
    events: Sequence[Dict[str, Any]], top_k: int = 3
) -> ExplainReport:
    """Derive an :class:`ExplainReport` from a search-event stream."""
    if not events:
        raise UsageError("empty search log: nothing to explain")

    device = None
    header = events[0]
    if header.get("kind") == "header":
        device = header.get("device")

    candidates: List[CandidateView] = []
    winner_event: Optional[Dict[str, Any]] = None
    advice: List[Dict[str, Any]] = []
    phases: List[Dict[str, Any]] = []
    stats: Optional[Dict[str, Any]] = None
    dispositions: Dict[str, int] = {}
    markers: Dict[str, int] = {}

    for event in events:
        kind = event.get("kind")
        if kind == "candidate":
            view = _candidate_view(event)
            candidates.append(view)
            dispositions[view.disposition] = (
                dispositions.get(view.disposition, 0) + 1
            )
        elif kind == "winner":
            winner_event = event  # last one wins (there is normally one)
        elif kind == "advice":
            advice.append(event)
        elif kind == "phase":
            phases.append(
                {
                    "name": event.get("name"),
                    "count": event.get("count"),
                    "total_ms": event.get("total_ms"),
                    "self_ms": event.get("self_ms"),
                }
            )
        elif kind == "summary":
            stats = event.get("stats")
        elif kind in MARKER_KINDS:
            markers[kind] = markers.get(kind, 0) + 1

    measured = [c for c in candidates if c.measured]

    # Best prediction per distinct plan fingerprint (cache hits repeat
    # fingerprints; keep one representative each).
    best_by_fp: Dict[str, CandidateView] = {}
    for cand in measured:
        incumbent = best_by_fp.get(cand.fingerprint)
        if incumbent is None or cand.gflops > incumbent.gflops:
            best_by_fp[cand.fingerprint] = cand

    # The winner candidate: joined by fingerprint to the winner event
    # when possible (multi-plan schedules pick the best member), else
    # the best measured candidate overall.
    winner_candidate: Optional[CandidateView] = None
    if winner_event is not None:
        winner_fps = [
            p.get("fingerprint") for p in winner_event.get("plans", ())
        ]
        matched = [best_by_fp[fp] for fp in winner_fps if fp in best_by_fp]
        if matched:
            winner_candidate = max(matched, key=lambda c: c.gflops)
    if winner_candidate is None and best_by_fp:
        winner_candidate = max(best_by_fp.values(), key=lambda c: c.gflops)

    # Top-k runners-up: best distinct plans excluding the winner's.
    runners: List[RunnerUp] = []
    if winner_candidate is not None:
        losers = sorted(
            (
                c
                for fp, c in best_by_fp.items()
                if fp != winner_candidate.fingerprint
            ),
            key=lambda c: c.gflops,
            reverse=True,
        )
        for cand in losers[: max(0, top_k)]:
            deltas: Dict[str, Tuple[float, float, Optional[float]]] = {}
            for name in DELTA_COUNTERS:
                value = cand.counters.get(name)
                winner_value = winner_candidate.counters.get(name)
                if value is None or winner_value is None:
                    continue
                ratio = value / winner_value if winner_value else None
                deltas[name] = (value, winner_value, ratio)
            gap = 0.0
            if winner_candidate.gflops:
                gap = (
                    (winner_candidate.gflops - cand.gflops)
                    / winner_candidate.gflops
                    * 100.0
                )
            runners.append(
                RunnerUp(candidate=cand, deltas=deltas, gflops_gap_pct=gap)
            )

    # Convergence: running best GFLOPS in evaluation order.
    convergence: List[Tuple[int, float]] = []
    best = float("-inf")
    for cand in measured:
        if cand.gflops > best:
            best = cand.gflops
            convergence.append((cand.seq, cand.gflops))

    return ExplainReport(
        device=device,
        winner=winner_event,
        winner_candidate=winner_candidate,
        runners=tuple(runners),
        advice=tuple(advice),
        convergence=tuple(convergence),
        dispositions=dispositions,
        markers=markers,
        phases=tuple(phases),
        stats=stats,
        candidates=len(candidates),
        measured=len(measured),
        distinct_plans=len(best_by_fp),
    )


# ---------------------------------------------------------------------------
# text rendering (repro optimize --explain)
# ---------------------------------------------------------------------------


def _fmt_bytes(value: float) -> str:
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(value) >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value:.0f} B"


def _fmt_counter(name: str, value: float) -> str:
    if name.endswith("_bytes"):
        return _fmt_bytes(value)
    if name == "flops":
        return f"{value / 1e9:.2f} GFLOP"
    return f"{value:g}"


def format_explain(report: ExplainReport) -> str:
    """Render the explanation as the ``--explain`` text block."""
    lines: List[str] = ["", "=== why this plan ==="]

    total = report.candidates
    lines.append(
        f"search considered {total} candidate(s) across "
        f"{report.distinct_plans} distinct plan(s); "
        f"{report.measured} carried a model prediction"
    )
    if report.dispositions:
        parts = ", ".join(
            f"{name}={count}"
            for name, count in sorted(report.dispositions.items())
        )
        lines.append(f"dispositions: {parts}")
    if report.markers:
        parts = ", ".join(
            f"{name}={count}" for name, count in sorted(report.markers.items())
        )
        lines.append(f"search-path events: {parts}")

    winner = report.winner_candidate
    if winner is None:
        lines.append("no measured candidates: nothing to explain")
        return "\n".join(lines)

    lines.append("")
    variant = (report.winner or {}).get("variant")
    title = f"winner{f' ({variant})' if variant else ''}: {winner.plan}"
    lines.append(title)
    lines.append(
        f"  predicted {winner.gflops:.1f} GFLOPS, "
        f"{winner.time_ms:.3f} ms, occupancy {winner.occupancy:.2f}"
        + (f", bound at {winner.bottleneck}" if winner.bottleneck else "")
    )

    for index, runner in enumerate(report.runners, start=1):
        cand = runner.candidate
        lines.append(
            f"runner-up #{index}: {cand.plan}"
        )
        lines.append(
            f"  predicted {cand.gflops:.1f} GFLOPS "
            f"({runner.gflops_gap_pct:+.1f}% behind)"
            + (f", bound at {cand.bottleneck}" if cand.bottleneck else "")
        )
        interesting = [
            (name, value, winner_value, ratio)
            for name, (value, winner_value, ratio) in runner.deltas.items()
            if value != winner_value
            and (ratio is None or abs(ratio - 1.0) > 0.01)
        ]
        for name, value, winner_value, ratio in interesting:
            if ratio is not None:
                comparison = f"{ratio:.2f}x winner's"
            else:
                comparison = f"vs winner {_fmt_counter(name, winner_value)}"
            lines.append(
                f"    {name:12s} {_fmt_counter(name, value):>12s}  "
                f"({comparison})"
            )

    if report.advice:
        lines.append("")
        lines.append("advisor rules fired:")
        for entry in report.advice:
            kernel = entry.get("kernel", "?")
            bound = entry.get("bound_level", "?")
            rules = entry.get("rules") or []
            lines.append(f"  {kernel} (bound at {bound}):")
            for rule in rules:
                lines.append(f"    - {rule}")
            suppressed = entry.get("suppressed") or []
            if suppressed:
                lines.append(
                    f"    suppressed: {', '.join(suppressed)}"
                )

    if report.convergence:
        lines.append("")
        first_seq, first = report.convergence[0]
        last_seq, last = report.convergence[-1]
        lines.append(
            f"convergence: {first:.1f} GFLOPS (candidate #{first_seq}) -> "
            f"{last:.1f} GFLOPS (candidate #{last_seq}) over "
            f"{len(report.convergence)} improvement(s)"
        )

    return "\n".join(lines)
