"""Process-wide metrics registry: counters, gauges, histograms.

Every quantitative signal the pipeline already produces piecemeal —
:class:`~repro.tuning.evaluator.EvalStats` cache counters, the
simulator's call count and occupancy-prescreen rejections, the
hierarchical tuner's per-stage candidate counts — feeds one registry
here, so a single ``--metrics`` flag (or a trace export) can show the
whole picture of a run.

Collection is off by default and every hot-path instrumentation site
guards with :func:`metrics_enabled`, so the disabled cost is a global
flag check.  All metric types are thread-safe (one lock per metric;
increments from ``evaluate_batch`` worker threads are exact, not
last-writer-wins).

API::

    from repro.obs import counter, gauge, histogram, metrics_enabled

    if metrics_enabled():
        counter("eval.requests").add()
        gauge("tiling.plan_cache.size").set(plan_cache_size())
        histogram("simulate.wall_s").observe(elapsed)
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "configure_metrics",
    "counter",
    "gauge",
    "get_metrics",
    "histogram",
    "metrics_enabled",
]

Number = Union[int, float]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def as_dict(self) -> Dict[str, Number]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-set point-in-time value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def as_dict(self) -> Dict[str, Number]:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    A fixed-size reservoir of the most recent observations rides along
    so exports can show a coarse distribution without unbounded memory.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_recent",
                 "_capacity", "_lock")

    def __init__(self, name: str, capacity: int = 64):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._recent: List[float] = []
        self._capacity = capacity
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._recent) >= self._capacity:
                self._recent.pop(0)
            self._recent.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def as_dict(self) -> Dict[str, Number]:
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
            "mean": self.mean,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use, snapshot-able as plain JSON."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """All metrics as a name-sorted plain dict (JSON-ready)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].as_dict() for name in sorted(metrics)}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


# ---------------------------------------------------------------------------
# process-wide registry
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()
_ENABLED = False


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _ENABLED


def configure_metrics(enabled: bool, reset: bool = False) -> MetricsRegistry:
    """Enable/disable collection on the global registry."""
    global _ENABLED
    if reset:
        _REGISTRY.reset()
    _ENABLED = enabled
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)
