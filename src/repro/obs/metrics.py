"""Process-wide metrics registry: counters, gauges, histograms.

Every quantitative signal the pipeline already produces piecemeal —
:class:`~repro.tuning.evaluator.EvalStats` cache counters, the
simulator's call count and occupancy-prescreen rejections, the
hierarchical tuner's per-stage candidate counts — feeds one registry
here, so a single ``--metrics`` flag (or a trace export) can show the
whole picture of a run.

Collection is off by default and every hot-path instrumentation site
guards with :func:`metrics_enabled`, so the disabled cost is a global
flag check.  All metric types are thread-safe (one lock per metric;
increments from ``evaluate_batch`` worker threads are exact, not
last-writer-wins).

Snapshots (``as_dict``/``MetricsRegistry.snapshot``) are plain JSON
and *mergeable*: :meth:`MetricsRegistry.merge_snapshot` folds another
process's snapshot into this registry — counters summed, gauges
last-writer-wins by timestamp, histograms bucket-merged — which is how
the distributed coordinator assembles one run-level registry from the
per-worker snapshot files (:mod:`repro.obs.live`).

API::

    from repro.obs import counter, gauge, histogram, metrics_enabled

    if metrics_enabled():
        counter("eval.requests").add()
        gauge("tiling.plan_cache.size").set(plan_cache_size())
        histogram("simulate.wall_s").observe(elapsed)
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "configure_metrics",
    "counter",
    "gauge",
    "get_metrics",
    "histogram",
    "metrics_enabled",
]

Number = Union[int, float]

#: Default histogram bucket upper bounds (``le``, inclusive), log-spaced
#: to cover everything the pipeline observes in one ladder: microsecond
#: simulator calls up to multi-minute tuning walls.  A final implicit
#: +Inf bucket catches the overflow.  Shared bounds are what make
#: cross-process bucket-merging exact.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def as_dict(self) -> Dict[str, Number]:
        return {"type": "counter", "value": self._value}

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold another process's snapshot of this counter: values sum."""
        self.add(data.get("value", 0))


class Gauge:
    """Last-set point-in-time value.

    Each write records a wall-clock timestamp so cross-process merges
    can apply last-writer-wins semantics deterministically.
    """

    __slots__ = ("name", "_value", "_ts", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: Number = 0
        self._ts: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: Number, ts: Optional[float] = None) -> None:
        with self._lock:
            self._value = value
            self._ts = time.time() if ts is None else ts

    def add(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount
            self._ts = time.time()

    @property
    def value(self) -> Number:
        return self._value

    def as_dict(self) -> Dict[str, Number]:
        return {"type": "gauge", "value": self._value, "ts": self._ts}

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a snapshot of this gauge: the newest write wins."""
        ts = float(data.get("ts", 0.0))
        with self._lock:
            if ts >= self._ts:
                self._value = data.get("value", 0)
                self._ts = ts


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Observations are also folded into a fixed ladder of ``le`` buckets
    (:data:`DEFAULT_BUCKETS` + an implicit +Inf overflow), which is what
    makes histograms *mergeable across processes* (bucket counts sum)
    and gives :meth:`quantile` its estimate.  A fixed-size reservoir of
    the most recent observations rides along so exports can show a
    coarse distribution without unbounded memory.
    """

    __slots__ = ("name", "_count", "_sum", "_min", "_max", "_recent",
                 "_capacity", "_bounds", "_buckets", "_lock")

    def __init__(
        self,
        name: str,
        capacity: int = 64,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._recent: List[float] = []
        self._capacity = capacity
        self._bounds = tuple(sorted(bounds))
        self._buckets = [0] * (len(self._bounds) + 1)  # last = +Inf
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            # First bucket whose upper bound covers the value (le is
            # inclusive, Prometheus-style); beyond the ladder -> +Inf.
            self._buckets[bisect.bisect_left(self._bounds, value)] += 1
            if len(self._recent) >= self._capacity:
                self._recent.pop(0)
            self._recent.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket ladder.

        Linear interpolation inside the bucket that crosses the target
        rank, clamped to the observed ``min``/``max`` — so the estimate
        is exact at q=0/q=1 and never leaves the observed range.  An
        empty histogram reports 0.0.
        """
        with self._lock:
            return _bucket_quantile(
                q, self._bounds, self._buckets, self._count,
                self._min, self._max,
            )

    def as_dict(self) -> Dict[str, Number]:
        with self._lock:
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._min is not None else 0.0,
                "max": self._max if self._max is not None else 0.0,
                "mean": self.mean,
                "le": list(self._bounds),
                "buckets": list(self._buckets),
            }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a snapshot of this histogram: buckets merge bin-wise.

        Both sides must share bucket bounds (every registry uses
        :data:`DEFAULT_BUCKETS` unless explicitly built otherwise);
        mismatched ladders cannot be merged exactly and raise.
        """
        bounds = tuple(data.get("le", ()))
        buckets = data.get("buckets")
        count = int(data.get("count", 0))
        if count == 0:
            return
        with self._lock:
            if bounds != self._bounds:
                raise ValueError(
                    f"histogram {self.name!r}: cannot merge snapshots with "
                    f"different bucket bounds"
                )
            self._count += count
            self._sum += float(data.get("sum", 0.0))
            for side in ("min", "max"):
                value = data.get(side)
                if value is None:
                    continue
                mine = self._min if side == "min" else self._max
                fold = min if side == "min" else max
                merged = float(value) if mine is None else fold(
                    mine, float(value)
                )
                if side == "min":
                    self._min = merged
                else:
                    self._max = merged
            if buckets is not None:
                for index, extra in enumerate(buckets):
                    self._buckets[index] += int(extra)

    @staticmethod
    def quantile_from_dict(data: Dict[str, Any], q: float) -> float:
        """:meth:`quantile`, computed from an ``as_dict`` snapshot."""
        count = int(data.get("count", 0))
        return _bucket_quantile(
            q,
            tuple(data.get("le", ())),
            data.get("buckets") or [],
            count,
            data.get("min") if count else None,
            data.get("max") if count else None,
        )


def _bucket_quantile(
    q: float,
    bounds: Sequence[float],
    buckets: Sequence[int],
    count: int,
    minimum: Optional[float],
    maximum: Optional[float],
) -> float:
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile q must be within [0, 1]")
    if count == 0 or minimum is None or maximum is None:
        return 0.0
    if not buckets:
        # Legacy snapshot without a ladder: best effort from the range.
        return minimum + (maximum - minimum) * q
    target = q * count
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        if bucket_count == 0:
            continue
        lower = bounds[index - 1] if index > 0 else minimum
        upper = bounds[index] if index < len(bounds) else maximum
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target:
            lower = max(lower, minimum)
            upper = min(upper, maximum)
            if upper <= lower:
                return max(minimum, min(maximum, upper))
            fraction = (target - previous) / bucket_count
            return max(minimum, min(maximum, lower + fraction * (upper - lower)))
    return maximum


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics, created on first use, snapshot-able as plain JSON."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Number]]:
        """All metrics as a name-sorted plain dict (JSON-ready)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].as_dict() for name in sorted(metrics)}

    def merge_snapshot(
        self,
        snapshot: Dict[str, Dict[str, Any]],
        exclude_prefixes: Sequence[str] = (),
    ) -> "MetricsRegistry":
        """Fold another registry's :meth:`snapshot` into this one.

        Merge semantics per type: **counters sum**, **gauges take the
        newest write** (by recorded timestamp), **histograms merge
        bucket-wise** (requiring identical bucket ladders).  The fold is
        commutative and associative, so the distributed coordinator can
        absorb worker snapshots in any order and any number of times —
        as long as each snapshot is folded once.

        ``exclude_prefixes`` skips metric families the caller bills
        through a deduplicating channel instead (e.g. ``eval.`` in the
        distributed merge, where raw per-worker counts would re-bill
        stolen shards).
        """
        getters = {
            "counter": self.counter,
            "gauge": self.gauge,
            "histogram": self.histogram,
        }
        for name in sorted(snapshot):
            if any(name.startswith(prefix) for prefix in exclude_prefixes):
                continue
            data = snapshot[name]
            getter = getters.get(data.get("type"))
            if getter is None:
                continue  # unknown type: skip rather than corrupt
            getter(name).merge_dict(data)
        return self

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


# ---------------------------------------------------------------------------
# process-wide registry
# ---------------------------------------------------------------------------

_REGISTRY = MetricsRegistry()
_ENABLED = False


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def metrics_enabled() -> bool:
    return _ENABLED


def configure_metrics(enabled: bool, reset: bool = False) -> MetricsRegistry:
    """Enable/disable collection on the global registry."""
    global _ENABLED
    if reset:
        _REGISTRY.reset()
    _ENABLED = enabled
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)
