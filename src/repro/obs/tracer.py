"""Hierarchical, thread-safe span tracing for the ARTEMIS pipeline.

The tracer records *spans* — named, timed intervals with attributes —
organized into a per-thread hierarchy: a span started while another span
is open on the same thread becomes its child.  Worker threads (e.g. the
evaluation engine's ``evaluate_batch`` pool) each get their own root
stack, so concurrent evaluation interleaves cleanly instead of producing
a scrambled tree.

Design constraints, in priority order:

1. **Zero cost when disabled.**  Tracing is off by default; every
   instrumentation site goes through :func:`span` (or the
   :func:`traced` decorator), which returns a shared no-op context
   manager after a single global-flag check.  Hot paths (the simulator,
   the geometry caches) stay unperturbed — the evaluation-engine
   benchmark guards this with a < 2% wall-clock budget.
2. **Thread safety.**  The open-span stack is thread-local; the finished
   list is appended under a lock.  Span ids are drawn from
   :class:`itertools.count`, which is atomic under the GIL.
3. **Bounded memory.**  A ``max_spans`` cap drops (and counts) spans
   beyond the limit, so tracing a pathological tuning run cannot
   exhaust memory.

Use either the context-manager or the decorator form::

    from repro.obs import span, traced

    with span("tuning.stage1", candidates=len(plans)):
        ...

    @traced("analysis")
    def characteristics(ir): ...
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "span",
    "traced",
    "tracing_enabled",
]


@dataclass
class Span:
    """One finished (or still-open) traced interval."""

    name: str
    span_id: int
    parent_id: Optional[int]
    thread_id: int
    thread_name: str
    depth: int
    start_s: float  # perf_counter timestamp at entry
    end_s: float = 0.0  # perf_counter timestamp at exit (0 while open)
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)


class Tracer:
    """Collects spans from any number of threads.

    One process-wide instance (see :func:`get_tracer`) serves the whole
    pipeline; tests may build private instances.
    """

    def __init__(self, enabled: bool = False, max_spans: int = 200_000):
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._finished: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attributes) -> "_SpanContext":
        """Context manager opening a span named ``name``.

        When the tracer is disabled this returns a shared no-op context
        manager without allocating anything.
        """
        if not self.enabled:
            return _NOOP
        return _SpanContext(self, name, attributes)

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator form of :meth:`span` (span per call)."""

        def decorate(func: Callable) -> Callable:
            label = name or func.__qualname__

            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return func(*args, **kwargs)
                with _SpanContext(self, label, {}):
                    return func(*args, **kwargs)

            wrapper.__name__ = func.__name__
            wrapper.__qualname__ = func.__qualname__
            wrapper.__doc__ = func.__doc__
            wrapper.__wrapped__ = func
            return wrapper

        return decorate

    def current_span(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def annotate(self, **attributes) -> None:
        """Attach attributes to the calling thread's open span (no-op
        when disabled or outside any span)."""
        current = self.current_span()
        if current is not None:
            current.attributes.update(attributes)

    def _opened(self, item: Span) -> None:
        with self._lock:
            self._open[item.span_id] = item

    def _finish(self, item: Span) -> None:
        with self._lock:
            self._open.pop(item.span_id, None)
            if len(self._finished) >= self.max_spans:
                self.dropped += 1
                return
            self._finished.append(item)

    # -- reading -------------------------------------------------------------

    def finished(self) -> Tuple[Span, ...]:
        """Snapshot of completed spans, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def open_spans(self) -> Tuple[Span, ...]:
        """Currently-open spans across *all* threads, oldest first.

        This is what the live snapshot flusher serializes: a worker
        SIGKILLed mid-evaluation leaves its last flushed open-span set
        as the record of what it was doing when it died.
        """
        with self._lock:
            return tuple(
                sorted(self._open.values(), key=lambda s: s.span_id)
            )

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._open.clear()
            self.dropped = 0


class _SpanContext:
    """Context manager recording one span on the owning tracer."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(self, tracer: Tracer, name: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        stack = tracer._stack()
        parent = stack[-1] if stack else None
        thread = threading.current_thread()
        opened = Span(
            name=self._name,
            span_id=next(tracer._ids),
            parent_id=parent.span_id if parent is not None else None,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            depth=len(stack),
            start_s=time.perf_counter(),
            attributes=self._attributes,
        )
        stack.append(opened)
        tracer._opened(opened)
        self._span = opened
        return opened

    def __exit__(self, exc_type, exc, tb) -> bool:
        opened = self._span
        opened.end_s = time.perf_counter()
        if exc_type is not None:
            opened.attributes.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        # Pop back to (and including) our span even if an exception
        # unwound past intermediate frames that never ran __exit__.
        while stack:
            top = stack.pop()
            if top is opened:
                break
        self._tracer._finish(opened)
        return False


class _NoopContext:
    """Shared do-nothing context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP = _NoopContext()

# ---------------------------------------------------------------------------
# process-wide tracer
# ---------------------------------------------------------------------------

_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


def configure_tracing(
    enabled: bool, max_spans: Optional[int] = None, clear: bool = False
) -> Tracer:
    """Enable/disable the global tracer; optionally resize or clear it."""
    if max_spans is not None:
        _TRACER.max_spans = max_spans
    if clear:
        _TRACER.clear()
    _TRACER.enabled = enabled
    return _TRACER


def span(name: str, **attributes):
    """Open a span on the global tracer (no-op while disabled)."""
    if not _TRACER.enabled:
        return _NOOP
    return _SpanContext(_TRACER, name, attributes)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator: trace every call of the function on the global tracer."""
    return _TRACER.traced(name)
