"""Live observability: periodic per-process metric/span snapshots.

PR 8's distributed runs fork N workers whose metrics registries and
span traces die with them — post-mortem, only the EvalStats deltas that
rode along on journal records survive.  This module closes that gap:

* each worker runs a :class:`SnapshotFlusher` that periodically
  serializes its registry (and, when tracing, its finished + *open*
  spans) to one atomic JSON file, ``obs/worker-NN.metrics.json``;
* the coordinator (or any observer: ``repro top``, the ``/metrics``
  endpoint, the trace stitcher) reads whatever complete snapshots exist
  and folds them with :func:`merge_snapshots` — counters summed, gauges
  last-writer-wins by timestamp, histograms bucket-merged.

Because every flush goes through ``repro.resilience.atomic`` a reader
can never observe a torn snapshot: a SIGKILLed worker leaves its last
complete flush, which still merges and still renders.

Clock discipline: span timestamps are ``time.perf_counter`` values,
whose epoch is not guaranteed comparable across processes.  Every
snapshot therefore carries a ``(wall_ts, perf_s)`` anchor sampled
together at flush time; :func:`span_wall_ts` maps any span timestamp
into shared wall-clock time, which is what lets the trace stitcher lay
workers on one timeline.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..resilience.atomic import atomic_write_json
from .metrics import MetricsRegistry, get_metrics
from .tracer import Span, Tracer, get_tracer

__all__ = [
    "SNAPSHOT_VERSION",
    "SnapshotFlusher",
    "build_snapshot",
    "load_snapshots",
    "merge_snapshots",
    "publish_stats_dict",
    "snapshot_path",
    "span_wall_ts",
    "write_snapshot",
]

SNAPSHOT_VERSION = 1

#: Default cadence between periodic flushes.  Half a second keeps
#: ``repro top`` and ``/metrics`` fresh without measurable cost: a
#: flush serializes a few KB of JSON off the hot path.
DEFAULT_FLUSH_S = 0.5


def snapshot_path(obs_dir: str, worker: int) -> str:
    """Canonical snapshot file for one worker under an ``obs/`` dir."""
    return os.path.join(obs_dir, f"worker-{worker:02d}.metrics.json")


def _span_to_dict(item: Span, open_span: bool = False) -> Dict[str, Any]:
    data = {
        "name": item.name,
        "span_id": item.span_id,
        "parent_id": item.parent_id,
        "thread_id": item.thread_id,
        "thread_name": item.thread_name,
        "depth": item.depth,
        "start_s": item.start_s,
        "end_s": None if open_span else item.end_s,
        "attributes": dict(item.attributes),
    }
    return data


def build_snapshot(
    worker: int,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    seq: int = 0,
    started_ts: Optional[float] = None,
    include_spans: bool = False,
) -> Dict[str, Any]:
    """One process's observable state as a plain JSON document.

    ``include_spans`` adds the tracer's finished and open spans (the
    raw material of the stitched multi-worker chrome trace); metrics
    ride along always.
    """
    registry = registry if registry is not None else get_metrics()
    now_wall = time.time()
    now_perf = time.perf_counter()
    snapshot: Dict[str, Any] = {
        "version": SNAPSHOT_VERSION,
        "worker": worker,
        "pid": os.getpid(),
        "seq": seq,
        "started_ts": started_ts if started_ts is not None else now_wall,
        "ts": now_wall,
        "anchor": {"wall_ts": now_wall, "perf_s": now_perf},
        "metrics": registry.snapshot(),
    }
    if include_spans:
        tracer = tracer if tracer is not None else get_tracer()
        snapshot["spans"] = [_span_to_dict(s) for s in tracer.finished()]
        snapshot["open_spans"] = [
            _span_to_dict(s, open_span=True) for s in tracer.open_spans()
        ]
    return snapshot


def write_snapshot(path: str, snapshot: Dict[str, Any]) -> None:
    """Atomically publish a snapshot (write-tmp-then-rename)."""
    atomic_write_json(path, snapshot)


def span_wall_ts(span_start_s: float, anchor: Dict[str, Any]) -> float:
    """Map a ``perf_counter`` span timestamp to wall-clock seconds."""
    return (
        float(span_start_s)
        - float(anchor.get("perf_s", 0.0))
        + float(anchor.get("wall_ts", 0.0))
    )


def load_snapshots(obs_dir: str) -> List[Dict[str, Any]]:
    """All worker snapshots under ``obs_dir``, sorted by worker id.

    Unreadable or foreign files are skipped: a live run's directory is
    read mid-flight, and the atomic writer guarantees any *existing*
    ``*.metrics.json`` is complete.
    """
    import json

    try:
        names = sorted(os.listdir(obs_dir))
    except OSError:
        return []
    snapshots = []
    for name in names:
        # Only per-worker snapshots: the coordinator's merged snapshot
        # (``merged.metrics.json``) lives in the same directory and must
        # not be folded back into itself.
        if not (name.startswith("worker-") and name.endswith(".metrics.json")):
            continue
        try:
            with open(os.path.join(obs_dir, name), "r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(data, dict) and "metrics" in data:
            snapshots.append(data)
    snapshots.sort(key=lambda s: (s.get("worker", 0), s.get("seq", 0)))
    return snapshots


def merge_snapshots(
    snapshots: Sequence[Dict[str, Any]],
    registry: Optional[MetricsRegistry] = None,
    exclude_prefixes: Sequence[str] = (),
) -> MetricsRegistry:
    """Fold worker snapshots into one registry.

    Counters sum, gauges last-writer-wins by timestamp, histograms
    bucket-merge — commutative and associative, so the fold order never
    changes the result (Hypothesis-verified in
    ``tests/obs/test_live.py``).  Pass ``registry`` to fold on top of
    an existing one (the coordinator folds onto its own process
    registry); by default a fresh registry is returned.
    """
    merged = registry if registry is not None else MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(
            snapshot.get("metrics", {}), exclude_prefixes=exclude_prefixes
        )
    return merged


def publish_stats_dict(
    registry: MetricsRegistry,
    stats: Dict[str, Any],
    prefix: str = "eval",
) -> None:
    """Publish an ``EvalStats.as_dict()`` into an explicit registry.

    Unlike :meth:`EvalStats.publish` this bypasses the global
    enabled-flag (the caller already owns the registry) — it is the
    set-style billing path the coordinator uses to project its
    *deduplicated* evaluation stats into the merged run-level registry.
    """
    for name, value in stats.items():
        if name in ("wall_s", "cpu_s"):
            if value:
                registry.histogram(f"{prefix}.{name}").observe(value)
        elif value >= 0:  # deltas of derived stats can transiently dip
            registry.counter(f"{prefix}.{name}").add(value)


class SnapshotFlusher:
    """Periodic snapshot writer on a daemon thread.

    ``collect`` (optional) runs right before each flush — the worker
    uses it to publish its evaluation-engine stats *delta* into its
    registry, so cumulative counters stay exact across flushes.
    :meth:`stop` performs one final flush, so a cleanly exiting process
    always leaves its complete totals behind; a SIGKILLed one leaves
    its last periodic flush (at most ``interval_s`` stale).
    """

    def __init__(
        self,
        path: str,
        worker: int,
        interval_s: float = DEFAULT_FLUSH_S,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        include_spans: bool = False,
        collect: Optional[Callable[[], None]] = None,
    ):
        self.path = path
        self.worker = worker
        self.interval_s = max(0.05, float(interval_s))
        self._registry = registry
        self._tracer = tracer
        self._include_spans = include_spans
        self._collect = collect
        self._seq = 0
        self._started_ts = time.time()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def flush(self) -> Dict[str, Any]:
        """Collect and atomically write one snapshot; returns it."""
        with self._lock:
            if self._collect is not None:
                self._collect()
            self._seq += 1
            snapshot = build_snapshot(
                self.worker,
                registry=self._registry,
                tracer=self._tracer,
                seq=self._seq,
                started_ts=self._started_ts,
                include_spans=self._include_spans,
            )
            write_snapshot(self.path, snapshot)
            return snapshot

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.flush()
            except Exception:  # pragma: no cover - observation never kills
                pass

    def start(self) -> "SnapshotFlusher":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run,
                name=f"repro-obs-flush-{self.worker}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, final_flush: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if final_flush:
            try:
                self.flush()
            except Exception:  # pragma: no cover
                pass

    def __enter__(self) -> "SnapshotFlusher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
