"""Prometheus text-exposition export and the ``/metrics`` endpoint.

The registry's snapshot maps onto the Prometheus exposition format
(version 0.0.4) with the standard conventions:

* metric names are sanitized (``eval.requests`` → ``repro_eval_requests``)
  and counters gain the ``_total`` suffix;
* histograms emit the full ``_bucket`` (cumulative, ``le``-labelled,
  terminated by ``le="+Inf"``) / ``_sum`` / ``_count`` contract;
* output is deterministic: metrics sorted by exposition name, labels
  sorted by key, so two snapshots of the same registry produce
  byte-identical text (pinned by ``tests/obs/test_prom.py``).

:class:`MetricsHTTPServer` serves ``/metrics`` and ``/healthz`` from a
stdlib ``http.server`` on a background thread — no third-party client
library, no new dependencies.  It binds ``127.0.0.1`` by default; the
exposition is an unauthenticated read of run internals, so exposing it
beyond the local host is an explicit opt-in (``host="0.0.0.0"``).  This
endpoint is the seed of the future ``repro serve`` daemon the ROADMAP
names: the handler takes a *collect callback* returning a registry, so
a long-running server can swap in whatever aggregation it needs.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Mapping, Optional, Union

from .metrics import MetricsRegistry, get_metrics

__all__ = [
    "MetricsHTTPServer",
    "prometheus_name",
    "prometheus_text",
]

#: Exposition content type for format version 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """Sanitize a registry metric name into a valid Prometheus name.

    Dots (the registry's hierarchy separator) and any other invalid
    characters become underscores; the namespace is prepended once.
    """
    flat = _INVALID_CHARS.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if _INVALID_FIRST.match(flat):
        flat = f"_{flat}"
    return flat


def _label_name(name: str) -> str:
    sanitized = _INVALID_LABEL_CHARS.sub("_", name)
    if _INVALID_FIRST.match(sanitized):
        sanitized = f"_{sanitized}"
    return sanitized


def _escape_label_value(value: Any) -> str:
    """Backslash-escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _render_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_label_name(key)}="{_escape_label_value(labels[key])}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(
    registry: Optional[Union[MetricsRegistry, Dict[str, Dict[str, Any]]]] = None,
    namespace: str = "repro",
    labels: Optional[Mapping[str, Any]] = None,
) -> str:
    """Render a registry (or a snapshot dict) as Prometheus exposition.

    ``labels`` are attached to every sample (e.g. ``{"worker": 3}``),
    merged under any histogram ``le`` label.  Output order is
    deterministic: one ``# HELP``/``# TYPE`` header pair per metric,
    metrics sorted by exposition name.
    """
    if registry is None:
        registry = get_metrics()
    snapshot = (
        registry.snapshot()
        if isinstance(registry, MetricsRegistry)
        else registry
    )
    base_labels = dict(labels or {})
    blocks = []
    for raw_name in snapshot:
        data = snapshot[raw_name]
        kind = data.get("type")
        name = prometheus_name(raw_name, namespace)
        lines = []
        if kind == "counter":
            name = f"{name}_total"
            lines.append(f"# HELP {name} repro counter {raw_name}")
            lines.append(f"# TYPE {name} counter")
            lines.append(
                f"{name}{_render_labels(base_labels)} "
                f"{_format_value(data.get('value', 0))}"
            )
        elif kind == "gauge":
            lines.append(f"# HELP {name} repro gauge {raw_name}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(
                f"{name}{_render_labels(base_labels)} "
                f"{_format_value(data.get('value', 0))}"
            )
        elif kind == "histogram":
            lines.append(f"# HELP {name} repro histogram {raw_name}")
            lines.append(f"# TYPE {name} histogram")
            bounds = list(data.get("le", ()))
            buckets = list(data.get("buckets", ()))
            cumulative = 0
            for index, bound in enumerate(bounds):
                cumulative += int(buckets[index]) if index < len(buckets) else 0
                bucket_labels = dict(base_labels)
                bucket_labels["le"] = _format_value(float(bound))
                lines.append(
                    f"{name}_bucket{_render_labels(bucket_labels)} "
                    f"{cumulative}"
                )
            bucket_labels = dict(base_labels)
            bucket_labels["le"] = "+Inf"
            lines.append(
                f"{name}_bucket{_render_labels(bucket_labels)} "
                f"{int(data.get('count', 0))}"
            )
            lines.append(
                f"{name}_sum{_render_labels(base_labels)} "
                f"{_format_value(data.get('sum', 0.0))}"
            )
            lines.append(
                f"{name}_count{_render_labels(base_labels)} "
                f"{int(data.get('count', 0))}"
            )
        else:
            continue
        blocks.append((name, lines))
    out = []
    for _, lines in sorted(blocks, key=lambda block: block[0]):
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


Collect = Callable[[], Union[MetricsRegistry, Dict[str, Dict[str, Any]], str]]


class _Handler(BaseHTTPRequestHandler):
    """``/metrics`` + ``/healthz``; anything else is a 404."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            try:
                collected = self.server.collect()  # type: ignore[attr-defined]
                body = (
                    collected
                    if isinstance(collected, str)
                    else prometheus_text(collected)
                ).encode("utf-8")
            except Exception as exc:  # collection must never kill the run
                self._respond(500, f"collect failed: {exc}\n".encode("utf-8"))
                return
            self._respond(200, body, CONTENT_TYPE)
        elif path == "/healthz":
            self._respond(200, b"ok\n")
        else:
            self._respond(404, b"not found\n")

    def _respond(
        self, status: int, body: bytes, content_type: str = "text/plain"
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes are routine; stay silent on stderr


class MetricsHTTPServer:
    """Background ``/metrics`` endpoint over a collect callback.

    ``port=0`` binds an ephemeral port (read it back from ``.port``
    after :meth:`start`), which is what tests and parallel CI runs use.
    The serving thread is daemonic: a crashed run never hangs on the
    exporter.
    """

    def __init__(
        self,
        collect: Optional[Collect] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._collect = collect or get_metrics
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), _Handler
        )
        httpd.daemon_threads = True
        httpd.collect = self._collect  # type: ignore[attr-defined]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
