"""Self-contained HTML report for a search log (``repro report``).

Renders the candidate-level event stream of :mod:`repro.obs.search` as a
single HTML file with inline SVG — no JavaScript, no external assets —
so the artifact can be archived from CI and opened anywhere:

* summary tiles (candidates priced, distinct plans, cache hit rate,
  winner GFLOPS);
* a log-log **roofline scatter** of every measured candidate (DRAM
  operational intensity vs achieved GFLOPS) under the device's roofline
  (bandwidth slope + compute peak), winner highlighted;
* the **convergence curve** (running best GFLOPS over candidate
  sequence);
* the winner explanation and runner-up counter deltas from
  :mod:`repro.obs.explain`;
* the per-phase timing table (the ``phase`` footer records) and the
  final evaluation-engine statistics.

Chart styling follows the repo-wide viz conventions: categorical
palette slots in fixed order (slot 1 blue for candidates, slot 2 orange
for the winner), both validated for light and dark surfaces; thin
marks; text in ink tokens, never series colors; native ``<title>``
tooltips on every mark.
"""

from __future__ import annotations

import html
import math
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .explain import ExplainReport, build_explain

__all__ = ["render_html"]

# Validated palette (reference instance): categorical slots 1-2 carry
# the two series (candidates, winner); everything else is chart chrome.
_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: #f9f9f7; color: #0b0b0b;
}
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;   /* candidates */
  --series-2: #eb6834;   /* winner */
}
@media (prefers-color-scheme: dark) {
  body { background: #0d0d0d; color: #ffffff; }
  .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
  }
}
.viz-root {
  max-width: 980px; margin: 0 auto;
  color: var(--text-primary);
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 120px;
}
.tile .v { font-size: 22px; }
.tile .k { font-size: 12px; color: var(--text-secondary); margin-top: 2px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px;
}
svg text { font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
table {
  border-collapse: collapse; width: 100%;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; font-size: 13px;
}
th, td { text-align: left; padding: 6px 10px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
th {
  color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--gridline);
}
tr + tr td { border-top: 1px solid var(--gridline); }
.legend { font-size: 12px; color: var(--text-secondary); margin: 8px 0 0; }
.swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin: 0 4px 0 12px; vertical-align: baseline;
}
.mono { font-family: ui-monospace, Menlo, Consolas, monospace; }
.reason { color: var(--text-muted); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _nice_log_ticks(lo: float, hi: float) -> List[float]:
    """Decade ticks (1eN) covering [lo, hi]."""
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0 ** e for e in range(first, last + 1)]


def _fmt_tick(value: float) -> str:
    if value >= 1:
        return f"{value:g}"
    return f"{value:.3g}"


class _LogScale:
    """Log-space linear map from a data range onto pixel coordinates."""

    def __init__(self, lo: float, hi: float, p0: float, p1: float):
        lo = max(lo, 1e-12)
        hi = max(hi, lo * 1.0001)
        self.lo, self.hi = math.log10(lo), math.log10(hi)
        self.p0, self.p1 = p0, p1

    def __call__(self, value: float) -> float:
        value = max(value, 1e-12)
        t = (math.log10(value) - self.lo) / (self.hi - self.lo)
        return self.p0 + t * (self.p1 - self.p0)


def _roofline_svg(
    report: ExplainReport, measured_events: Sequence[Dict[str, Any]]
) -> str:
    """Log-log scatter of every measured candidate under the roofline."""
    device = report.device or {}
    peak = device.get("peak_gflops")
    dram_bw = device.get("dram_bw_gbs")

    points: List[Tuple[float, float, str, str, bool]] = []
    winner_fp = (
        report.winner_candidate.fingerprint
        if report.winner_candidate is not None
        else None
    )
    # One point per candidate record (the log's whole history, cache
    # hits included — the chart answers "what did the search look at").
    seen_fp_best: Dict[str, float] = {}
    for cand_dict in measured_events:
        oi = (cand_dict.get("counters") or {}).get("oi_dram")
        gflops = cand_dict.get("gflops")
        if not oi or not gflops or oi <= 0 or gflops <= 0:
            continue
        fp = cand_dict.get("fingerprint", "")
        label = (
            f"{cand_dict.get('plan', '')}\n"
            f"OI {oi:.2f} FLOP/B, {gflops:.1f} GFLOPS, "
            f"bound at {cand_dict.get('bottleneck', '?')}"
        )
        points.append((oi, gflops, fp, label, fp == winner_fp))
        best = seen_fp_best.get(fp, 0.0)
        seen_fp_best[fp] = max(best, gflops)

    if not points:
        return "<p class='sub'>no measured candidates to plot</p>"

    width, height = 920, 420
    left, right, top, bottom = 64, 20, 16, 44
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs) / 1.5, max(xs) * 1.5
    y_lo, y_hi = min(ys) / 1.5, max(ys) * 1.5
    if peak:
        y_hi = max(y_hi, peak * 1.3)
        if dram_bw:
            # Keep the ridge point in frame so both roof segments show.
            x_hi = max(x_hi, peak / dram_bw * 2.0)
    sx = _LogScale(x_lo, x_hi, left, width - right)
    sy = _LogScale(y_lo, y_hi, height - bottom, top)

    parts: List[str] = [
        f"<svg viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='Roofline scatter of evaluated candidates'>"
    ]

    # Gridlines + tick labels (decades).
    for tick in _nice_log_ticks(x_lo, x_hi):
        if not (x_lo <= tick <= x_hi):
            continue
        x = sx(tick)
        parts.append(
            f"<line x1='{x:.1f}' y1='{top}' x2='{x:.1f}' "
            f"y2='{height - bottom}' stroke='var(--gridline)' "
            f"stroke-width='1'/>"
        )
        parts.append(
            f"<text x='{x:.1f}' y='{height - bottom + 16}' "
            f"text-anchor='middle' font-size='11' "
            f"fill='var(--text-muted)'>{_fmt_tick(tick)}</text>"
        )
    for tick in _nice_log_ticks(y_lo, y_hi):
        if not (y_lo <= tick <= y_hi):
            continue
        y = sy(tick)
        parts.append(
            f"<line x1='{left}' y1='{y:.1f}' x2='{width - right}' "
            f"y2='{y:.1f}' stroke='var(--gridline)' stroke-width='1'/>"
        )
        parts.append(
            f"<text x='{left - 6}' y='{y + 4:.1f}' text-anchor='end' "
            f"font-size='11' fill='var(--text-muted)'>"
            f"{_fmt_tick(tick)}</text>"
        )

    # Roofline: DRAM bandwidth slope (GFLOPS = BW * OI) and compute peak,
    # drawn as chart chrome (reference lines, not series).
    if peak and dram_bw:
        ridge_oi = peak / dram_bw
        # Bandwidth-limited segment, clipped to the plot window.
        oi_start = max(x_lo, y_lo / dram_bw)
        oi_end = min(ridge_oi, x_hi)
        if oi_end > oi_start:
            parts.append(
                f"<line x1='{sx(oi_start):.1f}' "
                f"y1='{sy(oi_start * dram_bw):.1f}' "
                f"x2='{sx(oi_end):.1f}' y2='{sy(oi_end * dram_bw):.1f}' "
                f"stroke='var(--baseline)' stroke-width='2'/>"
            )
        if ridge_oi < x_hi and y_lo <= peak <= y_hi:
            parts.append(
                f"<line x1='{sx(max(ridge_oi, x_lo)):.1f}' "
                f"y1='{sy(peak):.1f}' x2='{sx(x_hi):.1f}' "
                f"y2='{sy(peak):.1f}' "
                f"stroke='var(--baseline)' stroke-width='2'/>"
            )
            parts.append(
                f"<text x='{width - right - 4}' y='{sy(peak) - 6:.1f}' "
                f"text-anchor='end' font-size='11' "
                f"fill='var(--text-secondary)'>"
                f"peak {peak:.0f} GFLOPS</text>"
            )
        if x_lo <= ridge_oi <= x_hi:
            parts.append(
                f"<text x='{sx(ridge_oi):.1f}' y='{height - bottom - 6}' "
                f"text-anchor='middle' font-size='11' "
                f"fill='var(--text-secondary)'>"
                f"ridge {ridge_oi:.2f}</text>"
            )

    # Candidate marks (series 1), winner on top (series 2) with a 2px
    # surface ring so overlapping marks stay separable.
    winner_marks: List[str] = []
    for oi, gflops, fp, label, is_winner in points:
        x, y = sx(oi), sy(gflops)
        if is_winner:
            winner_marks.append(
                f"<circle cx='{x:.1f}' cy='{y:.1f}' r='6' "
                f"fill='var(--series-2)' stroke='var(--surface-1)' "
                f"stroke-width='2'><title>{_esc(label)}</title></circle>"
            )
        else:
            parts.append(
                f"<circle cx='{x:.1f}' cy='{y:.1f}' r='3.5' "
                f"fill='var(--series-1)' fill-opacity='0.55'>"
                f"<title>{_esc(label)}</title></circle>"
            )
    parts.extend(winner_marks)

    # Axis titles.
    parts.append(
        f"<text x='{(left + width - right) / 2:.0f}' y='{height - 6}' "
        f"text-anchor='middle' font-size='12' "
        f"fill='var(--text-secondary)'>"
        f"operational intensity (FLOP/byte, DRAM)</text>"
    )
    parts.append(
        f"<text x='14' y='{(top + height - bottom) / 2:.0f}' "
        f"text-anchor='middle' font-size='12' fill='var(--text-secondary)' "
        f"transform='rotate(-90 14 {(top + height - bottom) / 2:.0f})'>"
        f"achieved GFLOPS</text>"
    )
    parts.append("</svg>")
    parts.append(
        "<p class='legend'>"
        "<span class='swatch' style='background:var(--series-1)'></span>"
        "candidates"
        "<span class='swatch' style='background:var(--series-2)'></span>"
        "winner"
        "<span class='swatch' style='background:var(--baseline)'></span>"
        "device roofline (DRAM)"
        "</p>"
    )
    return "".join(parts)


def _convergence_svg(report: ExplainReport) -> str:
    """Running best GFLOPS over candidate sequence (step line)."""
    trajectory = list(report.convergence)
    if not trajectory:
        return "<p class='sub'>no measured candidates to plot</p>"
    total = max(report.candidates, trajectory[-1][0])

    width, height = 920, 240
    left, right, top, bottom = 64, 20, 14, 40
    y_max = max(g for _, g in trajectory) * 1.1
    y_min = 0.0

    def px(seq: float) -> float:
        return left + (seq / max(total, 1)) * (width - left - right)

    def py(gflops: float) -> float:
        t = (gflops - y_min) / (y_max - y_min)
        return (height - bottom) - t * (height - bottom - top)

    parts: List[str] = [
        f"<svg viewBox='0 0 {width} {height}' role='img' "
        f"aria-label='Search convergence: best GFLOPS by candidate'>"
    ]
    # Horizontal gridlines at ~4 even steps.
    step = y_max / 4
    for index in range(5):
        value = index * step
        y = py(value)
        parts.append(
            f"<line x1='{left}' y1='{y:.1f}' x2='{width - right}' "
            f"y2='{y:.1f}' stroke='var(--gridline)' stroke-width='1'/>"
        )
        parts.append(
            f"<text x='{left - 6}' y='{y + 4:.1f}' text-anchor='end' "
            f"font-size='11' fill='var(--text-muted)'>{value:.0f}</text>"
        )

    # Step polyline: best-so-far holds flat until the next improvement.
    coords: List[str] = []
    prev_y: Optional[float] = None
    for seq, gflops in trajectory:
        x, y = px(seq), py(gflops)
        if prev_y is not None:
            coords.append(f"{x:.1f},{prev_y:.1f}")
        coords.append(f"{x:.1f},{y:.1f}")
        prev_y = y
    coords.append(f"{px(total):.1f},{prev_y:.1f}")
    parts.append(
        f"<polyline points='{' '.join(coords)}' fill='none' "
        f"stroke='var(--series-1)' stroke-width='2' "
        f"stroke-linejoin='round'/>"
    )
    for seq, gflops in trajectory:
        parts.append(
            f"<circle cx='{px(seq):.1f}' cy='{py(gflops):.1f}' r='4' "
            f"fill='var(--series-1)' stroke='var(--surface-1)' "
            f"stroke-width='2'>"
            f"<title>candidate #{seq}: best {gflops:.1f} GFLOPS</title>"
            f"</circle>"
        )

    for frac in (0, 0.25, 0.5, 0.75, 1.0):
        seq = round(total * frac)
        parts.append(
            f"<text x='{px(seq):.1f}' y='{height - bottom + 16}' "
            f"text-anchor='middle' font-size='11' "
            f"fill='var(--text-muted)'>{seq}</text>"
        )
    parts.append(
        f"<text x='{(left + width - right) / 2:.0f}' y='{height - 4}' "
        f"text-anchor='middle' font-size='12' "
        f"fill='var(--text-secondary)'>candidate sequence</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def _tiles(report: ExplainReport) -> str:
    stats = report.stats or {}
    hits = stats.get("hits")
    requests = stats.get("requests")
    hit_rate = (
        f"{hits / requests * 100:.0f}%"
        if hits is not None and requests
        else "n/a"
    )
    winner = report.winner_candidate
    winner_gflops = f"{winner.gflops:.0f}" if winner else "n/a"
    variant = (report.winner or {}).get("variant", "n/a")
    tiles = [
        (str(report.candidates), "candidates priced"),
        (str(report.distinct_plans), "distinct plans"),
        (hit_rate, "cache hit rate"),
        (winner_gflops, "winner GFLOPS"),
        (_esc(variant), "winning variant"),
    ]
    cells = "".join(
        f"<div class='tile'><div class='v'>{value}</div>"
        f"<div class='k'>{label}</div></div>"
        for value, label in tiles
    )
    return f"<div class='tiles'>{cells}</div>"


def _winner_section(report: ExplainReport) -> str:
    winner = report.winner_candidate
    if winner is None:
        return "<p class='sub'>no measured winner in this log</p>"
    parts: List[str] = []
    variant = (report.winner or {}).get("variant")
    parts.append(
        f"<p><span class='mono'>{_esc(winner.plan)}</span>"
        + (f" <span class='sub'>({_esc(variant)})</span>" if variant else "")
        + "</p>"
    )
    parts.append(
        f"<p class='sub'>predicted {winner.gflops:.1f} GFLOPS, "
        f"{winner.time_ms:.3f} ms, occupancy {winner.occupancy:.2f}"
        + (f", bound at {_esc(winner.bottleneck)}" if winner.bottleneck else "")
        + "</p>"
    )
    if report.runners:
        rows: List[str] = [
            "<tr><th>runner-up</th><th class='num'>GFLOPS</th>"
            "<th class='num'>gap</th><th class='num'>DRAM bytes</th>"
            "<th class='num'>spill bytes</th><th>bound</th></tr>"
        ]
        for runner in report.runners:
            cand = runner.candidate
            dram = runner.deltas.get("dram_bytes")
            spill = runner.deltas.get("spill_bytes")

            def ratio_cell(delta) -> str:
                if delta is None:
                    return "<td class='num'>–</td>"
                _, _, ratio = delta
                if ratio is None:
                    return "<td class='num'>–</td>"
                return f"<td class='num'>{ratio:.2f}×</td>"

            rows.append(
                f"<tr><td class='mono'>{_esc(cand.plan)}</td>"
                f"<td class='num'>{cand.gflops:.1f}</td>"
                f"<td class='num'>{runner.gflops_gap_pct:+.1f}%</td>"
                f"{ratio_cell(dram)}{ratio_cell(spill)}"
                f"<td>{_esc(cand.bottleneck or '–')}</td></tr>"
            )
        parts.append(
            "<table>" + "".join(rows) + "</table>"
            "<p class='legend'>byte columns are the runner-up's traffic "
            "as a multiple of the winner's (1.00× = equal)</p>"
        )
    return "".join(parts)


def _advice_section(report: ExplainReport) -> str:
    if not report.advice:
        return ""
    parts = ["<h2>Advisor rules</h2>"]
    rows = [
        "<tr><th>kernel</th><th>bound</th><th>rules fired</th></tr>"
    ]
    for entry in report.advice:
        rules = entry.get("rules") or []
        rendered = "<br>".join(_esc(rule) for rule in rules) or "–"
        rows.append(
            f"<tr><td class='mono'>{_esc(entry.get('kernel', '?'))}</td>"
            f"<td>{_esc(entry.get('bound_level', '?'))}</td>"
            f"<td>{rendered}</td></tr>"
        )
    parts.append("<table>" + "".join(rows) + "</table>")
    return "".join(parts)


def _phases_section(report: ExplainReport) -> str:
    if not report.phases:
        return ""
    parts = ["<h2>Phase timings</h2>"]
    rows = [
        "<tr><th>phase</th><th class='num'>calls</th>"
        "<th class='num'>total ms</th><th class='num'>self ms</th></tr>"
    ]
    for phase in report.phases:
        rows.append(
            f"<tr><td>{_esc(phase.get('name', '?'))}</td>"
            f"<td class='num'>{phase.get('count', 0)}</td>"
            f"<td class='num'>{(phase.get('total_ms') or 0):.2f}</td>"
            f"<td class='num'>{(phase.get('self_ms') or 0):.2f}</td></tr>"
        )
    parts.append("<table>" + "".join(rows) + "</table>")
    return "".join(parts)


def _dispositions_section(report: ExplainReport) -> str:
    if not report.dispositions and not report.markers:
        return ""
    parts = ["<h2>Dispositions</h2>"]
    rows = ["<tr><th>disposition</th><th class='num'>count</th></tr>"]
    for name, count in sorted(report.dispositions.items()):
        rows.append(
            f"<tr><td>{_esc(name)}</td><td class='num'>{count}</td></tr>"
        )
    for name, count in sorted(report.markers.items()):
        rows.append(
            f"<tr><td class='reason'>{_esc(name)} (marker)</td>"
            f"<td class='num'>{count}</td></tr>"
        )
    parts.append("<table>" + "".join(rows) + "</table>")
    return "".join(parts)


_LINT_REASON = re.compile(r"\[(RL\d{3})\]")


def _lint_section(events: Sequence[Dict[str, Any]]) -> str:
    """Prescreen rejections and prunes grouped by lint rule code."""
    by_code: Dict[str, int] = {}
    pruned = 0
    for event in events:
        kind = event.get("kind")
        reason = str(event.get("reason") or "")
        if kind == "candidate":
            match = _LINT_REASON.search(reason)
            if match:
                code = match.group(1)
                by_code[code] = by_code.get(code, 0) + 1
        elif kind == "prune" and reason.startswith("lint."):
            pruned += int(event.get("dropped", 1))
    if not by_code and not pruned:
        return ""
    from ..lint.diagnostics import RULES

    parts = ["<h2>Lint rejections</h2>"]
    rows = ["<tr><th>rule</th><th></th><th class='num'>candidates</th></tr>"]
    for code, count in sorted(by_code.items()):
        name = RULES[code].name if code in RULES else ""
        rows.append(
            f"<tr><td>{_esc(code)}</td><td class='reason'>{_esc(name)}</td>"
            f"<td class='num'>{count}</td></tr>"
        )
    if pruned:
        rows.append(
            "<tr><td>RL205</td><td class='reason'>overtile "
            "(pruned before measurement)</td>"
            f"<td class='num'>{pruned}</td></tr>"
        )
    parts.append("<table>" + "".join(rows) + "</table>")
    return "".join(parts)


def render_html(
    events: Sequence[Dict[str, Any]],
    title: str = "ARTEMIS search report",
    top_k: int = 3,
) -> str:
    """Render a search-event stream as a standalone HTML document."""
    report = build_explain(events, top_k=top_k)
    # The roofline scatter plots *every* measured candidate record, not
    # just the per-fingerprint representatives the explain report keeps.
    measured_events = [
        e
        for e in events
        if e.get("kind") == "candidate" and e.get("gflops") is not None
    ]

    device = report.device or {}
    device_line = (
        f"device {_esc(device.get('name', '?'))} · "
        f"peak {device.get('peak_gflops', 0):.0f} GFLOPS · "
        f"DRAM {device.get('dram_bw_gbs', 0):.0f} GB/s"
        if device
        else "device unknown (header missing device payload)"
    )

    body = [
        f"<h1>{_esc(title)}</h1>",
        f"<p class='sub'>{device_line}</p>",
        _tiles(report),
        "<h2>Roofline: every candidate the search priced</h2>",
        f"<div class='panel'>{_roofline_svg(report, measured_events)}</div>",
        "<h2>Convergence</h2>",
        f"<div class='panel'>{_convergence_svg(report)}</div>",
        "<h2>Why this plan</h2>",
        _winner_section(report),
        _advice_section(report),
        _phases_section(report),
        _dispositions_section(report),
        _lint_section(events),
    ]
    return (
        "<!DOCTYPE html>"
        "<html lang='en'><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title>"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>"
        f"<style>{_CSS}</style></head>"
        f"<body><div class='viz-root'>{''.join(body)}</div></body></html>"
    )
