"""Coordinator: publish shards, merge journals, survive dead workers.

The coordinator owns three things:

* the **worker pool** — N OS processes running
  :func:`repro.distrib.worker.worker_main`, spawned once and reused
  across every batch the search produces;
* the **merged journal** — the single :class:`TuningJournal` the
  calling tuner replays from.  The merge loop tails each worker's
  journal (complete lines only), folds records in first-come-first-kept
  by content key (:meth:`TuningJournal.merge_record`), and bills each
  absorbed record's :class:`EvalStats` delta into the shared engine —
  so a shard evaluated twice after a steal is billed exactly once;
* the **safety net** — a lease observer (claim/steal/expiry counters,
  per-shard completion spans), an optional deterministic kill harness
  for chaos tests, and an inline takeover path that evaluates whatever
  remains on the coordinator's own engine when every worker is dead or
  a deadline passes, so ``run_shards`` always terminates.

Determinism argument: the coordinator never *selects* anything — it
only ensures every candidate key acquires a journal record.  Winner
selection happens in the calling :class:`HierarchicalTuner`, replaying
the merged journal through exactly the code path PR 3 proved
bit-identical for checkpoint resume.  Scheduling races change which
worker evaluates a candidate, never the recorded outcome (the
analytical model is deterministic per candidate), so the merged best
plan is byte-identical to a single-process run.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..codegen.plan import KernelPlan
from ..gpu.device import DeviceSpec, P100
from ..obs import counter as _counter, metrics_enabled as _metrics_enabled
from ..obs import span as _span, tracing_enabled as _tracing_enabled
from ..obs.metrics import MetricsRegistry
from ..resilience.checkpoint import (
    TuningJournal,
    plan_from_dict,
    plan_to_dict,
)
from ..resilience.errors import ReproError, UsageError
from ..tuning.evaluator import PlanEvaluator
from .files import DistribPaths, JournalTailReader, lease_expired, read_json
from .shards import Shard, partition
from .worker import WorkerConfig, stats_from_dict, worker_main

__all__ = ["DistribStats", "DistributedCoordinator", "KillPolicy"]


@dataclass
class DistribStats:
    """Counters describing one distributed run (``distrib.*`` in obs)."""

    shards_published: int = 0
    shards_claimed: int = 0
    shards_stolen: int = 0
    shards_requeued: int = 0
    lease_expiries: int = 0
    dedup_hits: int = 0
    records_merged: int = 0
    takeovers: int = 0
    workers_killed: int = 0
    batches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "shards_published": self.shards_published,
            "shards_claimed": self.shards_claimed,
            "shards_stolen": self.shards_stolen,
            "shards_requeued": self.shards_requeued,
            "lease_expiries": self.lease_expiries,
            "dedup_hits": self.dedup_hits,
            "records_merged": self.records_merged,
            "takeovers": self.takeovers,
            "workers_killed": self.workers_killed,
            "batches": self.batches,
        }


@dataclass(frozen=True)
class KillPolicy:
    """Chaos harness: SIGKILL ``victim`` once it has journaled records.

    ``after_records`` counts *merged* records attributed to the victim;
    firing then guarantees the victim dies mid-shard (its lease is
    live, its shard unfinished), which is the scenario the acceptance
    criteria pin: the run must still complete with a bit-identical
    winner and no double-billed evaluations.
    """

    victim: int
    after_records: int = 1


@dataclass
class _LeaseView:
    """What the coordinator last observed about one shard's lease."""

    generation: int = -1
    worker: Optional[int] = None
    expired_generations: Set[int] = field(default_factory=set)


class DistributedCoordinator:
    """Shard publisher, journal merger and worker-pool supervisor."""

    def __init__(
        self,
        root: str,
        workers: int,
        device: DeviceSpec = P100,
        engine: Optional[PlanEvaluator] = None,
        journal: Optional[TuningJournal] = None,
        lease_ttl: float = 2.0,
        poll_s: float = 0.02,
        shards_per_worker: int = 2,
        min_batch: int = 2,
        vectorize: Optional[bool] = None,
        chaos: Optional[Dict[str, Any]] = None,
        straggle_s: float = 0.0,
        straggle_worker: Optional[int] = None,
        partition_claims: bool = False,
        kill: Optional[KillPolicy] = None,
        deadline_s: float = 300.0,
        flush_s: float = 0.5,
    ):
        if workers < 1:
            raise UsageError("--distributed requires at least 1 worker")
        if lease_ttl <= 0:
            raise UsageError("lease TTL must be positive")
        self.paths = DistribPaths(root).ensure()
        self.workers = workers
        self.device = device
        self.engine = engine
        self.lease_ttl = lease_ttl
        self.poll_s = poll_s
        self.shards_per_worker = shards_per_worker
        self.min_batch = min_batch
        self.vectorize = vectorize
        self.chaos = chaos
        self.straggle_s = straggle_s
        self.straggle_worker = straggle_worker
        self.partition_claims = partition_claims
        self.kill = kill
        self.deadline_s = deadline_s
        self.flush_s = flush_s
        self.stats = DistribStats()
        self.generation = 0
        self._owns_journal = journal is None
        self.journal = journal or TuningJournal(
            self.paths.merged_path, device=device.name
        )
        self._procs: List[Any] = []
        self._readers: Dict[int, JournalTailReader] = {}
        self._lease_views: Dict[str, _LeaseView] = {}
        self._done_seen: Set[str] = set()
        self._records_by_worker: Dict[int, int] = {}
        self._kill_fired = False
        self._closed = False
        from ..resilience.atomic import atomic_write_json

        atomic_write_json(
            self.paths.config_path,
            {
                "device": device.name,
                "workers": workers,
                "lease_ttl": lease_ttl,
                "shards_per_worker": shards_per_worker,
                "merged": self.journal.path,
                "flush_s": flush_s,
                "created_ts": time.time(),
            },
        )

    # -- tuner hook -------------------------------------------------------------

    def make_tuner(self, ir, **kwargs):
        """Drop-in for the ``make_tuner`` hooks in ``deep_tune``/``optimize``.

        Adopts the caller's evaluation engine (so merged stats land in
        the stats the CLI reports) and forces the merged journal in as
        the tuner's checkpoint — replay from it is what makes the
        distributed winner bit-identical.
        """
        from .tuner import DistributedTuner

        engine = kwargs.get("evaluator")
        if engine is not None:
            self.engine = engine
        else:
            if self.engine is None:
                self.engine = PlanEvaluator(
                    device=self.device, vectorize=self.vectorize
                )
            kwargs["evaluator"] = self.engine
        kwargs["journal"] = self.journal
        return DistributedTuner(ir, coordinator=self, **kwargs)

    # -- worker pool ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._procs:
            return
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context("spawn")
        for worker_id in range(self.workers):
            config = WorkerConfig(
                worker_id=worker_id,
                device=self.device.name,
                lease_ttl=self.lease_ttl,
                poll_s=self.poll_s,
                vectorize=self.vectorize,
                chaos=self.chaos,
                straggle_s=(
                    self.straggle_s
                    if self.straggle_worker in (None, worker_id)
                    and self.straggle_s
                    else 0.0
                ),
                claim_residue=(
                    (worker_id, self.workers) if self.partition_claims else None
                ),
                metrics=_metrics_enabled(),
                trace=_tracing_enabled(),
                flush_s=self.flush_s,
            )
            process = ctx.Process(
                target=worker_main,
                args=(self.paths.root, config.to_dict()),
                name=f"repro-distrib-{worker_id}",
                daemon=True,
            )
            process.start()
            self._procs.append(process)

    def alive_workers(self) -> int:
        return sum(1 for process in self._procs if process.is_alive())

    # -- the batch protocol -----------------------------------------------------

    def run_shards(
        self,
        ir,
        irfp: str,
        tag: str,
        fresh: Sequence[Tuple[str, KernelPlan]],
    ) -> None:
        """Publish one batch of keyed candidates; block until resolved.

        On return every key in ``fresh`` has a record (candidate or
        failure) in the merged journal, so the caller's journal replay
        finds them all.
        """
        if not fresh:
            return
        self.start()
        self.paths.publish_ir(irfp, ir)
        self.generation += 1
        self.stats.batches += 1
        keyed = [(key, plan_to_dict(plan)) for key, plan in fresh]
        shards = partition(
            self.generation,
            irfp,
            tag,
            keyed,
            self.workers * self.shards_per_worker,
        )
        for shard in shards:
            shard.write(self.paths)
        self.stats.shards_published += len(shards)
        self._bump("distrib.shards_published", len(shards))
        pending: Set[str] = {key for key, _ in keyed}
        plans_by_key = dict(keyed)
        resolved: Set[str] = set()
        deadline = time.monotonic() + self.deadline_s
        with _span(
            "distrib.batch",
            generation=self.generation,
            candidates=len(keyed),
            shards=len(shards),
        ):
            while pending - resolved:
                self._merge_step(pending, resolved)
                self._observe(shards)
                self._maybe_kill()
                if not pending - resolved:
                    break
                if self.alive_workers() == 0 or time.monotonic() > deadline:
                    self._take_over(ir, plans_by_key, pending, resolved)
                    break
                time.sleep(self.poll_s)

    # -- merge ------------------------------------------------------------------

    def _reader(self, worker_id: int) -> JournalTailReader:
        if worker_id not in self._readers:
            self._readers[worker_id] = JournalTailReader(
                self.paths.worker_journal_path(worker_id)
            )
        return self._readers[worker_id]

    def _merge_step(
        self,
        pending: Optional[Set[str]] = None,
        resolved: Optional[Set[str]] = None,
    ) -> None:
        """Drain every worker journal into the merged journal.

        First record per content key wins; later duplicates (steal
        overlap, races) are dropped and counted as ``dedup_hits`` so
        their evaluation cost is never billed twice.
        """
        for worker_id in range(self.workers):
            for record in self._reader(worker_id).poll():
                kind = record.get("kind")
                if kind == "header":
                    continue
                key = record.get("key")
                source = record.get("worker")
                if isinstance(source, int):
                    self._records_by_worker[source] = (
                        self._records_by_worker.get(source, 0) + 1
                    )
                if self.journal.merge_record(record):
                    self.stats.records_merged += 1
                    self._bump("distrib.records_merged")
                    delta = record.get("stats")
                    if delta and self.engine is not None:
                        self.engine.stats.add(stats_from_dict(delta))
                else:
                    self.stats.dedup_hits += 1
                    self._bump("distrib.dedup_hits")
                if (
                    pending is not None
                    and resolved is not None
                    and key in pending
                ):
                    resolved.add(key)

    # -- lease observation ------------------------------------------------------

    def _observe(self, shards: Sequence[Shard]) -> None:
        now = time.time()
        for shard in shards:
            sid = shard.sid
            view = self._lease_views.setdefault(sid, _LeaseView())
            lease = read_json(self.paths.lease_path(sid))
            if lease is not None:
                generation = int(lease.get("generation", 0))
                if view.generation < 0:
                    self.stats.shards_claimed += 1
                    self._bump("distrib.shards_claimed")
                elif generation > view.generation:
                    self.stats.shards_stolen += 1
                    self.stats.shards_requeued += 1
                    self._bump("distrib.shards_stolen")
                    self._bump("distrib.shards_requeued")
                view.generation = max(view.generation, generation)
                view.worker = lease.get("worker")
                if (
                    lease_expired(lease, self.lease_ttl, now)
                    and generation not in view.expired_generations
                    and not self.paths.is_done(sid)
                ):
                    view.expired_generations.add(generation)
                    self.stats.lease_expiries += 1
                    self._bump("distrib.lease_expiries")
            if sid not in self._done_seen and self.paths.is_done(sid):
                self._done_seen.add(sid)
                done = read_json(self.paths.done_path(sid)) or {}
                with _span(
                    "distrib.shard",
                    shard=sid,
                    worker=done.get("worker"),
                    generation=done.get("generation"),
                    candidates=done.get("candidates"),
                ):
                    pass

    # -- chaos kill harness -----------------------------------------------------

    def _maybe_kill(self) -> None:
        if self.kill is None or self._kill_fired:
            return
        victim = self.kill.victim
        if self._records_by_worker.get(victim, 0) < self.kill.after_records:
            return
        if victim >= len(self._procs):
            return
        process = self._procs[victim]
        if process.is_alive() and process.pid:
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)
        self._kill_fired = True
        self.stats.workers_killed += 1
        self._bump("distrib.workers_killed")

    # -- inline takeover --------------------------------------------------------

    def _take_over(
        self,
        ir,
        plans_by_key: Dict[str, Dict[str, Any]],
        pending: Set[str],
        resolved: Set[str],
    ) -> None:
        """Evaluate whatever no worker resolved, on the coordinator.

        The last-resort guarantee that ``run_shards`` terminates even
        with every worker dead.  Inline evaluations run on the shared
        engine, which bills them directly — so the journaled records
        carry no ``stats`` delta (merging one would double-bill).
        """
        engine = self.engine
        if engine is None:  # pragma: no cover - make_tuner always sets it
            self.engine = engine = PlanEvaluator(
                device=self.device, vectorize=self.vectorize
            )
        for key in sorted(pending - resolved):
            plan = plan_from_dict(plans_by_key[key])
            try:
                found = engine.evaluate_spill_free(ir, plan)
            except ReproError as exc:
                self.journal.merge_record(
                    {
                        "kind": "failure",
                        "key": key,
                        "error": type(exc).__name__,
                        "message": str(exc),
                        "worker": None,
                    }
                )
            else:
                if found is None:
                    record = {
                        "kind": "candidate",
                        "key": key,
                        "plan": None,
                        "time_s": None,
                        "tflops": None,
                        "worker": None,
                    }
                else:
                    chosen, sim = found
                    record = {
                        "kind": "candidate",
                        "key": key,
                        "plan": plan_to_dict(chosen),
                        "time_s": sim.time_s,
                        "tflops": sim.tflops,
                        "worker": None,
                    }
                self.journal.merge_record(record)
            resolved.add(key)
            self.stats.takeovers += 1
            self._bump("distrib.takeovers")

    # -- run-level observability ------------------------------------------------

    def merged_registry(self) -> MetricsRegistry:
        """One registry describing the whole run, dedup-aware.

        Folds every worker snapshot plus the coordinator's own process
        registry — *excluding* their raw ``eval.*`` series, which
        double-count stolen shards — then projects the coordinator's
        deduplicated merge billing (``engine.stats``) in as the
        run-level ``eval.*`` truth.  Result: ``eval.requests`` here
        equals what a single-process run would report, even after a
        SIGKILL-and-steal.
        """
        from ..obs import metrics_enabled, get_metrics
        from ..obs.live import load_snapshots, merge_snapshots, publish_stats_dict

        registry = merge_snapshots(
            load_snapshots(self.paths.obs_dir),
            exclude_prefixes=("eval.",),
        )
        if metrics_enabled():
            registry.merge_snapshot(
                get_metrics().snapshot(), exclude_prefixes=("eval.",)
            )
        if self.engine is not None:
            publish_stats_dict(registry, self.engine.stats.as_dict())
        return registry

    def write_merged_snapshot(self) -> Optional[str]:
        """Publish the merged run-level registry atomically; returns path."""
        from ..obs.live import build_snapshot, write_snapshot

        snapshot = build_snapshot(
            worker=-1, registry=self.merged_registry(), seq=self.stats.batches
        )
        path = self.paths.merged_metrics_path
        write_snapshot(path, snapshot)
        return path

    # -- lifecycle --------------------------------------------------------------

    def _bump(self, name: str, amount: int = 1) -> None:
        if _metrics_enabled():
            _counter(name).add(amount)

    def close(self) -> None:
        """Stop workers, drain every journal, release the merged journal."""
        if self._closed:
            return
        self._closed = True
        self.paths.request_stop()
        for process in self._procs:
            process.join(timeout=2.0 + self.lease_ttl)
        for process in self._procs:
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=2.0)
        # Final drain: a straggler that woke after its shard was stolen
        # may have journaled duplicates right before exiting — fold them
        # in so dedup accounting is complete.
        self._merge_step()
        if _metrics_enabled():
            try:
                self.write_merged_snapshot()
            except OSError:  # pragma: no cover - observation never kills
                pass
        if self._owns_journal:
            self.journal.close()

    def __enter__(self) -> "DistributedCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
