"""On-disk coordination substrate for the distributed search.

Everything the coordinator and workers exchange lives in one shared
journal directory, written exclusively through the crash-safe
primitives from :mod:`repro.resilience`:

* **lease files** are created with ``O_CREAT | O_EXCL`` (the atomic
  claim) and renewed/stolen via :func:`atomic_write_json`, so a lease
  is always a complete JSON document — a reader can never observe a
  half-written lease;
* **task / done / config files** are atomic-JSON artifacts;
* **worker journals** are ordinary :class:`TuningJournal` JSONL files
  appended by exactly one process each (the merge tails them with
  :class:`JournalTailReader`, which only ever consumes complete,
  ``\\n``-terminated lines — a SIGKILLed worker's torn final append is
  simply never seen).

Layout under the root directory::

    config.json           run parameters (device, workers, ttl, ...)
    ir/<irfp>.pkl         pickled ProgramIR blobs, one per fingerprint
    tasks/<sid>.json      published shards awaiting evaluation
    leases/<sid>.json     live ownership records (heartbeat timestamps)
    done/<sid>.json       completion markers
    journals/worker-N.jsonl  per-worker result journals
    obs/worker-NN.metrics.json  atomic live metric/span snapshots
    obs/merged.metrics.json     coordinator-merged run-level registry
    merged.jsonl          the crash-safe merge target (default path)
    stop                  sentinel: workers drain and exit
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from ..resilience.atomic import atomic_write_bytes, atomic_write_json

__all__ = [
    "DistribPaths",
    "JournalTailReader",
    "lease_claim",
    "lease_renew",
    "lease_steal",
    "read_json",
]


@dataclass(frozen=True)
class DistribPaths:
    """Path arithmetic for one distributed-run directory."""

    root: str

    @property
    def config_path(self) -> str:
        return os.path.join(self.root, "config.json")

    @property
    def ir_dir(self) -> str:
        return os.path.join(self.root, "ir")

    @property
    def tasks_dir(self) -> str:
        return os.path.join(self.root, "tasks")

    @property
    def leases_dir(self) -> str:
        return os.path.join(self.root, "leases")

    @property
    def done_dir(self) -> str:
        return os.path.join(self.root, "done")

    @property
    def journals_dir(self) -> str:
        return os.path.join(self.root, "journals")

    @property
    def obs_dir(self) -> str:
        return os.path.join(self.root, "obs")

    @property
    def stop_path(self) -> str:
        return os.path.join(self.root, "stop")

    @property
    def merged_path(self) -> str:
        return os.path.join(self.root, "merged.jsonl")

    def ensure(self) -> "DistribPaths":
        for directory in (
            self.root,
            self.ir_dir,
            self.tasks_dir,
            self.leases_dir,
            self.done_dir,
            self.journals_dir,
            self.obs_dir,
        ):
            os.makedirs(directory, exist_ok=True)
        return self

    # -- per-object paths -------------------------------------------------------

    def ir_path(self, irfp: str) -> str:
        return os.path.join(self.ir_dir, f"{irfp}.pkl")

    def task_path(self, sid: str) -> str:
        return os.path.join(self.tasks_dir, f"{sid}.json")

    def lease_path(self, sid: str) -> str:
        return os.path.join(self.leases_dir, f"{sid}.json")

    def done_path(self, sid: str) -> str:
        return os.path.join(self.done_dir, f"{sid}.json")

    def worker_journal_path(self, worker: int) -> str:
        return os.path.join(self.journals_dir, f"worker-{worker:02d}.jsonl")

    def worker_metrics_path(self, worker: int) -> str:
        return os.path.join(self.obs_dir, f"worker-{worker:02d}.metrics.json")

    @property
    def merged_metrics_path(self) -> str:
        return os.path.join(self.obs_dir, "merged.metrics.json")

    # -- IR blobs ---------------------------------------------------------------

    def publish_ir(self, irfp: str, ir: Any) -> None:
        """Ship the ProgramIR to workers, once per fingerprint."""
        path = self.ir_path(irfp)
        if not os.path.exists(path):
            atomic_write_bytes(path, pickle.dumps(ir))

    def load_ir(self, irfp: str) -> Any:
        with open(self.ir_path(irfp), "rb") as handle:
            return pickle.loads(handle.read())

    # -- stop sentinel ----------------------------------------------------------

    def request_stop(self) -> None:
        atomic_write_bytes(self.stop_path, b"stop\n")

    def stop_requested(self) -> bool:
        return os.path.exists(self.stop_path)

    # -- listings ---------------------------------------------------------------

    def task_ids(self) -> List[str]:
        try:
            names = sorted(os.listdir(self.tasks_dir))
        except OSError:
            return []
        return [name[:-5] for name in names if name.endswith(".json")]

    def is_done(self, sid: str) -> bool:
        return os.path.exists(self.done_path(sid))


def read_json(path: str) -> Optional[Dict[str, Any]]:
    """Load a coordination artifact; None when absent or in flight.

    Most artifacts are written by ``os.replace`` and therefore always
    complete, but a *freshly claimed* lease is an ``O_EXCL`` create
    followed by a write — a reader racing that window sees an empty or
    partial document.  Treating it as "not readable yet" is safe
    everywhere this is called: the claim already failed (the file
    exists), the lease cannot be expired (it was created microseconds
    ago), and the next poll sees the completed payload.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError:
        return None


# ---------------------------------------------------------------------------
# lease protocol
# ---------------------------------------------------------------------------


def lease_claim(
    paths: DistribPaths, sid: str, worker: int, now: Optional[float] = None
) -> Optional[Dict[str, Any]]:
    """Claim an unleased shard atomically; None when already leased.

    ``O_CREAT | O_EXCL`` makes exactly one claimant win, with no
    read-then-write window.
    """
    now = time.time() if now is None else now
    lease = {
        "shard": sid,
        "worker": worker,
        "pid": os.getpid(),
        "claim_ts": now,
        "hb_ts": now,
        "generation": 0,
        "stolen_from": None,
    }
    try:
        descriptor = os.open(
            paths.lease_path(sid), os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return None
    try:
        payload = json.dumps(lease, sort_keys=True).encode()
        os.write(descriptor, payload)
        os.fsync(descriptor)
    finally:
        os.close(descriptor)
    return lease


def lease_expired(
    lease: Dict[str, Any], ttl: float, now: Optional[float] = None
) -> bool:
    now = time.time() if now is None else now
    return (now - float(lease.get("hb_ts", 0.0))) > ttl


def lease_steal(
    paths: DistribPaths,
    sid: str,
    worker: int,
    ttl: float,
    now: Optional[float] = None,
) -> Optional[Dict[str, Any]]:
    """Take over an expired lease; None when it is still fresh.

    The replacement bumps ``generation``, which is how the previous
    owner discovers the loss at its next renewal and abandons the
    shard.  Two simultaneous stealers can both replace the file (last
    ``os.replace`` wins); the loser's next renewal fails the ownership
    check, and any records both produced meanwhile are deduplicated by
    content key at merge time — a steal race costs duplicate work,
    never correctness.
    """
    now = time.time() if now is None else now
    current = read_json(paths.lease_path(sid))
    if current is None or not lease_expired(current, ttl, now):
        return None
    lease = {
        "shard": sid,
        "worker": worker,
        "pid": os.getpid(),
        "claim_ts": now,
        "hb_ts": now,
        "generation": int(current.get("generation", 0)) + 1,
        "stolen_from": current.get("worker"),
    }
    atomic_write_json(paths.lease_path(sid), lease)
    confirmed = read_json(paths.lease_path(sid))
    if confirmed is None or confirmed.get("worker") != worker:
        return None
    return lease


def lease_renew(
    paths: DistribPaths,
    lease: Dict[str, Any],
    now: Optional[float] = None,
) -> Optional[Dict[str, Any]]:
    """Heartbeat a held lease; None when ownership was lost.

    A worker that stalled past the TTL may find its shard stolen — the
    generation no longer matches — and must abandon it mid-shard (the
    stealer re-evaluates the whole shard; the merge dedupes the
    overlap).
    """
    now = time.time() if now is None else now
    sid = lease["shard"]
    current = read_json(paths.lease_path(sid))
    if (
        current is None
        or current.get("worker") != lease["worker"]
        or current.get("generation") != lease["generation"]
    ):
        return None
    renewed = dict(current)
    renewed["hb_ts"] = now
    atomic_write_json(paths.lease_path(sid), renewed)
    return renewed


# ---------------------------------------------------------------------------
# incremental journal tailing
# ---------------------------------------------------------------------------


class JournalTailReader:
    """Incrementally read complete records from a growing JSONL file.

    The merge loop polls each worker journal with one of these.  Only
    ``\\n``-terminated lines are consumed — a torn trailing append (a
    worker SIGKILLed mid-write) stays unread forever, which is exactly
    the torn-tail-drop semantics :class:`TuningJournal` applies on
    load, but without needing the file to be quiescent.
    """

    def __init__(self, path: str):
        self.path = path
        self._offset = 0

    def poll(self) -> Iterator[Dict[str, Any]]:
        """Yield records appended since the previous poll."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                raw = handle.read()
        except FileNotFoundError:
            return
        if not raw:
            return
        cut = raw.rfind(b"\n")
        if cut < 0:
            return  # only a partial line so far
        complete = raw[: cut + 1]
        self._offset += len(complete)
        for line in complete.decode("utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # foreign garbage; merge takes only valid records
            if isinstance(record, dict):
                yield record
