"""Worker process: claim shards, evaluate candidates, journal results.

Each worker is an ordinary OS process running :func:`worker_main`.  It
owns exactly one journal file (``journals/worker-NN.jsonl``) that no
other process writes, evaluates candidates with its own
:class:`PlanEvaluator`, and appends one self-contained record per
candidate — carrying the per-candidate :class:`EvalStats` delta so the
merge can bill evaluation cost exactly once per content key even when
a stolen shard is evaluated twice.

The worker is crash-oblivious by design: it takes no special care to
shut down cleanly, because the protocol already survives the worst
case (SIGKILL mid-append → torn tail, never merged; SIGKILL mid-shard
→ lease expires, shard stolen, overlap deduped).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..gpu.device import get_device
from ..resilience.checkpoint import TuningJournal, plan_from_dict, plan_to_dict
from ..resilience.errors import ReproError
from ..tuning.evaluator import EvalStats, PlanEvaluator
from .files import (
    DistribPaths,
    lease_claim,
    lease_expired,
    lease_renew,
    lease_steal,
    read_json,
)
from .shards import Shard

__all__ = ["WorkerConfig", "stats_from_dict", "stats_to_dict", "worker_main"]

_STATS_FIELDS = tuple(f.name for f in dataclasses.fields(EvalStats))


def stats_to_dict(stats: EvalStats) -> Dict[str, float]:
    """The raw (non-derived) EvalStats fields, JSON-ready."""
    return {name: getattr(stats, name) for name in _STATS_FIELDS}


def stats_from_dict(data: Dict[str, Any]) -> EvalStats:
    return EvalStats(
        **{name: data[name] for name in _STATS_FIELDS if name in data}
    )


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs, as a plain JSON-able record."""

    worker_id: int
    device: str
    lease_ttl: float
    poll_s: float = 0.05
    heartbeat_s: Optional[float] = None  # default: lease_ttl / 3
    vectorize: Optional[bool] = None
    #: chaos pass-through: same FaultInjector knobs as the CLI env vars,
    #: so a distributed chaos run faults the same content-addressed
    #: candidates a single-process run would.
    chaos: Optional[Dict[str, Any]] = None
    #: test/CI hook: sleep this long after journaling each candidate,
    #: turning this worker into a deterministic straggler whose lease
    #: expires mid-shard.
    straggle_s: float = 0.0
    #: test/CI hook: restrict *initial* claims to shard indices
    #: ``idx % modulus == residue`` — steals stay unrestricted, which is
    #: how tests route a specific shard to the straggler and let any
    #: healthy worker steal it back.
    claim_residue: Optional[Tuple[int, int]] = None
    #: live observability: when set, the worker enables its own metrics
    #: registry (and tracer, for ``trace``) and flushes an atomic
    #: snapshot to ``obs/worker-NN.metrics.json`` every ``flush_s``
    #: seconds — the feed for ``repro top``, the ``/metrics`` endpoint
    #: and the stitched multi-worker trace.
    metrics: bool = False
    trace: bool = False
    flush_s: float = 0.5
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if self.claim_residue is not None:
            data["claim_residue"] = list(self.claim_residue)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkerConfig":
        data = dict(data)
        residue = data.get("claim_residue")
        if residue is not None:
            data["claim_residue"] = (int(residue[0]), int(residue[1]))
        return cls(**data)


def _build_engine(config: WorkerConfig) -> PlanEvaluator:
    injector = None
    chaos = config.chaos or {}
    if chaos.get("rate"):
        from ..resilience.faults import FaultInjector

        injector = FaultInjector(
            rate=float(chaos["rate"]),
            seed=int(chaos.get("seed", 0)),
            kind=chaos.get("kind", "error"),
            transient_failures=int(chaos.get("transient", 0)),
        )
    return PlanEvaluator(
        device=get_device(config.device),
        vectorize=config.vectorize,
        fault_injector=injector,
    )


def _shard_number(sid: str) -> int:
    """The ``s``-index of a shard id ``gGGGG-sNNN``."""
    return int(sid.rsplit("-s", 1)[-1])


class _Worker:
    def __init__(self, root: str, config: WorkerConfig):
        self.paths = DistribPaths(root)
        self.config = config
        self.engine = _build_engine(config)
        self.journal = TuningJournal(
            self.paths.worker_journal_path(config.worker_id),
            device=config.device,
        )
        self._ir_cache: Dict[str, Any] = {}
        self._heartbeat_s = config.heartbeat_s or config.lease_ttl / 3.0
        self._last_renew = 0.0
        self.flusher = self._build_flusher() if config.metrics else None

    # -- live observability ------------------------------------------------------

    def _build_flusher(self):
        """Arm this process's metrics registry and snapshot flusher.

        The worker is its own process (fork or spawn), so enabling the
        globals here perturbs nobody else.  ``_publish_stats_delta``
        runs before each flush: it mirrors the engine's EvalStats
        *growth since the previous flush* into the registry, keeping
        the snapshot's cumulative ``eval.*`` counters exact without
        double-adding — the same delta discipline journal records use.
        """
        from ..obs import configure_metrics, configure_tracing, get_metrics
        from ..obs.live import SnapshotFlusher

        configure_metrics(True, reset=True)
        if self.config.trace:
            configure_tracing(True, clear=True)
        self._published = self.engine.stats.snapshot()
        registry = get_metrics()

        def _publish_stats_delta() -> None:
            current = self.engine.stats.snapshot()
            delta = current.since(self._published)
            self._published = current
            from ..obs.live import publish_stats_dict

            publish_stats_dict(registry, delta.as_dict())

        return SnapshotFlusher(
            self.paths.worker_metrics_path(self.config.worker_id),
            worker=self.config.worker_id,
            interval_s=self.config.flush_s,
            include_spans=self.config.trace,
            collect=_publish_stats_delta,
        ).start()

    # -- shard selection --------------------------------------------------------

    def _may_claim(self, sid: str) -> bool:
        residue = self.config.claim_residue
        if residue is None:
            return True
        want, modulus = residue
        return _shard_number(sid) % modulus == want

    def _next_shard(
        self, ignore_residue: bool = False
    ) -> Optional[Tuple[Shard, Dict[str, Any]]]:
        """Claim a fresh shard, else steal an expired one.

        ``ignore_residue`` lifts the claim restriction: a worker that
        has been idle for a full lease TTL claims *any* unleased shard,
        so shards "reserved" for a dead worker that never claimed them
        (no lease to steal) cannot strand the run.
        """
        pending = [
            sid for sid in self.paths.task_ids() if not self.paths.is_done(sid)
        ]
        for sid in pending:
            if not (ignore_residue or self._may_claim(sid)):
                continue
            lease = lease_claim(self.paths, sid, self.config.worker_id)
            if lease is not None:
                return Shard.load(self.paths, sid), lease
        for sid in pending:
            current = read_json(self.paths.lease_path(sid))
            if current is None or not lease_expired(
                current, self.config.lease_ttl
            ):
                continue
            lease = lease_steal(
                self.paths, sid, self.config.worker_id, self.config.lease_ttl
            )
            if lease is not None:
                return Shard.load(self.paths, sid), lease
        return None

    # -- evaluation -------------------------------------------------------------

    def _load_ir(self, irfp: str):
        if irfp not in self._ir_cache:
            self._ir_cache[irfp] = self.paths.load_ir(irfp)
        return self._ir_cache[irfp]

    def _evaluate(self, shard: Shard, key: str, plan_dict: Dict[str, Any]):
        """One candidate → one journal record with its stats delta."""
        ir = self._load_ir(shard.irfp)
        plan = plan_from_dict(plan_dict)
        before = self.engine.stats.snapshot()
        base = {
            "key": key,
            "worker": self.config.worker_id,
            "shard": shard.sid,
        }
        try:
            found = self.engine.evaluate_spill_free(ir, plan)
        except ReproError as exc:
            record = dict(
                base,
                kind="failure",
                error=type(exc).__name__,
                message=str(exc),
            )
        else:
            if found is None:
                record = dict(
                    base, kind="candidate", plan=None, time_s=None, tflops=None
                )
            else:
                resolved, sim = found
                record = dict(
                    base,
                    kind="candidate",
                    plan=plan_to_dict(resolved),
                    time_s=sim.time_s,
                    tflops=sim.tflops,
                )
        record["stats"] = stats_to_dict(self.engine.stats.since(before))
        self.journal.append_record(record)

    def _renew_if_due(self, lease: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        now = time.time()
        if now - self._last_renew < self._heartbeat_s:
            return lease
        renewed = lease_renew(self.paths, lease, now)
        if renewed is not None:
            self._last_renew = now
        return renewed

    def _process(self, shard: Shard, lease: Dict[str, Any]) -> None:
        self._last_renew = time.time()
        for key, plan_dict in shard.candidates:
            if self.paths.stop_requested():
                return
            lease = self._renew_if_due(lease)
            if lease is None:
                # Ownership lost: someone stole the shard while we
                # stalled.  Abandon it — the stealer re-evaluates the
                # whole shard and the merge dedupes whatever overlaps.
                return
            if self.journal.lookup(key) is None:
                self._evaluate(shard, key, plan_dict)
            if self.config.straggle_s:
                time.sleep(self.config.straggle_s)
        final = lease_renew(self.paths, lease)
        if final is not None:
            from ..resilience.atomic import atomic_write_json

            atomic_write_json(
                self.paths.done_path(shard.sid),
                {
                    "shard": shard.sid,
                    "worker": self.config.worker_id,
                    "generation": lease["generation"],
                    "candidates": len(shard.candidates),
                    "completed_ts": time.time(),
                },
            )

    # -- main loop --------------------------------------------------------------

    def run(self) -> None:
        idle_since: Optional[float] = None
        try:
            while not self.paths.stop_requested():
                starved = (
                    idle_since is not None
                    and time.time() - idle_since > self.config.lease_ttl
                )
                claimed = self._next_shard(ignore_residue=starved)
                if claimed is None:
                    if idle_since is None:
                        idle_since = time.time()
                    time.sleep(self.config.poll_s)
                    continue
                idle_since = None
                shard, lease = claimed
                self._process(shard, lease)
        finally:
            if self.flusher is not None:
                # Final flush: a cleanly draining worker leaves exact
                # totals; a SIGKILLed one never reaches here and leaves
                # its last periodic snapshot instead.
                self.flusher.stop(final_flush=True)
            self.journal.close()


def worker_main(root: str, config_dict: Dict[str, Any]) -> None:
    """Process entry point (spawn-safe: primitives in, nothing out)."""
    _Worker(root, WorkerConfig.from_dict(config_dict)).run()
