"""Offline inspection of a distributed-run directory (`shard-status`).

Reads only atomic artifacts and complete journal lines, so it is safe
to run against a *live* directory — it observes, never mutates.
"""

from __future__ import annotations

import os
import time
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from .files import DistribPaths, JournalTailReader, lease_expired, read_json

__all__ = ["format_status", "iso_ts", "scan_status"]


def iso_ts(ts: Optional[float]) -> Optional[str]:
    """Epoch seconds → absolute ISO-8601 UTC string (None passes through)."""
    if ts is None:
        return None
    return (
        datetime.fromtimestamp(float(ts), tz=timezone.utc)
        .isoformat(timespec="seconds")
        .replace("+00:00", "Z")
    )


def _initializing(
    paths: DistribPaths, root: str, config: Dict[str, Any], now: float
) -> Dict[str, Any]:
    """Snapshot for a run directory mid-startup (no tasks/ yet).

    A coordinator creates its root, writes config.json and only then
    publishes shards; ``repro top`` polls that window.  An existing root
    is therefore a run being born, not a usage error.
    """
    return {
        "root": os.path.abspath(root),
        "state": "initializing",
        "scanned_ts": now,
        "scanned_iso": iso_ts(now),
        "config": config,
        "stopping": paths.stop_requested(),
        "shards": [],
        "totals": {
            "shards": 0,
            "pending": 0,
            "leased": 0,
            "expired": 0,
            "done": 0,
        },
        "journals": [],
        "merged_records": 0,
    }


def scan_status(root: str, now: Optional[float] = None) -> Dict[str, Any]:
    """Structured snapshot of one distributed-run directory."""
    now = time.time() if now is None else now
    paths = DistribPaths(root)
    if not os.path.isdir(root):
        raise FileNotFoundError(
            f"{root} is not a distributed-run directory (no such directory)"
        )
    config = read_json(paths.config_path) or {}
    if not os.path.isdir(paths.tasks_dir):
        return _initializing(paths, root, config, now)
    ttl = float(config.get("lease_ttl", 2.0))
    shards: List[Dict[str, Any]] = []
    for sid in paths.task_ids():
        task = read_json(paths.task_path(sid)) or {}
        lease = read_json(paths.lease_path(sid))
        done = read_json(paths.done_path(sid))
        if done is not None:
            state = "done"
        elif lease is None:
            state = "pending"
        elif lease_expired(lease, ttl, now):
            state = "expired"
        else:
            state = "leased"
        entry: Dict[str, Any] = {
            "shard": sid,
            "state": state,
            "candidates": len(task.get("candidates", ())),
            "worker": None,
            "generation": None,
            "hb_age_s": None,
            "hb_iso": None,
            "completed_iso": None,
            "stolen_from": None,
        }
        record = done or lease
        if record is not None:
            entry["worker"] = record.get("worker")
            entry["generation"] = record.get("generation")
            entry["stolen_from"] = (lease or {}).get("stolen_from")
        if done is not None:
            entry["completed_iso"] = iso_ts(done.get("completed_ts"))
        if lease is not None and done is None:
            hb_ts = float(lease.get("hb_ts", now))
            entry["hb_age_s"] = round(now - hb_ts, 3)
            entry["hb_iso"] = iso_ts(hb_ts)
        shards.append(entry)
    journals: List[Dict[str, Any]] = []
    try:
        journal_names = sorted(os.listdir(paths.journals_dir))
    except OSError:
        journal_names = []
    for name in journal_names:
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(paths.journals_dir, name)
        records = sum(
            1
            for record in JournalTailReader(path).poll()
            if record.get("kind") != "header"
        )
        journals.append({"journal": name, "records": records})
    merged_path = config.get("merged") or paths.merged_path
    merged_records = 0
    if os.path.exists(merged_path):
        merged_records = sum(
            1
            for record in JournalTailReader(merged_path).poll()
            if record.get("kind") != "header"
        )
    states = [entry["state"] for entry in shards]
    stopping = paths.stop_requested()
    return {
        "root": os.path.abspath(root),
        "state": "stopping" if stopping else "running",
        "scanned_ts": now,
        "scanned_iso": iso_ts(now),
        "created_iso": iso_ts(config.get("created_ts")),
        "config": config,
        "stopping": stopping,
        "shards": shards,
        "totals": {
            "shards": len(shards),
            "pending": states.count("pending"),
            "leased": states.count("leased"),
            "expired": states.count("expired"),
            "done": states.count("done"),
        },
        "journals": journals,
        "merged_records": merged_records,
    }


def format_status(info: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`scan_status`."""
    lines: List[str] = []
    config = info["config"]
    totals = info["totals"]
    lines.append(f"distributed run: {info['root']}")
    if info.get("state") == "initializing":
        lines.append("  initializing (no shards published yet)")
    if config:
        lines.append(
            f"  device={config.get('device')} workers={config.get('workers')} "
            f"lease_ttl={config.get('lease_ttl')}s"
        )
    lines.append(
        f"  shards: {totals['shards']} total — {totals['done']} done, "
        f"{totals['leased']} leased, {totals['expired']} expired, "
        f"{totals['pending']} pending"
        + ("  [stop requested]" if info["stopping"] else "")
    )
    header = (
        f"  {'shard':14s} {'state':8s} {'cand':>4s} {'worker':>6s} "
        f"{'gen':>3s} {'hb-age':>7s}"
    )
    lines.append(header)
    for entry in info["shards"]:
        worker = "-" if entry["worker"] is None else str(entry["worker"])
        generation = (
            "-" if entry["generation"] is None else str(entry["generation"])
        )
        age = "-" if entry["hb_age_s"] is None else f"{entry['hb_age_s']:.1f}s"
        stolen = (
            f"  (stolen from {entry['stolen_from']})"
            if entry["stolen_from"] is not None
            else ""
        )
        lines.append(
            f"  {entry['shard']:14s} {entry['state']:8s} "
            f"{entry['candidates']:>4d} {worker:>6s} {generation:>3s} "
            f"{age:>7s}{stolen}"
        )
    for journal in info["journals"]:
        lines.append(
            f"  {journal['journal']}: {journal['records']} records"
        )
    lines.append(f"  merged journal: {info['merged_records']} records")
    return "\n".join(lines)
