"""Distributed drop-in for :class:`HierarchicalTuner`.

The only override is :meth:`_measure_batch`: before the parent
measures a batch, the fresh candidates (those without a merged-journal
record) are shipped through the coordinator, which blocks until every
key has a record.  The parent then runs unchanged — its journal replay
turns the batch into pure lookups, and any key that only earned a
*failure* record is evaluated locally, exactly like a checkpoint
resume.  Winner selection therefore runs the same code over the same
values as a single-process run: bit-identical results by construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..codegen.plan import KernelPlan
from ..tuning.evaluator import Measurement
from ..tuning.hierarchical import HierarchicalTuner

__all__ = ["DistributedTuner"]


class DistributedTuner(HierarchicalTuner):
    """Hierarchical tuner whose batches evaluate on a worker pool."""

    def __init__(self, ir, coordinator, **kwargs):
        if kwargs.get("journal") is None:
            kwargs["journal"] = coordinator.journal
        super().__init__(ir, **kwargs)
        self.coordinator = coordinator

    def _measure_batch(
        self, plans: Sequence[KernelPlan]
    ) -> List[Optional[Measurement]]:
        fresh: List[Tuple[str, KernelPlan]] = []
        seen = set()
        for plan in plans:
            key = self._journal_key("sf", plan)
            if key in seen:
                continue
            seen.add(key)
            if self.journal.lookup(key) is None:
                fresh.append((key, plan))
        if len(fresh) >= self.coordinator.min_batch:
            self.coordinator.run_shards(self.ir, self._irfp, "sf", fresh)
        return super()._measure_batch(plans)
