"""Live terminal observatory for a distributed run (``repro top``).

Polls a run directory the same way ``shard-status`` does — atomic
artifacts and complete journal lines only — plus the workers' live
metric snapshots under ``obs/``, and renders one screenful: per-worker
shard ownership, lease generation (steal count rides on it), eval
throughput, cache-hit rate and an ETA extrapolated from shard
completion.  Reads only; never mutates the run.

On a TTY the view refreshes in place (ANSI home+clear-to-end); when
stdout is redirected it degrades to a single plain snapshot, so
``repro top --once`` and cron-style captures need no terminal.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO

from ..obs.live import DEFAULT_FLUSH_S, load_snapshots
from .files import DistribPaths
from .status import scan_status

__all__ = ["build_top_model", "render_top", "run_top"]

#: A worker whose snapshot is older than this many flush intervals is
#: presumed dead (SIGKILLed workers stop flushing but never say so).
_STALE_FLUSHES = 6.0


def _metric_value(metrics: Dict[str, Any], name: str) -> float:
    data = metrics.get(name) or {}
    try:
        return float(data.get("value", 0))
    except (TypeError, ValueError):
        return 0.0


def build_top_model(
    root: str,
    now: Optional[float] = None,
    prev: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Everything one ``repro top`` frame shows, as a JSON-able dict.

    ``prev`` — the previous frame's model — turns cumulative request
    counters into instantaneous rates between polls; without it the
    rate is the lifetime average from the snapshot's own clock.
    """
    now = time.time() if now is None else now
    status = scan_status(root, now)
    paths = DistribPaths(root)
    snapshots = load_snapshots(paths.obs_dir)
    flush_s = float(status["config"].get("flush_s", DEFAULT_FLUSH_S))
    stale_s = max(_STALE_FLUSHES * flush_s, 2.0)

    shards_by_worker: Dict[int, List[Dict[str, Any]]] = {}
    steals = 0
    for entry in status["shards"]:
        if entry.get("stolen_from") is not None:
            steals += 1
        wid = entry.get("worker")
        if wid is not None and entry["state"] in ("leased", "expired"):
            shards_by_worker.setdefault(wid, []).append(entry)

    prev_by_worker = {
        w["worker"]: w for w in (prev or {}).get("workers", ())
    }
    workers: List[Dict[str, Any]] = []
    for snap in snapshots:
        wid = int(snap.get("worker", -1))
        metrics = snap.get("metrics", {})
        requests = _metric_value(metrics, "eval.requests")
        hits = _metric_value(metrics, "eval.hits")
        ts = float(snap.get("ts", now))
        elapsed = max(ts - float(snap.get("started_ts", ts)), 1e-9)
        rate = requests / elapsed
        before = prev_by_worker.get(wid)
        if before is not None and ts > float(before.get("snapshot_ts", ts)):
            dt = ts - float(before["snapshot_ts"])
            rate = max(0.0, (requests - float(before["requests"])) / dt)
        owned = shards_by_worker.get(wid, [])
        current = owned[0] if owned else {}
        workers.append(
            {
                "worker": wid,
                "pid": snap.get("pid"),
                "alive": (now - ts) <= stale_s,
                "snapshot_ts": ts,
                "snapshot_age_s": round(now - ts, 3),
                "requests": requests,
                "hits": hits,
                "hit_rate": (hits / requests) if requests else 0.0,
                "rate": rate,
                "shard": current.get("shard"),
                "shard_state": current.get("state"),
                "generation": current.get("generation"),
            }
        )

    totals = status["totals"]
    eta_s: Optional[float] = None
    created = status["config"].get("created_ts")
    if created is not None and totals["done"]:
        elapsed_run = max(now - float(created), 1e-9)
        remaining = totals["shards"] - totals["done"]
        eta_s = elapsed_run * remaining / totals["done"]
    return {
        "root": status["root"],
        "state": status.get("state", "running"),
        "scanned_ts": now,
        "config": status["config"],
        "totals": totals,
        "steals": steals,
        "merged_records": status["merged_records"],
        "workers": workers,
        "eta_s": eta_s,
    }


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "-"
    eta_s = max(0.0, eta_s)
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.1f}s"


def render_top(model: Dict[str, Any]) -> str:
    """One frame of the observatory as plain text."""
    lines: List[str] = []
    totals = model["totals"]
    config = model["config"]
    lines.append(
        f"repro top — {model['root']}  [{model['state']}]"
    )
    lines.append(
        f"  workers={config.get('workers', '?')} "
        f"device={config.get('device', '?')} "
        f"lease_ttl={config.get('lease_ttl', '?')}s"
    )
    lines.append(
        f"  shards: {totals['done']}/{totals['shards']} done, "
        f"{totals['leased']} leased, {totals['expired']} expired, "
        f"{totals['pending']} pending — steals={model['steals']} "
        f"merged={model['merged_records']} eta={_fmt_eta(model['eta_s'])}"
    )
    lines.append(
        f"  {'worker':>6s} {'pid':>7s} {'state':5s} {'shard':14s} "
        f"{'gen':>3s} {'evals':>7s} {'ev/s':>7s} {'hit%':>6s} {'age':>6s}"
    )
    for worker in model["workers"]:
        shard = worker["shard"] or "-"
        state = "live" if worker["alive"] else "stale"
        generation = (
            "-" if worker["generation"] is None else str(worker["generation"])
        )
        lines.append(
            f"  {worker['worker']:>6d} "
            f"{worker['pid'] if worker['pid'] is not None else '-':>7} "
            f"{state:5s} {shard:14s} {generation:>3s} "
            f"{int(worker['requests']):>7d} {worker['rate']:>7.1f} "
            f"{100.0 * worker['hit_rate']:>5.1f}% "
            f"{worker['snapshot_age_s']:>5.1f}s"
        )
    if not model["workers"]:
        lines.append("  (no worker snapshots yet — run without --metrics?)")
    return "\n".join(lines)


def run_top(
    root: str,
    interval_s: float = 1.0,
    once: bool = False,
    out: Optional[TextIO] = None,
    max_frames: Optional[int] = None,
) -> int:
    """Poll-and-render loop; returns a process exit code.

    ``max_frames`` is a test hook bounding the loop; interactively the
    loop runs until Ctrl-C.  A non-TTY ``out`` forces one-shot mode so
    redirected output is a single clean snapshot, not an ANSI stream.
    """
    out = out if out is not None else sys.stdout
    interactive = not once and getattr(out, "isatty", lambda: False)()
    model: Optional[Dict[str, Any]] = None
    frames = 0
    try:
        while True:
            model = build_top_model(root, prev=model)
            frame = render_top(model)
            if interactive:
                # Home the cursor and clear to end-of-screen: the frame
                # repaints in place instead of scrolling.
                out.write("\x1b[H\x1b[J" + frame + "\n")
            else:
                out.write(frame + "\n")
            out.flush()
            frames += 1
            if not interactive:
                return 0
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
