"""Sharded multi-worker plan search with crash-safe merge.

The "many jobs × many workers with no lost work" milestone: the plan
space of each tuning batch is partitioned into fingerprint-range
shards, published into a shared journal directory, and evaluated by a
pool of worker processes that claim shards with ``O_EXCL`` lease
files, renew them via heartbeats, and steal expired leases from
stragglers or corpses.  Per-worker JSONL journals are merged
first-record-wins by content-addressed key, so a shard evaluated twice
after a steal is billed exactly once — and the calling tuner replays
the merged journal through the same machinery that makes checkpoint
resume bit-identical, so the distributed winner is byte-identical to a
single-process run.

See ``docs/robustness.md`` ("Distributed search") for the operator
guide: lease lifecycle, steal conditions, merge invariants and chaos
knobs.
"""

from .coordinator import DistribStats, DistributedCoordinator, KillPolicy
from .files import DistribPaths, JournalTailReader
from .shards import Shard, partition, shard_index
from .status import format_status, iso_ts, scan_status
from .top import build_top_model, render_top, run_top
from .tuner import DistributedTuner
from .worker import WorkerConfig, stats_from_dict, stats_to_dict, worker_main

__all__ = [
    "DistribPaths",
    "DistribStats",
    "DistributedCoordinator",
    "DistributedTuner",
    "JournalTailReader",
    "KillPolicy",
    "Shard",
    "WorkerConfig",
    "build_top_model",
    "format_status",
    "iso_ts",
    "partition",
    "render_top",
    "run_top",
    "scan_status",
    "shard_index",
    "stats_from_dict",
    "stats_to_dict",
    "worker_main",
]
