"""Plan-space sharding by fingerprint range.

Candidates are assigned to shards by their content-addressed journal
key — specifically the plan-family fingerprint segment, a 64-bit hex
digest whose value is uniform over the keyspace.  Dividing that range
into ``shard_count`` equal intervals gives a deterministic partition
(the same candidate always lands in the same shard for a given count)
with no coordination: any process can recompute the assignment from
the key alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from .files import DistribPaths, read_json
from ..resilience.atomic import atomic_write_json

__all__ = ["Shard", "partition", "shard_index"]

#: Width of the fingerprint segment in bits (16 hex digits).
_FP_BITS = 64


def shard_index(key: str, shard_count: int) -> int:
    """Deterministic shard for a journal key: fingerprint-range bucket.

    Keys look like ``<irfp>:<tag>:<family-fp>``; the trailing segment
    is the 64-bit plan-family fingerprint.  ``value * count >> 64``
    maps the range ``[0, 2^64)`` onto ``[0, count)`` in equal-width
    intervals.
    """
    fp_hex = key.rsplit(":", 1)[-1]
    return (int(fp_hex, 16) * shard_count) >> _FP_BITS


@dataclass(frozen=True)
class Shard:
    """One published unit of work: a batch of keyed candidates."""

    sid: str
    irfp: str
    tag: str
    candidates: Tuple[Tuple[str, Dict[str, Any]], ...]  # (key, plan dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "irfp": self.irfp,
            "tag": self.tag,
            "candidates": [
                {"key": key, "plan": plan} for key, plan in self.candidates
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Shard":
        return cls(
            sid=data["sid"],
            irfp=data["irfp"],
            tag=data["tag"],
            candidates=tuple(
                (item["key"], item["plan"]) for item in data["candidates"]
            ),
        )

    def write(self, paths: DistribPaths) -> None:
        atomic_write_json(paths.task_path(self.sid), self.to_dict())

    @classmethod
    def load(cls, paths: DistribPaths, sid: str) -> "Shard":
        data = read_json(paths.task_path(sid))
        if data is None:
            raise FileNotFoundError(paths.task_path(sid))
        return cls.from_dict(data)


def partition(
    generation: int,
    irfp: str,
    tag: str,
    candidates: Sequence[Tuple[str, Dict[str, Any]]],
    shard_count: int,
) -> List[Shard]:
    """Split keyed candidates into at most ``shard_count`` shards.

    Empty fingerprint buckets are dropped; within a shard, candidates
    keep their input order (irrelevant to the result — every candidate
    is keyed — but it makes journals reproducible to read).
    """
    shard_count = max(1, min(shard_count, len(candidates)))
    buckets: List[List[Tuple[str, Dict[str, Any]]]] = [
        [] for _ in range(shard_count)
    ]
    for key, plan in candidates:
        buckets[shard_index(key, shard_count)].append((key, plan))
    shards: List[Shard] = []
    for index, bucket in enumerate(buckets):
        if not bucket:
            continue
        shards.append(
            Shard(
                sid=f"g{generation:04d}-s{index:03d}",
                irfp=irfp,
                tag=tag,
                candidates=tuple(bucket),
            )
        )
    return shards
