"""Core stencil IR: instantiated kernels and whole-program IR.

The DSL separates stencil *definitions* (with formal parameters) from
stencil *calls* (with actual top-level arrays).  The IR instantiates each
call by substituting actual names into the body, yielding a sequence of
:class:`StencilInstance` objects — the unit on which analyses,
optimizations and code generation operate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..dsl.ast import (
    ArrayAccess,
    Assignment,
    Expr,
    LocalDecl,
    Name,
    Pragma,
    Program,
    StencilCall,
    array_accesses,
)
from ..dsl.validate import call_bindings
from .transform import rename_symbols
from .types import sizeof


@dataclass(frozen=True)
class ArrayInfo:
    """A top-level array with a concrete shape."""

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def elements(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def bytes(self) -> int:
        return self.elements * sizeof(self.dtype)


@dataclass(frozen=True)
class Statement:
    """A single lowered statement inside a kernel.

    ``lhs`` is an array access (grid statement) or a scalar name (local
    temporary).  ``op`` is ``=`` or ``+=``.
    """

    lhs: Union[ArrayAccess, Name]
    rhs: Expr
    op: str = "="
    dtype: str = "double"

    @property
    def is_local(self) -> bool:
        return isinstance(self.lhs, Name)

    @property
    def target(self) -> str:
        return self.lhs.name if isinstance(self.lhs, ArrayAccess) else self.lhs.id

    def with_rhs(self, rhs: Expr) -> "Statement":
        return replace(self, rhs=rhs)


@dataclass(frozen=True)
class StencilInstance:
    """A stencil call instantiated with actual array/scalar names."""

    name: str  # unique instance name, e.g. "jacobi.0"
    stencil_name: str
    statements: Tuple[Statement, ...]
    placements: Tuple[Tuple[str, str], ...] = ()  # from #assign
    pragma: Optional[Pragma] = None

    @property
    def placement_map(self) -> Dict[str, str]:
        return dict(self.placements)

    # -- access helpers ------------------------------------------------------

    def grid_statements(self) -> Tuple[Statement, ...]:
        return tuple(s for s in self.statements if not s.is_local)

    def local_statements(self) -> Tuple[Statement, ...]:
        return tuple(s for s in self.statements if s.is_local)

    # The access sets are pure functions of ``statements``, but walking
    # the expression trees of a deeply fused kernel is expensive and the
    # tuners ask for them thousands of times per search.  The instance
    # is frozen, so each result is computed once and pinned on the
    # object (``replace`` builds a new instance with a cold cache).

    def arrays_written(self) -> Tuple[str, ...]:
        cached = self.__dict__.get("_arrays_written")
        if cached is not None:
            return cached
        seen: List[str] = []
        for stmt in self.statements:
            if isinstance(stmt.lhs, ArrayAccess) and stmt.target not in seen:
                seen.append(stmt.target)
        result = tuple(seen)
        object.__setattr__(self, "_arrays_written", result)
        return result

    def arrays_read(self) -> Tuple[str, ...]:
        cached = self.__dict__.get("_arrays_read")
        if cached is not None:
            return cached
        seen: List[str] = []
        for stmt in self.statements:
            for access in array_accesses(stmt.rhs):
                if access.name not in seen:
                    seen.append(access.name)
        result = tuple(seen)
        object.__setattr__(self, "_arrays_read", result)
        return result

    def io_arrays(self) -> Tuple[str, ...]:
        """All arrays touched, reads first, preserving first-seen order."""
        cached = self.__dict__.get("_io_arrays")
        if cached is not None:
            return cached
        seen: List[str] = []
        for name in self.arrays_read() + self.arrays_written():
            if name not in seen:
                seen.append(name)
        result = tuple(seen)
        object.__setattr__(self, "_io_arrays", result)
        return result

    def read_accesses(self) -> Iterator[ArrayAccess]:
        for stmt in self.statements:
            yield from array_accesses(stmt.rhs)

    def replace(self, **changes) -> "StencilInstance":
        return replace(self, **changes)


@dataclass(frozen=True)
class ProgramIR:
    """Whole-program IR: grid metadata plus kernels in call order."""

    iterators: Tuple[str, ...]
    arrays: Tuple[ArrayInfo, ...]
    scalars: Tuple[Tuple[str, str], ...]  # (name, dtype)
    kernels: Tuple[StencilInstance, ...]
    copyin: Tuple[str, ...] = ()
    copyout: Tuple[str, ...] = ()
    time_iterations: int = 1

    @property
    def array_map(self) -> Dict[str, ArrayInfo]:
        cached = self.__dict__.get("_array_map")
        if cached is None:
            cached = {a.name: a for a in self.arrays}
            object.__setattr__(self, "_array_map", cached)
        return cached

    @property
    def scalar_map(self) -> Dict[str, str]:
        cached = self.__dict__.get("_scalar_map")
        if cached is None:
            cached = dict(self.scalars)
            object.__setattr__(self, "_scalar_map", cached)
        return cached

    @property
    def ndim(self) -> int:
        return len(self.iterators)

    @property
    def is_iterative(self) -> bool:
        return self.time_iterations > 1

    def axis_of(self, iterator: str) -> int:
        return self.iterators.index(iterator)

    def kernel(self, name: str) -> StencilInstance:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    def domain_shape(self) -> Tuple[int, ...]:
        """Shape of the largest array — the computational grid extent."""
        best: Tuple[int, ...] = ()
        best_elems = -1
        for info in self.arrays:
            if info.ndim == self.ndim and info.elements > best_elems:
                best, best_elems = info.shape, info.elements
        if not best:
            raise ValueError("program has no full-rank array")
        return best

    def replace(self, **changes) -> "ProgramIR":
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# Lowering: Program -> ProgramIR
# ---------------------------------------------------------------------------


def build_ir(program: Program) -> ProgramIR:
    """Instantiate every stencil call and assemble the whole-program IR."""
    arrays: List[ArrayInfo] = []
    scalars: List[Tuple[str, str]] = []
    for decl in program.decls:
        if decl.is_array:
            arrays.append(
                ArrayInfo(decl.name, decl.dtype, program.array_shape(decl.name))
            )
        else:
            scalars.append((decl.name, decl.dtype))

    kernels: List[StencilInstance] = []
    counts: Dict[str, int] = {}
    for call in program.calls:
        index = counts.get(call.name, 0)
        counts[call.name] = index + 1
        kernels.append(_instantiate(program, call, index))

    return ProgramIR(
        iterators=program.iterators,
        arrays=tuple(arrays),
        scalars=tuple(scalars),
        kernels=tuple(kernels),
        copyin=program.copyin,
        copyout=program.copyout,
        time_iterations=program.time_iterations,
    )


def _instantiate(program: Program, call: StencilCall, index: int) -> StencilInstance:
    stencil = program.stencil(call.name)
    bindings = call_bindings(program, call)
    statements: List[Statement] = []
    for stmt in stencil.body:
        if isinstance(stmt, LocalDecl):
            statements.append(
                Statement(
                    lhs=Name(stmt.name),
                    rhs=rename_symbols(stmt.init, bindings),
                    op="=",
                    dtype=stmt.dtype,
                )
            )
        else:
            assert isinstance(stmt, Assignment)
            lhs = stmt.lhs
            if isinstance(lhs, ArrayAccess):
                new_lhs: Union[ArrayAccess, Name] = ArrayAccess(
                    bindings.get(lhs.name, lhs.name), lhs.indices
                )
            else:
                new_lhs = Name(bindings.get(lhs.id, lhs.id))
            statements.append(
                Statement(
                    lhs=new_lhs,
                    rhs=rename_symbols(stmt.rhs, bindings),
                    op=stmt.op,
                )
            )
    placements: Tuple[Tuple[str, str], ...] = ()
    if stencil.assign is not None:
        placements = tuple(
            (bindings.get(name, name), storage)
            for name, storage in stencil.assign.placements
        )
    return StencilInstance(
        name=f"{call.name}.{index}",
        stencil_name=call.name,
        statements=tuple(statements),
        placements=placements,
        pragma=stencil.pragma,
    )
