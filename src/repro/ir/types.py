"""Scalar type metadata shared across the IR, codegen and GPU model."""

from __future__ import annotations

#: Size in bytes of each DSL scalar type.
DTYPE_SIZES = {
    "double": 8,
    "float": 4,
    "int": 4,
}

#: NumPy dtype name for each DSL scalar type (used by the executor).
DTYPE_NUMPY = {
    "double": "float64",
    "float": "float32",
    "int": "int64",
}

#: CUDA C spelling for each DSL scalar type (used by the emitter).
DTYPE_CUDA = {
    "double": "double",
    "float": "float",
    "int": "int",
}


def sizeof(dtype: str) -> int:
    """Size in bytes of a DSL scalar type."""
    try:
        return DTYPE_SIZES[dtype]
    except KeyError:
        raise ValueError(f"unknown dtype {dtype!r}") from None
