"""Structure-preserving expression rewriters used across IR passes."""

from __future__ import annotations

from typing import Callable, Dict, Union

from ..dsl.ast import (
    ArrayAccess,
    BinOp,
    Call,
    Expr,
    Name,
    Num,
    UnaryOp,
)


def map_expr(
    expr: Expr,
    on_access: Callable[[ArrayAccess], Expr] = lambda a: a,
    on_name: Callable[[Name], Expr] = lambda n: n,
) -> Expr:
    """Rebuild ``expr`` applying ``on_access``/``on_name`` at the leaves."""
    if isinstance(expr, Num):
        return expr
    if isinstance(expr, Name):
        return on_name(expr)
    if isinstance(expr, ArrayAccess):
        return on_access(expr)
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, map_expr(expr.operand, on_access, on_name))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            map_expr(expr.left, on_access, on_name),
            map_expr(expr.right, on_access, on_name),
        )
    if isinstance(expr, Call):
        return Call(
            expr.func, tuple(map_expr(a, on_access, on_name) for a in expr.args)
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def rename_symbols(expr: Expr, mapping: Dict[str, str]) -> Expr:
    """Rename array and scalar names per ``mapping`` (missing = keep)."""

    def on_access(access: ArrayAccess) -> Expr:
        return ArrayAccess(mapping.get(access.name, access.name), access.indices)

    def on_name(name: Name) -> Expr:
        return Name(mapping.get(name.id, name.id))

    return map_expr(expr, on_access, on_name)


def shift_accesses(expr: Expr, axis_iterator: str, delta: int) -> Expr:
    """Shift every subscript that uses ``axis_iterator`` by ``delta``.

    Only accesses whose subscript along that iterator is of the simple
    ``iterator + c`` form are shifted; the caller is responsible for
    having checked homogenizability first.
    """

    def on_access(access: ArrayAccess) -> Expr:
        new_indices = []
        for idx in access.indices:
            if idx.single_iterator() == axis_iterator:
                new_indices.append(idx.shifted(delta))
            else:
                new_indices.append(idx)
        return ArrayAccess(access.name, tuple(new_indices))

    return map_expr(expr, on_access)


def substitute_names(expr: Expr, bindings: Dict[str, Expr]) -> Expr:
    """Replace scalar Name leaves with bound expressions (for inlining)."""

    def on_name(name: Name) -> Expr:
        return bindings.get(name.id, name)

    return map_expr(expr, on_name=on_name)
