"""Storage and computation folding (paper Section III-B4).

A common motif in spatial stencils is an element-wise operation between
two or more arrays: if *all* accesses to arrays ``A0..An`` are of the
form ``A0[i] ⊙ A1[i] ⊙ ... ⊙ An[i]`` (same point-wise operator, same
offsets within each occurrence), the combined value can be stored once in
shared memory or a register instead of buffering each array separately.
This reduces resource usage and removes recomputation at source level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..dsl.ast import (
    ArrayAccess,
    BinOp,
    Call,
    Expr,
    Name,
    Num,
    UnaryOp,
)
from .stencil import Statement, StencilInstance

#: Associative chain operators, plus binary subtraction (the SW4
#: dissipation motif ``u - um``, always combined point-wise).
_FOLDABLE_OPS = ("*", "+")
_BINARY_OPS = ("-",)


@dataclass(frozen=True)
class FoldGroup:
    """A set of arrays always combined point-wise with one operator."""

    members: Tuple[str, ...]  # sorted array names, len >= 2
    op: str  # '*' or '+'

    @property
    def folded_name(self) -> str:
        return "_fold_" + "_".join(self.members)


@dataclass(frozen=True)
class FoldedArray:
    """Definition of a virtual array produced by folding."""

    name: str
    members: Tuple[str, ...]
    op: str


# ---------------------------------------------------------------------------
# detection
# ---------------------------------------------------------------------------


def find_fold_groups(instance: StencilInstance) -> Tuple[FoldGroup, ...]:
    """Find maximal array groups eligible for folding in this kernel.

    A group is eligible when every read of each member array in the whole
    kernel occurs inside an associative ``op`` chain together with *all*
    other members at identical subscripts.  Written arrays are excluded.
    """
    written = set(instance.arrays_written())
    occurrences: Dict[str, List[Optional[Tuple[Tuple[str, ...], str]]]] = {}
    for stmt in instance.statements:
        _scan(stmt.rhs, None, occurrences)
    groups: Dict[Tuple[Tuple[str, ...], str], Set[str]] = {}
    for array, contexts in occurrences.items():
        if array in written:
            continue
        first = contexts[0]
        if first is None:
            continue
        if any(ctx != first for ctx in contexts):
            continue
        members, op = first
        if array not in members or len(members) < 2:
            continue
        groups.setdefault((members, op), set()).add(array)
    result: List[FoldGroup] = []
    for (members, op), covered in sorted(groups.items()):
        # Every member must itself have consistent occurrences.
        if set(members) == covered and not (set(members) & written):
            result.append(FoldGroup(members=members, op=op))
    return tuple(result)


def _scan(
    expr: Expr,
    context: Optional[Tuple[Tuple[str, ...], str]],
    occurrences: Dict[str, List[Optional[Tuple[Tuple[str, ...], str]]]],
) -> None:
    """Record, for each array read, the fold context it appears in."""
    chain = _pointwise_chain(expr)
    if chain is not None:
        members, op, accesses, others = chain
        ctx = (members, op)
        for access in accesses:
            occurrences.setdefault(access.name, []).append(ctx)
        for other in others:
            _scan(other, None, occurrences)
        return
    if isinstance(expr, ArrayAccess):
        occurrences.setdefault(expr.name, []).append(None)
        return
    if isinstance(expr, BinOp):
        _scan(expr.left, None, occurrences)
        _scan(expr.right, None, occurrences)
    elif isinstance(expr, UnaryOp):
        _scan(expr.operand, None, occurrences)
    elif isinstance(expr, Call):
        for arg in expr.args:
            _scan(arg, None, occurrences)


def _pointwise_chain(expr: Expr):
    """If ``expr`` is an associative chain combining >=2 distinct arrays
    at identical subscripts, return (members, op, accesses, other_factors).

    Binary subtraction of two same-subscript accesses also qualifies
    (non-associative, so never flattened further).
    """
    if isinstance(expr, BinOp) and expr.op in _BINARY_OPS:
        left, right = expr.left, expr.right
        if (
            isinstance(left, ArrayAccess)
            and isinstance(right, ArrayAccess)
            and left.indices == right.indices
            and left.name != right.name
        ):
            # Member order is semantic for '-': keep (minuend,
            # subtrahend) rather than sorting.
            return (left.name, right.name), expr.op, [left, right], []
        return None
    if not (isinstance(expr, BinOp) and expr.op in _FOLDABLE_OPS):
        return None
    op = expr.op
    leaves: List[Expr] = []
    _flatten(expr, op, leaves)
    accesses = [leaf for leaf in leaves if isinstance(leaf, ArrayAccess)]
    others = [leaf for leaf in leaves if not isinstance(leaf, ArrayAccess)]
    if len(accesses) < 2:
        return None
    indices = accesses[0].indices
    names = []
    for access in accesses:
        if access.indices != indices or access.name in names:
            return None
        names.append(access.name)
    return tuple(sorted(names)), op, accesses, others


def _flatten(expr: Expr, op: str, out: List[Expr]) -> None:
    if isinstance(expr, BinOp) and expr.op == op:
        _flatten(expr.left, op, out)
        _flatten(expr.right, op, out)
    else:
        out.append(expr)


# ---------------------------------------------------------------------------
# transformation
# ---------------------------------------------------------------------------


def apply_folding(
    instance: StencilInstance, groups: Tuple[FoldGroup, ...]
) -> Tuple[StencilInstance, Tuple[FoldedArray, ...]]:
    """Rewrite the kernel to read folded virtual arrays.

    Each occurrence of a group's chain is replaced by one access to the
    group's virtual array (subscripted with the occurrence's offsets);
    leftover non-array factors of the chain are preserved.
    """
    if not groups:
        return instance, ()
    by_members = {(g.members, g.op): g for g in groups}
    new_statements: List[Statement] = []
    for stmt in instance.statements:
        new_rhs = _rewrite(stmt.rhs, by_members)
        new_statements.append(stmt.with_rhs(new_rhs))
    folded = tuple(
        FoldedArray(name=g.folded_name, members=g.members, op=g.op) for g in groups
    )
    return instance.replace(statements=tuple(new_statements)), folded


def _rewrite(expr: Expr, by_members) -> Expr:
    chain = _pointwise_chain(expr)
    if chain is not None:
        members, op, accesses, others = chain
        group = by_members.get((members, op))
        if group is not None:
            folded_access: Expr = ArrayAccess(group.folded_name, accesses[0].indices)
            result = folded_access
            for other in others:
                result = BinOp(op, result, _rewrite(other, by_members))
            return result
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _rewrite(expr.left, by_members), _rewrite(expr.right, by_members)
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rewrite(expr.operand, by_members))
    if isinstance(expr, Call):
        return Call(expr.func, tuple(_rewrite(a, by_members) for a in expr.args))
    return expr
