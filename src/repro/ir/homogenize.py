"""Homogenization analysis for retiming (paper Section III-B2).

An expression is *homogenizable* along a streaming axis when the offset
along that axis can be reduced to 0 for all accesses in it — i.e. every
access that indexes the axis carries the same constant offset.  For
example, streaming along ``k``:

* ``A[k-1][j][i]``                      → homogenizable (shift by +1);
* ``C[k+1][j][i] * A[k-1][j][i]``       → NOT homogenizable (offsets differ);
* ``strx[i] * A[k-1][j][i]``            → homogenizable (``strx`` does not
  index ``k`` and is offset-invariant along it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..dsl.ast import Expr, array_accesses
from .stencil import ProgramIR, Statement, StencilInstance
from .transform import shift_accesses


@dataclass(frozen=True)
class HomogenizationResult:
    """Outcome of a homogenizability check along one axis."""

    homogenizable: bool
    offset: int = 0  # the common offset (0 when no access indexes the axis)
    reason: str = ""


def expr_homogenization(expr: Expr, iterator: str) -> HomogenizationResult:
    """Check whether ``expr`` is homogenizable along ``iterator``."""
    common: Optional[int] = None
    for access in array_accesses(expr):
        offset = _axis_offset(access, iterator)
        if offset is _SKEWED:
            return HomogenizationResult(
                False,
                reason=f"access {access} has a non-simple subscript on "
                f"{iterator!r}",
            )
        if offset is None:
            continue  # does not index the axis: invariant
        if common is None:
            common = offset
        elif offset != common:
            return HomogenizationResult(
                False,
                reason=f"access {access} offset {offset} differs from {common}",
            )
    return HomogenizationResult(True, offset=common or 0)


def homogenize_expr(expr: Expr, iterator: str) -> Tuple[Expr, int]:
    """Shift ``expr`` so its common offset along ``iterator`` becomes 0.

    Returns (shifted expression, original offset).  Raises ValueError if
    the expression is not homogenizable.
    """
    result = expr_homogenization(expr, iterator)
    if not result.homogenizable:
        raise ValueError(f"expression is not homogenizable: {result.reason}")
    if result.offset == 0:
        return expr, 0
    return shift_accesses(expr, iterator, -result.offset), result.offset


def statement_retimable(stmt: Statement, iterator: str) -> bool:
    """A grid statement is retimable when each accumulation term of its
    RHS is homogenizable along the streaming iterator (Section III-B2)."""
    from .decompose import split_accumulation

    if stmt.is_local:
        # Local temporaries participate through the statements that read
        # them; a local is retimable iff its RHS is homogenizable.
        return expr_homogenization(stmt.rhs, iterator).homogenizable
    terms = split_accumulation(stmt.rhs, distribute=True)
    return all(
        expr_homogenization(term, iterator).homogenizable for _sign, term in terms
    )


def kernel_retimable(
    ir: ProgramIR, instance: StencilInstance, iterator: Optional[str] = None
) -> bool:
    """True when every statement of the kernel is retimable.

    ``iterator`` defaults to the streaming dimension from the pragma, or
    the slowest-varying (outermost) iterator when streaming is disabled,
    exactly as the paper specifies.
    """
    if iterator is None:
        iterator = streaming_iterator(ir, instance)
    from .analysis import memoized_kv

    return memoized_kv(
        "retimable",
        instance,
        iterator,
        lambda: all(
            statement_retimable(s, iterator) for s in instance.statements
        ),
    )


def streaming_iterator(ir: ProgramIR, instance: StencilInstance) -> str:
    """The axis retiming is performed along (pragma stream or outermost)."""
    if instance.pragma is not None and instance.pragma.stream_dim:
        return instance.pragma.stream_dim
    return ir.iterators[0]


# sentinel distinguishing "does not index the axis" from "skewed subscript"
class _Skewed:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<skewed>"


_SKEWED = _Skewed()


def _axis_offset(access, iterator: str):
    """Offset of ``access`` along ``iterator``.

    Returns an int offset, None when the access does not involve the
    iterator at all, or the ``_SKEWED`` sentinel when the iterator appears
    in a subscript that is not of the simple ``iterator + c`` form.
    """
    found = None
    for idx in access.indices:
        coeffs = idx.coeff_map
        if iterator not in coeffs:
            continue
        if coeffs == {iterator: 1}:
            if found is not None:
                return _SKEWED  # iterator used in two subscripts
            found = idx.const
        else:
            return _SKEWED
    return found
