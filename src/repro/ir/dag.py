"""Dependence graphs over stencil statements and kernels.

Two granularities are used by the optimizer:

* the **kernel DAG** (one node per :class:`StencilInstance`) drives
  fusion and fission decisions (Section VI);
* the **statement DAG** within a kernel (one node per statement) drives
  statement decomposition, retiming and the trivial/recompute fission
  splits of Section VI-B (the paper's Figure 3a).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from ..dsl.ast import ArrayAccess, array_accesses, scalar_names
from .stencil import ProgramIR, Statement, StencilInstance


def kernel_dag(ir: ProgramIR) -> nx.DiGraph:
    """Build the kernel-level dependence DAG.

    Nodes are kernel instance names; an edge u -> v means v reads an
    array that u wrote (RAW), or overwrites data u produced (WAW/WAR),
    so u must execute first.
    """
    graph = nx.DiGraph()
    for kernel in ir.kernels:
        graph.add_node(kernel.name, instance=kernel)
    last_writer: Dict[str, str] = {}
    readers_since_write: Dict[str, List[str]] = {}
    for kernel in ir.kernels:
        for array in kernel.arrays_read():
            if array in last_writer:
                graph.add_edge(last_writer[array], kernel.name, kind="RAW",
                               array=array)
            readers_since_write.setdefault(array, []).append(kernel.name)
        for array in kernel.arrays_written():
            if array in last_writer and last_writer[array] != kernel.name:
                graph.add_edge(last_writer[array], kernel.name, kind="WAW",
                               array=array)
            for reader in readers_since_write.get(array, []):
                if reader != kernel.name:
                    graph.add_edge(reader, kernel.name, kind="WAR", array=array)
            readers_since_write[array] = []
            last_writer[array] = kernel.name
    return graph


def statement_dag(instance: StencilInstance) -> nx.DiGraph:
    """Build the statement-level dependence DAG within one kernel.

    Nodes are statement indices.  Edges capture RAW dependences through
    local scalars and through arrays (any offset — within a kernel a
    producing statement must run before a consumer at the same point).
    """
    graph = nx.DiGraph()
    for index, stmt in enumerate(instance.statements):
        graph.add_node(index, statement=stmt)
    scalar_writer: Dict[str, int] = {}
    array_writers: Dict[str, List[int]] = {}
    for index, stmt in enumerate(instance.statements):
        for name in scalar_names(stmt.rhs):
            if name in scalar_writer:
                graph.add_edge(scalar_writer[name], index, kind="RAW", via=name)
        for access in array_accesses(stmt.rhs):
            for writer in array_writers.get(access.name, []):
                graph.add_edge(writer, index, kind="RAW", via=access.name)
        if stmt.is_local:
            if stmt.op == "+=" and stmt.target in scalar_writer:
                graph.add_edge(scalar_writer[stmt.target], index, kind="ACC",
                               via=stmt.target)
            scalar_writer[stmt.target] = index
        else:
            if stmt.op == "+=":
                for writer in array_writers.get(stmt.target, []):
                    graph.add_edge(writer, index, kind="ACC", via=stmt.target)
            array_writers.setdefault(stmt.target, []).append(index)
    return graph


def producers_of(instance: StencilInstance, target: str) -> Tuple[int, ...]:
    """Indices of statements writing scalar or array ``target``."""
    return tuple(
        index
        for index, stmt in enumerate(instance.statements)
        if stmt.target == target
    )


def statements_for_output(
    instance: StencilInstance, output: str
) -> Tuple[int, ...]:
    """Backward slice: statement indices needed to compute ``output``.

    Used by trivial fission (Section VI-B): each distinct output array is
    placed in its own kernel along with every statement its value
    transitively depends on (which replicates shared temporaries, as in
    the paper's Figure 3b).
    """
    graph = statement_dag(instance)
    roots = [i for i in producers_of(instance, output)]
    needed: Set[int] = set(roots)
    frontier = list(roots)
    while frontier:
        node = frontier.pop()
        for pred in graph.predecessors(node):
            if pred not in needed:
                needed.add(pred)
                frontier.append(pred)
    return tuple(sorted(needed))


def intermediate_arrays(ir: ProgramIR) -> Tuple[str, ...]:
    """Arrays produced by one kernel and consumed by a later one."""
    produced: Set[str] = set()
    intermediates: List[str] = []
    for kernel in ir.kernels:
        for array in kernel.arrays_read():
            if array in produced and array not in intermediates:
                intermediates.append(array)
        produced.update(kernel.arrays_written())
    return tuple(intermediates)


def is_pipeline(ir: ProgramIR) -> bool:
    """True when the kernel DAG is a simple chain (image-pipeline shape)."""
    graph = kernel_dag(ir)
    raw_edges = [
        (u, v) for u, v, d in graph.edges(data=True) if d.get("kind") == "RAW"
    ]
    return len(raw_edges) >= len(ir.kernels) - 1 and nx.is_directed_acyclic_graph(
        graph
    )
