"""Statement decomposition into accumulation sub-statements (§III-B2).

Decomposition leverages operator associativity and distributivity to
split a stencil statement ``out = e1 + e2 - e3`` into the accumulation
chain ``acc = e1; acc += e2; acc += -e3; out = acc``.  Retiming then
shifts each homogenizable sub-statement independently along the
streaming dimension, balancing GPU resource usage between memory and
registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..dsl.ast import ArrayAccess, BinOp, Expr, Name, UnaryOp
from .stencil import Statement, StencilInstance


def split_accumulation(
    expr: Expr, distribute: bool = False
) -> Tuple[Tuple[int, Expr], ...]:
    """Flatten the top-level additive chain of ``expr``.

    Returns ``((sign, term), ...)`` with sign in {+1, -1} such that
    ``expr == sum(sign * term)``.  Multiplications, divisions, calls and
    parenthesized groups are opaque terms.

    With ``distribute=True``, products over additive groups are expanded
    first — the paper's decomposition "leverages operator associativity
    and distributivity", which is what makes ``c*(A[k-1] + A[k+1])``
    retimable (each distributed term has a single stream offset).
    """
    if distribute:
        expr = distribute_products(expr)
    terms: List[Tuple[int, Expr]] = []
    _collect(expr, +1, terms)
    return tuple(terms)


def distribute_products(expr: Expr) -> Expr:
    """Expand products/quotients over additive sub-expressions.

    ``c * (x + y) -> c*x + c*y`` and ``(x - y) / d -> x/d - y/d``.
    Applied recursively until fixpoint; call arguments are left intact
    (distribution inside ``sqrt`` would not help retiming).
    """
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        return BinOp(
            expr.op,
            distribute_products(expr.left),
            distribute_products(expr.right),
        )
    if isinstance(expr, UnaryOp) and expr.op == "-":
        return UnaryOp("-", distribute_products(expr.operand))
    if isinstance(expr, BinOp) and expr.op == "*":
        left = distribute_products(expr.left)
        right = distribute_products(expr.right)
        left_terms = _additive_terms(left)
        right_terms = _additive_terms(right)
        if len(left_terms) == 1 and len(right_terms) == 1:
            return BinOp("*", left, right)
        products: List[Tuple[int, Expr]] = []
        for ls, lt in left_terms:
            for rs, rt in right_terms:
                products.append((ls * rs, BinOp("*", lt, rt)))
        return join_accumulation(tuple(products))
    if isinstance(expr, BinOp) and expr.op == "/":
        left = distribute_products(expr.left)
        right = distribute_products(expr.right)
        left_terms = _additive_terms(left)
        if len(left_terms) == 1:
            return BinOp("/", left, right)
        quotients = tuple(
            (sign, BinOp("/", term, right)) for sign, term in left_terms
        )
        return join_accumulation(quotients)
    return expr


def _additive_terms(expr: Expr) -> Tuple[Tuple[int, Expr], ...]:
    terms: List[Tuple[int, Expr]] = []
    _collect(expr, +1, terms)
    return tuple(terms)


def _collect(expr: Expr, sign: int, terms: List[Tuple[int, Expr]]) -> None:
    if isinstance(expr, BinOp) and expr.op == "+":
        _collect(expr.left, sign, terms)
        _collect(expr.right, sign, terms)
    elif isinstance(expr, BinOp) and expr.op == "-":
        _collect(expr.left, sign, terms)
        _collect(expr.right, -sign, terms)
    elif isinstance(expr, UnaryOp) and expr.op == "-":
        _collect(expr.operand, -sign, terms)
    else:
        terms.append((sign, expr))


def join_accumulation(terms: Tuple[Tuple[int, Expr], ...]) -> Expr:
    """Inverse of :func:`split_accumulation` (up to associativity)."""
    if not terms:
        raise ValueError("cannot join zero terms")
    sign, first = terms[0]
    expr: Expr = UnaryOp("-", first) if sign < 0 else first
    for sign, term in terms[1:]:
        expr = BinOp("+" if sign > 0 else "-", expr, term)
    return expr


@dataclass(frozen=True)
class DecomposedStatement:
    """A grid statement rewritten as an accumulation chain."""

    original: Statement
    accumulator: str
    sub_statements: Tuple[Statement, ...]


def decompose_statement(stmt: Statement, accumulator: str) -> DecomposedStatement:
    """Rewrite a grid statement into accumulation sub-statements.

    ``out[k][j][i] = e1 + e2`` becomes::

        acc  = e1;
        acc += e2;
        out[k][j][i] = acc;

    Statements whose RHS is a single term decompose into an assignment
    plus the final store (still useful: retiming treats the lone term as
    one accumulation).
    """
    if stmt.is_local:
        raise ValueError("only grid statements are decomposed")
    terms = split_accumulation(stmt.rhs)
    subs: List[Statement] = []
    for index, (sign, term) in enumerate(terms):
        rhs: Expr = UnaryOp("-", term) if sign < 0 else term
        subs.append(
            Statement(
                lhs=Name(accumulator),
                rhs=rhs,
                op="=" if index == 0 else "+=",
                dtype=stmt.dtype,
            )
        )
    subs.append(Statement(lhs=stmt.lhs, rhs=Name(accumulator), op=stmt.op))
    return DecomposedStatement(
        original=stmt, accumulator=accumulator, sub_statements=tuple(subs)
    )


def decompose_kernel(instance: StencilInstance) -> StencilInstance:
    """Decompose every grid statement of a kernel into accumulations."""
    new_statements: List[Statement] = []
    counter = 0
    for stmt in instance.statements:
        if stmt.is_local:
            new_statements.append(stmt)
            continue
        name = f"_acc{counter}"
        counter += 1
        new_statements.extend(decompose_statement(stmt, name).sub_statements)
    return instance.replace(statements=tuple(new_statements))
