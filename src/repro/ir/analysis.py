"""Static analyses over the stencil IR.

These produce the quantities the paper's Table I reports (stencil order,
per-point FLOPs, number of I/O arrays) and the inputs the GPU counter
model needs (halos per array per axis, access counts by array, theoretical
operational intensity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..dsl.ast import (
    ArrayAccess,
    BinOp,
    Call,
    Expr,
    Name,
    Num,
    UnaryOp,
    array_accesses,
)
from ..obs import counter as _counter, metrics_enabled as _metrics_enabled
from ..obs import span as _span
from .stencil import ProgramIR, Statement, StencilInstance
from .types import sizeof

# ---------------------------------------------------------------------------
# identity-keyed memoization
#
# Analyses walk (potentially enormous) expression ASTs; the simulator and
# autotuner call them thousands of times on the same immutable kernel
# instances.  Results are cached by object identity, keeping a strong
# reference to the key so ids are never recycled while cached.
# ---------------------------------------------------------------------------

_MEMO: dict = {}


def _memoized(tag: str, obj, compute):
    key = (tag, id(obj))
    hit = _MEMO.get(key)
    if hit is not None and hit[0] is obj:
        return hit[1]
    if _metrics_enabled():
        _counter(f"analysis.cache_miss.{tag}").add()
    with _span(f"analysis.{tag}"):
        value = compute()
    _MEMO[key] = (obj, value)
    return value


def memoized_kv(tag: str, obj, key, compute):
    """Identity-keyed memoization with an extra hashable sub-key.

    Like :func:`_memoized` but for analyses parameterized beyond the
    object itself (e.g. per-array or per-plan-shape results).  ``key``
    must be hashable and, together with ``tag`` and the object identity,
    fully determine the computed value.
    """
    full = (tag, id(obj), key)
    hit = _MEMO.get(full)
    if hit is not None and hit[0] is obj:
        return hit[1]
    if _metrics_enabled():
        _counter(f"analysis.cache_miss.{tag}").add()
    with _span(f"analysis.{tag}"):
        value = compute()
    _MEMO[full] = (obj, value)
    return value


def clear_analysis_cache() -> None:
    """Drop every memoized analysis result (tests / memory pressure)."""
    _MEMO.clear()


def analysis_cache_size() -> int:
    return len(_MEMO)

#: FLOP cost charged per intrinsic call (conventional single-op counting).
CALL_FLOPS = {
    "sqrt": 1,
    "cbrt": 1,
    "fabs": 1,
    "abs": 1,
    "exp": 1,
    "log": 1,
    "sin": 1,
    "cos": 1,
    "tanh": 1,
    "fmin": 1,
    "fmax": 1,
    "min": 1,
    "max": 1,
    "pow": 1,
}


# ---------------------------------------------------------------------------
# FLOP counting
# ---------------------------------------------------------------------------


def count_flops(expr: Expr) -> int:
    """Floating-point operations in an expression tree.

    Each binary arithmetic operator counts as one FLOP; unary negation is
    folded into the consuming operation (zero cost); intrinsics are
    charged per :data:`CALL_FLOPS`.
    """
    if isinstance(expr, (Num, Name, ArrayAccess)):
        return 0
    if isinstance(expr, UnaryOp):
        return count_flops(expr.operand)
    if isinstance(expr, BinOp):
        return 1 + count_flops(expr.left) + count_flops(expr.right)
    if isinstance(expr, Call):
        return CALL_FLOPS.get(expr.func, 1) + sum(count_flops(a) for a in expr.args)
    raise TypeError(type(expr).__name__)


def statement_flops(stmt: Statement) -> int:
    """FLOPs of one statement (a ``+=`` costs one extra add)."""
    return count_flops(stmt.rhs) + (1 if stmt.op == "+=" else 0)


def kernel_flops_per_point(instance: StencilInstance) -> int:
    """FLOPs executed per output grid point by one kernel instance."""
    return _memoized(
        "flops",
        instance,
        lambda: sum(statement_flops(s) for s in instance.statements),
    )


# ---------------------------------------------------------------------------
# Access patterns and halos
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AccessPattern:
    """One array access, positioned on the program's iteration axes.

    ``axis_offsets[d]`` is the constant offset along program axis ``d``,
    or None when the access does not index that axis (lower-rank arrays)
    or uses an absolute/skewed subscript.
    """

    array: str
    axis_offsets: Tuple[Optional[int], ...]
    is_write: bool = False

    def max_abs_offset(self) -> int:
        return max((abs(o) for o in self.axis_offsets if o is not None), default=0)


def access_patterns(
    ir: ProgramIR, instance: StencilInstance
) -> Tuple[AccessPattern, ...]:
    """Every array access in the instance, reads and writes, in order."""

    def compute():
        out: List[AccessPattern] = []
        for stmt in instance.statements:
            for access in array_accesses(stmt.rhs):
                out.append(_pattern_of(ir, access, is_write=False))
            if isinstance(stmt.lhs, ArrayAccess):
                out.append(_pattern_of(ir, stmt.lhs, is_write=True))
        return tuple(out)

    return _memoized("patterns", instance, compute)


def _pattern_of(ir: ProgramIR, access: ArrayAccess, is_write: bool) -> AccessPattern:
    offsets: List[Optional[int]] = [None] * ir.ndim
    for idx in access.indices:
        it = idx.single_iterator()
        if it is not None and it in ir.iterators:
            offsets[ir.axis_of(it)] = idx.const
    return AccessPattern(access.name, tuple(offsets), is_write)


def array_offset_sets(
    ir: ProgramIR, instance: StencilInstance
) -> Dict[str, Tuple[Tuple[Tuple[Optional[int], ...], ...],
                     Tuple[Tuple[Optional[int], ...], ...]]]:
    """Per-array distinct ``(read_offsets, write_offsets)`` for one kernel.

    Each side is a tuple of distinct per-axis offset vectors (``None``
    marks an axis the access does not index with a plain iterator).  The
    dependence engine (``repro.lint.dependence``) subtracts these
    pairwise to obtain exact dependence distances between kernels.
    """

    def compute():
        reads: Dict[str, List[Tuple[Optional[int], ...]]] = {}
        writes: Dict[str, List[Tuple[Optional[int], ...]]] = {}
        for pattern in access_patterns(ir, instance):
            bucket = (writes if pattern.is_write else reads).setdefault(
                pattern.array, []
            )
            if pattern.axis_offsets not in bucket:
                bucket.append(pattern.axis_offsets)
        return {
            name: (
                tuple(reads.get(name, ())),
                tuple(writes.get(name, ())),
            )
            for name in sorted({*reads, *writes})
        }

    return _memoized("offset_sets", instance, compute)


def read_halos(
    ir: ProgramIR, instance: StencilInstance
) -> Dict[str, Tuple[Tuple[int, int], ...]]:
    """Per-array read halo: (lo, hi) non-negative extents per axis.

    ``lo`` is how far reads reach below the center along the axis, ``hi``
    how far above.  Arrays never read get no entry.
    """
    return _memoized("halos", instance, lambda: _read_halos(ir, instance))


def _read_halos(
    ir: ProgramIR, instance: StencilInstance
) -> Dict[str, Tuple[Tuple[int, int], ...]]:
    halos: Dict[str, List[List[int]]] = {}
    for pattern in access_patterns(ir, instance):
        if pattern.is_write:
            continue
        entry = halos.setdefault(
            pattern.array, [[0, 0] for _ in range(ir.ndim)]
        )
        for axis, offset in enumerate(pattern.axis_offsets):
            if offset is None:
                continue
            entry[axis][0] = max(entry[axis][0], -offset)
            entry[axis][1] = max(entry[axis][1], offset)
    return {
        name: tuple((lo, hi) for lo, hi in per_axis)
        for name, per_axis in halos.items()
    }


def combined_halo(ir: ProgramIR, instance: StencilInstance) -> Tuple[Tuple[int, int], ...]:
    """Union of read halos across all arrays, per axis."""

    def compute():
        combined = [[0, 0] for _ in range(ir.ndim)]
        for per_axis in read_halos(ir, instance).values():
            for axis, (lo, hi) in enumerate(per_axis):
                combined[axis][0] = max(combined[axis][0], lo)
                combined[axis][1] = max(combined[axis][1], hi)
        return tuple((lo, hi) for lo, hi in combined)

    return _memoized("combined_halo", instance, compute)


def stencil_order(ir: ProgramIR, instance: StencilInstance) -> int:
    """Stencil order k: max |offset| over all read accesses (paper, §I)."""

    def compute():
        order = 0
        for pattern in access_patterns(ir, instance):
            if not pattern.is_write:
                order = max(order, pattern.max_abs_offset())
        return order

    return _memoized("order", instance, compute)


def program_order(ir: ProgramIR) -> int:
    return max((stencil_order(ir, k) for k in ir.kernels), default=0)


# ---------------------------------------------------------------------------
# Access counting (feeds the texture/shared traffic model)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArrayAccessSummary:
    """Per-array static access counts for one kernel instance."""

    array: str
    reads_total: int  # textual read count (with repetition)
    reads_distinct: int  # distinct offset vectors read
    writes: int
    offsets: Tuple[Tuple[Optional[int], ...], ...]  # distinct read offsets


def access_summary(
    ir: ProgramIR, instance: StencilInstance
) -> Dict[str, ArrayAccessSummary]:
    return _memoized("summary", instance, lambda: _access_summary(ir, instance))


def _access_summary(
    ir: ProgramIR, instance: StencilInstance
) -> Dict[str, ArrayAccessSummary]:
    reads_total: Dict[str, int] = {}
    writes: Dict[str, int] = {}
    offsets: Dict[str, List[Tuple[Optional[int], ...]]] = {}
    for pattern in access_patterns(ir, instance):
        if pattern.is_write:
            writes[pattern.array] = writes.get(pattern.array, 0) + 1
            offsets.setdefault(pattern.array, [])
            continue
        reads_total[pattern.array] = reads_total.get(pattern.array, 0) + 1
        bucket = offsets.setdefault(pattern.array, [])
        if pattern.axis_offsets not in bucket:
            bucket.append(pattern.axis_offsets)
    out: Dict[str, ArrayAccessSummary] = {}
    for array in set(reads_total) | set(writes):
        distinct = offsets.get(array, [])
        out[array] = ArrayAccessSummary(
            array=array,
            reads_total=reads_total.get(array, 0),
            reads_distinct=len(distinct),
            writes=writes.get(array, 0),
            offsets=tuple(distinct),
        )
    return out


# ---------------------------------------------------------------------------
# Table I characteristics and theoretical OI
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelCharacteristics:
    """The quantities Table I reports for one benchmark."""

    name: str
    domain: Tuple[int, ...]
    time_iterations: int
    order: int
    flops_per_point: int
    io_arrays: int
    theoretical_oi: float


def characteristics(ir: ProgramIR) -> KernelCharacteristics:
    """Aggregate Table I characteristics over all kernels of a program."""
    with _span("analysis", what="characteristics"):
        return _characteristics(ir)


def _characteristics(ir: ProgramIR) -> KernelCharacteristics:
    flops = sum(kernel_flops_per_point(k) for k in ir.kernels)
    order = program_order(ir)
    io: List[str] = []
    for kernel in ir.kernels:
        for name in kernel.io_arrays():
            if name not in io:
                io.append(name)
    return KernelCharacteristics(
        name=ir.kernels[0].stencil_name if ir.kernels else "<empty>",
        domain=ir.domain_shape(),
        time_iterations=ir.time_iterations,
        order=order,
        flops_per_point=flops,
        io_arrays=len(io),
        theoretical_oi=theoretical_oi(ir),
    )


def theoretical_oi(ir: ProgramIR) -> float:
    """FLOPs per byte assuming each I/O array moves exactly once (OI_T).

    Inputs are read once from DRAM and outputs written once; intermediate
    arrays both written and read count twice.  This matches the paper's
    ``OIT`` column in Table III.
    """
    arrays = ir.array_map
    points = 1
    for extent in ir.domain_shape():
        points *= extent
    total_flops = sum(kernel_flops_per_point(k) for k in ir.kernels) * points
    total_flops *= ir.time_iterations

    moved_bytes = 0
    read_by: Dict[str, bool] = {}
    written_by: Dict[str, bool] = {}
    for kernel in ir.kernels:
        for name in kernel.arrays_read():
            read_by[name] = True
        for name in kernel.arrays_written():
            written_by[name] = True
    for name in set(read_by) | set(written_by):
        info = arrays[name]
        if read_by.get(name):
            moved_bytes += info.bytes
        if written_by.get(name):
            moved_bytes += info.bytes
    moved_bytes *= ir.time_iterations
    if moved_bytes == 0:
        return float("inf")
    return total_flops / moved_bytes


def unique_bytes_per_point(ir: ProgramIR, instance: StencilInstance) -> float:
    """Minimum bytes moved per output point for one kernel (reads+writes)."""
    arrays = ir.array_map
    points = 1
    for extent in ir.domain_shape():
        points *= extent
    total = 0
    for name in instance.arrays_read():
        total += arrays[name].bytes
    for name in instance.arrays_written():
        total += arrays[name].bytes
    return total / points


# ---------------------------------------------------------------------------
# intra-kernel statement geometry (sequential fused-DAG semantics)
# ---------------------------------------------------------------------------


def scalar_slices(instance: StencilInstance) -> Dict[int, Tuple[int, ...]]:
    """Per grid statement: the local-statement indices it depends on."""
    from ..dsl.ast import scalar_names

    contrib: Dict[str, set] = {}
    result: Dict[int, Tuple[int, ...]] = {}
    for index, stmt in enumerate(instance.statements):
        needed: set = set()
        for name in scalar_names(stmt.rhs):
            needed |= contrib.get(name, set())
        if stmt.is_local:
            if stmt.op == "+=":
                needed |= contrib.get(stmt.target, set())
            contrib[stmt.target] = needed | {index}
        else:
            result[index] = tuple(sorted(needed))
    return result


def _segment_halos(
    ir: ProgramIR, instance: StencilInstance, indices: Sequence[int]
) -> Dict[str, Tuple[Tuple[int, int], ...]]:
    """Per-array read halos over a subset of statements."""
    halos: Dict[str, List[List[int]]] = {}
    for index in indices:
        stmt = instance.statements[index]
        from ..dsl.ast import array_accesses as _accesses

        for access in _accesses(stmt.rhs):
            entry = halos.setdefault(
                access.name, [[0, 0] for _ in range(ir.ndim)]
            )
            for idx in access.indices:
                iterator = idx.single_iterator()
                if iterator is None or iterator not in ir.iterators:
                    continue
                axis = ir.axis_of(iterator)
                entry[axis][0] = max(entry[axis][0], -idx.const)
                entry[axis][1] = max(entry[axis][1], idx.const)
    return {
        name: tuple((lo, hi) for lo, hi in entry)
        for name, entry in halos.items()
    }


def statement_geometry(ir: ProgramIR, instance: StencilInstance):
    return _memoized(
        "stmt_geometry", instance, lambda: _statement_geometry(ir, instance)
    )


def _statement_geometry(ir: ProgramIR, instance: StencilInstance):
    """Per grid statement: (local slice, combined halo, internal expansion).

    Statements inside one kernel execute sequentially over the grid; a
    consumer reading an array a *previous* statement of the same kernel
    wrote at a non-zero offset forces the producer to compute an expanded
    region (the intra-kernel recompute halo of Section VI-B).
    """
    slices = scalar_slices(instance)
    grid_indices = sorted(slices)
    halo_of: Dict[int, Tuple[Tuple[int, int], ...]] = {}
    reads_of: Dict[int, Dict[str, Tuple[Tuple[int, int], ...]]] = {}
    writer_of: Dict[str, List[int]] = {}
    for g in grid_indices:
        segment = list(slices[g]) + [g]
        per_array = _segment_halos(ir, instance, segment)
        reads_of[g] = per_array
        combined = [[0, 0] for _ in range(ir.ndim)]
        for entry in per_array.values():
            for axis, (lo, hi) in enumerate(entry):
                combined[axis][0] = max(combined[axis][0], lo)
                combined[axis][1] = max(combined[axis][1], hi)
        halo_of[g] = tuple((lo, hi) for lo, hi in combined)
        writer_of.setdefault(instance.statements[g].target, []).append(g)

    expansion: Dict[int, List[List[int]]] = {
        g: [[0, 0] for _ in range(ir.ndim)] for g in grid_indices
    }
    for t in reversed(grid_indices):
        for array, halo in reads_of[t].items():
            for producer in writer_of.get(array, []):
                if producer >= t:
                    continue
                for axis in range(ir.ndim):
                    need_lo = expansion[t][axis][0] + halo[axis][0]
                    need_hi = expansion[t][axis][1] + halo[axis][1]
                    expansion[producer][axis][0] = max(
                        expansion[producer][axis][0], need_lo
                    )
                    expansion[producer][axis][1] = max(
                        expansion[producer][axis][1], need_hi
                    )
    return {
        g: (
            slices[g],
            halo_of[g],
            tuple((lo, hi) for lo, hi in expansion[g]),
        )
        for g in grid_indices
    }


def internal_reach(
    ir: ProgramIR, instance: StencilInstance
) -> Tuple[Tuple[int, int], ...]:
    """Per-axis (lo, hi) lookback a block needs for this kernel alone:
    max over grid statements of (internal expansion + read halo)."""
    return _memoized(
        "reach", instance, lambda: _internal_reach(ir, instance)
    )


def _internal_reach(
    ir: ProgramIR, instance: StencilInstance
) -> Tuple[Tuple[int, int], ...]:
    geometry = statement_geometry(ir, instance)
    reach = [[0, 0] for _ in range(ir.ndim)]
    for _slice, halo, expansion in geometry.values():
        for axis in range(ir.ndim):
            reach[axis][0] = max(reach[axis][0], halo[axis][0] + expansion[axis][0])
            reach[axis][1] = max(reach[axis][1], halo[axis][1] + expansion[axis][1])
    return tuple((lo, hi) for lo, hi in reach)


