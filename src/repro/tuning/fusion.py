"""Kernel fusion at the IR level.

Fusing stencil instances concatenates their statements into one kernel
(renaming local temporaries to avoid collisions) — the *maxfuse* version
of Section VI-B fuses every stencil function operating on the same
domain.  Launch-level fusion of distinct instances (one kernel launch
covering several DAG stages with overlapped tiling) is expressed by a
:class:`~repro.codegen.plan.KernelPlan` with several ``kernel_names``;
the IR-level fusion here is what fission operates on and what gets
exported back to DSL text.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..dsl.ast import ArrayAccess, Name
from ..ir.stencil import ProgramIR, Statement, StencilInstance
from ..ir.transform import rename_symbols
from ..resilience.errors import UsageError


def fuse_instances(
    instances: Sequence[StencilInstance], name: str = "maxfuse"
) -> StencilInstance:
    """Concatenate instances into one kernel, uniquifying local scalars."""
    if not instances:
        raise UsageError("nothing to fuse")
    statements: List[Statement] = []
    placements: List[Tuple[str, str]] = []
    seen_placements: set = set()
    for index, instance in enumerate(instances):
        renames: Dict[str, str] = {}
        local_names = {s.target for s in instance.statements if s.is_local}
        if len(instances) > 1:
            renames = {local: f"s{index}_{local}" for local in local_names}
        for stmt in instance.statements:
            lhs = stmt.lhs
            if isinstance(lhs, Name) and lhs.id in renames:
                lhs = Name(renames[lhs.id])
            rhs = rename_symbols(stmt.rhs, renames) if renames else stmt.rhs
            statements.append(
                Statement(lhs=lhs, rhs=rhs, op=stmt.op, dtype=stmt.dtype)
            )
        for placement in instance.placements:
            if placement[0] not in seen_placements:
                seen_placements.add(placement[0])
                placements.append(placement)
    return StencilInstance(
        name=f"{name}.0",
        stencil_name=name,
        statements=tuple(statements),
        placements=tuple(placements),
        pragma=instances[0].pragma,
    )


def maxfuse(ir: ProgramIR, name: str = "maxfuse") -> ProgramIR:
    """Fuse all kernels over the same domain into one (maxfuse, §VI-B).

    Kernels are grouped by the shape of their written arrays; each group
    becomes a single fused kernel, preserving execution order across
    groups.
    """
    groups: List[List[StencilInstance]] = []
    group_shapes: List[Tuple[int, ...]] = []
    for instance in ir.kernels:
        written = instance.arrays_written()
        shape = ir.array_map[written[0]].shape if written else ()
        if group_shapes and group_shapes[-1] == shape:
            groups[-1].append(instance)
        else:
            groups.append([instance])
            group_shapes.append(shape)
    fused: List[StencilInstance] = []
    for index, group in enumerate(groups):
        label = name if len(groups) == 1 else f"{name}{index}"
        if len(group) == 1:
            fused.append(group[0])
        else:
            fused.append(fuse_instances(group, name=label))
    return ir.replace(kernels=tuple(fused))
