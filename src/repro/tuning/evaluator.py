"""Shared plan-evaluation engine: memoized, incremental, parallel.

Every result in this repository flows through repeated invocations of
the analytical simulator — hierarchical autotuning (§V), deep tuning's
per-degree sweeps (§VI-A), fission search (§VI-B), random search and the
baseline generators all price candidate :class:`KernelPlan`s with
:func:`repro.gpu.simulator.simulate`.  A fast analytical model is only a
net win while evaluation cost stays negligible next to the search-space
size, so all search code routes measurements through one
:class:`PlanEvaluator`, which provides:

* **content-addressed memoization** — simulation results are cached by a
  canonical plan fingerprint + IR identity + device, so duplicate
  variants (stage 2 generates overlapping variants per survivor, deep
  tuning re-visits degree-1 plans, benchmarks re-tune the same kernels)
  are never simulated twice.  Memoized and fresh paths return the very
  same :class:`SimulationResult` objects — results are deterministic and
  bit-for-bit identical either way.
* **incremental simulation** — the simulator's register-independent
  prefix (geometry, stages, buffers, access analysis, register demand)
  is cached per plan *family*, so the paper's register-escalation ladder
  (32 → 64 → 128 → 255) collapses: demand is known up front and the
  evaluator jumps straight to the first non-spilling rung instead of
  simulating every spilling one.
* **vectorized family pricing** — batches are grouped by structural
  plan key and each large group is priced in one NumPy pass over the
  whole candidate axis (:mod:`repro.gpu.pricing`), bit-for-bit equal to
  the scalar path; per-lane finalization replays the normal accounting,
  memoization and telemetry.  Per-phase activity is attributed through
  :meth:`PlanEvaluator.phase` (``docs/performance_model.md``).
* **parallel batch evaluation** — :meth:`PlanEvaluator.evaluate_batch`
  fans candidate evaluation out over a thread pool with deterministic,
  input-ordered results; ``executor='process'`` instead pre-computes
  the residual scalar simulations on a fork-based process pool.
* **fault tolerance** — every batch job is guarded: an unexpected
  (non-infeasibility) exception in one candidate is captured per-job
  and resolved by the engine's ``on_error`` policy (``fail-fast`` |
  ``skip`` | ``degrade``) instead of killing the whole batch;
  per-evaluation timeouts, bounded retry-with-backoff and a failure
  budget bound the blast radius of bad candidates, and a seedable
  :class:`~repro.resilience.FaultInjector` can be attached to exercise
  each of those paths deterministically (``docs/robustness.md``).
* **cache / throughput statistics** — hits, misses, simulations avoided
  wall-clock, plus failure/retry/timeout counters, surfaced through
  tuning results, ``pipeline.report`` and the ``--eval-stats`` CLI flag.

Evaluation accounting is uniform: one *request* per candidate plan
submitted (feasible, spilling or infeasible alike), independent of how
many register rungs the escalation needed.  Tuners count evaluations the
same way.  (Retries and degraded-mode re-runs do add extra requests —
they are extra trips into the model — but are tallied separately in
``retries``/``degraded``.)
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..codegen.plan import KernelPlan, REGISTER_LEVELS
from ..codegen.resources import InvalidPlan, validate_plan
from ..codegen.tiling import (
    plan_family_key,
    plan_structural_key,
    set_plan_cache_enabled,
)
from ..gpu.counters import SimulationResult
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import (
    PlanInfeasible,
    plan_occupancy,
    plan_prefix,
    simulate,
)
from ..ir.stencil import ProgramIR
from ..lint.rules_plan import _count_rejection, fusion_rejection, plan_rejection
from ..obs import span as _span
from ..obs.search import SearchLog
from ..resilience import (
    ON_ERROR_POLICIES,
    EvaluationError,
    EvaluationTimeout,
    FailureBudget,
    FaultInjector,
    RetryPolicy,
    UsageError,
)

#: Exceptions that mark a candidate as infeasible rather than a bug.
INFEASIBLE = (PlanInfeasible, InvalidPlan)


def _obs_count(name: str, value: int = 1) -> None:
    """Live resilience counters (distinct from ``EvalStats.publish``'s
    ``eval.*`` prefix, so end-of-run publication never double-counts)."""
    from ..obs import counter, metrics_enabled

    if metrics_enabled():
        counter(name).add(value)

#: Escalation strategies: ``incremental`` uses the cached register
#: demand to jump straight to the first non-spilling rung; ``ladder``
#: simulates every rung like the seed implementation (kept for
#: benchmarking and equivalence tests).
ESCALATION_MODES = ("incremental", "ladder")

#: Batch executors: ``thread`` (default) fans jobs over a thread pool;
#: ``process`` pre-computes the residual scalar simulations on a
#: fork-based process pool, then finalizes serially in the parent so
#: that all accounting, memoization and telemetry stay in one place.
EXECUTOR_MODES = ("thread", "process")

#: Smallest structural group worth routing through the vectorized
#: pricing backend — below this the per-family setup cost (structure
#: capture, array assembly) beats the per-lane savings.
MIN_FAMILY = 4


def _pricing_module():
    """The vectorized pricing backend, or None when NumPy is absent.

    Resolved lazily and cached so environments without NumPy degrade to
    the scalar path instead of failing at import time.
    """
    global _PRICING
    if _PRICING is _UNRESOLVED:
        try:
            from ..gpu import pricing as _mod

            _PRICING = _mod
        except Exception:  # pragma: no cover - no-numpy environments
            _PRICING = None
    return _PRICING


_UNRESOLVED = object()
_PRICING = _UNRESOLVED

#: Shared state for fork-based process-pool workers: the parent stashes
#: ``token -> (ir, device, validate, levels)`` immediately before
#: forking, the children inherit it through copy-on-write memory, and
#: the parent drops it when the pool closes.  Nothing unpicklable ever
#: crosses the pipe — workers are addressed by token and ship back
#: ``(family_key, registers, SimulationResult)`` primitives.
_POOL_STATE: Dict[int, tuple] = {}
_POOL_TOKEN_COUNTER = itertools.count()


def _pool_simulate_chunk(args):
    """Process-pool worker: simulate a chunk of plans, ship primitives.

    For spill-free batches (``levels`` set) the worker resolves each
    plan's register rung exactly like ``_evaluate_spill_free`` before
    simulating; for plain batches it simulates the plan as given.
    Infeasible or failing candidates are simply skipped — the parent
    re-derives their disposition on its own accounting path.
    """
    token, plans = args
    ir, device, validate, levels = _POOL_STATE[token]
    shipped = []
    for plan in plans:
        try:
            if validate:
                validate_plan(ir, plan)
            candidate = plan
            if levels is not None:
                demand = plan_prefix(ir, plan).reg_demand
                level = next((lv for lv in levels if demand <= lv), None)
                if level is None:
                    continue
                candidate = plan.replace(max_registers=level)
            result = simulate(ir, candidate, device)
        except Exception:  # noqa: BLE001 — parent re-derives disposition
            continue
        shipped.append(
            (plan_family_key(candidate), candidate.max_registers, result)
        )
    return shipped


@dataclass(frozen=True)
class Measurement:
    """One evaluated candidate."""

    plan: KernelPlan
    time_s: float
    tflops: float


#: Retained :class:`FailureRecord` entries per engine (diagnostics only;
#: the ``failures`` counter stays exact past the cap).
MAX_FAILURE_RECORDS = 100


@dataclass(frozen=True)
class FailureRecord:
    """One persistently failed candidate evaluation."""

    plan: str  # plan.describe() of the failing candidate
    error: str  # exception class name
    message: str


@dataclass
class EvalStats:
    """Cache and throughput statistics of one evaluation engine.

    Two time counters with distinct semantics:

    * ``wall_s`` — real elapsed time during which *at least one* thread
      was inside the engine (overlapping busy intervals are merged, so
      a 4-worker batch reports the batch's true duration);
    * ``cpu_s`` — per-thread time summed across workers (what the
      pre-fix ``wall_s`` reported; under concurrency it exceeds
      ``wall_s`` by up to the worker count).
    """

    requests: int = 0  # candidate evaluations requested
    hits: int = 0  # served from the result cache
    misses: int = 0  # went to the model (screened or fully simulated)
    infeasible: int = 0  # requests that turned out infeasible
    rungs_skipped: int = 0  # escalation rungs resolved without simulating
    screened: int = 0  # rejected by the occupancy screen, not simulated
    lint_rejections: int = 0  # screened rejections carrying a lint rule code
    vectorized: int = 0  # priced via the vectorized family backend
    failures: int = 0  # candidates that failed persistently (non-infeasible)
    retries: int = 0  # transient-failure retries performed
    timeouts: int = 0  # evaluations that exceeded the per-eval deadline
    degraded: int = 0  # candidates recovered via the degraded path
    wall_s: float = 0.0  # real time the engine was busy (intervals merged)
    cpu_s: float = 0.0  # summed per-thread time inside the engine

    @property
    def simulations(self) -> int:
        """Candidates priced by the model (scalar *or* vectorized).

        ``misses - screened`` — the logical count of full prices the
        engine produced.  ``vectorized`` of these came from the family
        backend; the remainder were scalar ``simulate`` calls.
        """
        return self.misses - self.screened

    @property
    def simulations_avoided(self) -> int:
        """Simulator invocations removed by memoization + incrementality."""
        return self.hits + self.rungs_skipped + self.screened

    def snapshot(self) -> "EvalStats":
        return EvalStats(
            requests=self.requests,
            hits=self.hits,
            misses=self.misses,
            infeasible=self.infeasible,
            rungs_skipped=self.rungs_skipped,
            screened=self.screened,
            lint_rejections=self.lint_rejections,
            vectorized=self.vectorized,
            failures=self.failures,
            retries=self.retries,
            timeouts=self.timeouts,
            degraded=self.degraded,
            wall_s=self.wall_s,
            cpu_s=self.cpu_s,
        )

    def since(self, before: "EvalStats") -> "EvalStats":
        """Difference of two snapshots: activity between them."""
        return EvalStats(
            requests=self.requests - before.requests,
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            infeasible=self.infeasible - before.infeasible,
            rungs_skipped=self.rungs_skipped - before.rungs_skipped,
            screened=self.screened - before.screened,
            lint_rejections=self.lint_rejections - before.lint_rejections,
            vectorized=self.vectorized - before.vectorized,
            failures=self.failures - before.failures,
            retries=self.retries - before.retries,
            timeouts=self.timeouts - before.timeouts,
            degraded=self.degraded - before.degraded,
            wall_s=self.wall_s - before.wall_s,
            cpu_s=self.cpu_s - before.cpu_s,
        )

    def add(self, other: "EvalStats") -> None:
        """Accumulate another snapshot/delta into this one in place."""
        self.requests += other.requests
        self.hits += other.hits
        self.misses += other.misses
        self.infeasible += other.infeasible
        self.rungs_skipped += other.rungs_skipped
        self.screened += other.screened
        self.lint_rejections += other.lint_rejections
        self.vectorized += other.vectorized
        self.failures += other.failures
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.degraded += other.degraded
        self.wall_s += other.wall_s
        self.cpu_s += other.cpu_s

    @property
    def hit_rate(self) -> float:
        """Cache hits per request (0.0 on an idle engine)."""
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "infeasible": self.infeasible,
            "rungs_skipped": self.rungs_skipped,
            "screened": self.screened,
            "lint_rejections": self.lint_rejections,
            "vectorized": self.vectorized,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
            "simulations": self.simulations,
            "simulations_avoided": self.simulations_avoided,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
        }

    def publish(self, prefix: str = "eval") -> None:
        """Mirror these statistics into the process metrics registry."""
        from ..obs import metrics_enabled, counter, histogram

        if not metrics_enabled():
            return
        for name, value in self.as_dict().items():
            if name in ("wall_s", "cpu_s"):
                histogram(f"{prefix}.{name}").observe(value)
            else:
                counter(f"{prefix}.{name}").add(value)

    def describe(self) -> str:
        text = (
            f"{self.requests} requests, {self.hits} cache hits, "
            f"{self.simulations} priced "
            f"[{self.vectorized} vectorized], {self.rungs_skipped} rungs "
            f"skipped, {self.screened} screened "
            f"[{self.lint_rejections} by lint rule] "
            f"({self.simulations_avoided} simulations avoided), "
            f"{self.wall_s * 1e3:.1f} ms wall "
            f"({self.cpu_s * 1e3:.1f} ms cpu-sum)"
        )
        if self.failures or self.retries or self.timeouts or self.degraded:
            text += (
                f"; {self.failures} failures ({self.retries} retries, "
                f"{self.timeouts} timeouts, {self.degraded} degraded "
                f"recoveries)"
            )
        return text


def plan_fingerprint(plan: KernelPlan, include_registers: bool = True) -> str:
    """Stable, content-addressed hex fingerprint of a plan.

    Two plans fingerprint identically iff every code-generation decision
    they encode is identical; with ``include_registers=False`` the
    register cap is factored out (the plan *family* — what the
    register-independent simulation prefix is keyed by).
    """
    payload = repr(plan_family_key(plan))
    if include_registers:
        payload += f"|regs={plan.max_registers}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@contextmanager
def evaluation_caches_disabled():
    """Disable the (ir, plan-family) geometry/prefix caches in a scope.

    Benchmarks use this to time the seed-equivalent uncached path; tests
    use it to prove cached and uncached values are identical.
    """
    set_plan_cache_enabled(False)
    try:
        yield
    finally:
        set_plan_cache_enabled(True)


class PlanEvaluator:
    """Single evaluation front-end for every tuner and baseline.

    One evaluator serves any number of programs (results are keyed by IR
    identity, with a strong reference held so ids are never recycled)
    but exactly one device.  Failures are memoized alongside successes,
    so repeatedly probing an infeasible configuration costs one lookup.

    Thread-safe: batch evaluation may run requests concurrently; the
    result cache is guarded and the underlying model is pure, so
    duplicated in-flight work is harmless and deterministic.
    """

    def __init__(
        self,
        device: DeviceSpec = P100,
        memoize: bool = True,
        workers: Optional[int] = None,
        escalation: str = "incremental",
        validate: bool = True,
        prescreen: bool = True,
        on_error: str = "fail-fast",
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        failure_budget: Optional[object] = None,
        fault_injector: Optional[FaultInjector] = None,
        search_log: Optional[SearchLog] = None,
        vectorize: Optional[bool] = None,
        executor: str = "thread",
    ):
        if escalation not in ESCALATION_MODES:
            raise UsageError(
                f"unknown escalation mode {escalation!r}; "
                f"expected one of {ESCALATION_MODES}"
            )
        if on_error not in ON_ERROR_POLICIES:
            raise UsageError(
                f"unknown on_error policy {on_error!r}; "
                f"expected one of {ON_ERROR_POLICIES}"
            )
        if timeout_s is not None and timeout_s <= 0:
            raise UsageError("timeout_s must be positive")
        if executor not in EXECUTOR_MODES:
            raise UsageError(
                f"unknown executor {executor!r}; "
                f"expected one of {EXECUTOR_MODES}"
            )
        if executor == "process" and fault_injector is not None:
            raise UsageError(
                "executor='process' cannot honour a FaultInjector: "
                "pool workers run in separate processes and would not "
                "observe the injected fault schedule"
            )
        self.device = device
        self.memoize = memoize
        self.workers = workers
        self.escalation = escalation
        #: run ``validate_plan`` before simulating (some baselines probe
        #: raw configurations the way a fixed code generator would,
        #: without the planner's feasibility screen).
        self.validate = validate
        #: reject launch-infeasible candidates from the occupancy screen
        #: without running the full counter/timing model.
        self.prescreen = prescreen
        #: what a persistent (post-retry) unexpected failure does to a
        #: batch: abort it, quarantine the candidate, or first try the
        #: degraded path.  See ``repro.resilience.ON_ERROR_POLICIES``.
        self.on_error = on_error
        self.retry = retry
        self.timeout_s = timeout_s
        if failure_budget is None or isinstance(failure_budget, FailureBudget):
            self.failure_budget = failure_budget or FailureBudget(None)
        else:
            self.failure_budget = FailureBudget(int(failure_budget))
        self.fault_injector = fault_injector
        #: candidate-level telemetry sink (``repro.obs.search``): when
        #: set, every request resolved by this engine — cache hits,
        #: screens, infeasibilities, faults included — emits exactly one
        #: ``candidate`` event, so the log mirrors ``stats.requests``.
        self.search_log = search_log
        #: route batch evaluation through the vectorized family-pricing
        #: backend (``repro.gpu.pricing``) when structural groups are
        #: large enough.  Defaults to "whenever NumPy is importable";
        #: results are bit-for-bit identical either way, so this is a
        #: pure throughput knob.
        if vectorize is None:
            vectorize = _pricing_module() is not None
        self.vectorize = bool(vectorize)
        self.executor = executor
        #: per-phase activity, accumulated by :meth:`phase` — tuners
        #: wrap their stages so cache behaviour can be reported per
        #: phase instead of as one misleading whole-run ratio.
        self.phase_stats: Dict[str, EvalStats] = {}
        #: process-pool precomputed simulation results, keyed like the
        #: memo cache; consumed (popped) by ``_evaluate`` in place of a
        #: scalar ``simulate`` call.
        self._precomputed: Dict[tuple, SimulationResult] = {}
        self.stats = EvalStats()
        #: most recent persistent failures, for post-mortem reporting
        #: (bounded; counters in ``stats`` are exact).
        self.failure_records: List[FailureRecord] = []
        #: key -> (ir, ("ok", SimulationResult) | ("fail", exception))
        self._cache: Dict[tuple, tuple] = {}
        self._lock = threading.Lock()
        # Busy-interval tracking for honest wall-clock accounting: the
        # number of threads currently inside the engine and when the
        # current busy interval opened.  ``wall_s`` accumulates merged
        # intervals; ``cpu_s`` sums each thread's outermost frame.
        self._busy = 0
        self._busy_open = 0.0
        self._depth = threading.local()
        # Degraded-mode flag (per thread): when set, the memo-cache read
        # and the occupancy prescreen are bypassed and fault injection
        # is disarmed — the slow-but-conservative path.
        self._degraded = threading.local()

    @classmethod
    def seed_mode(cls, device: DeviceSpec = P100) -> "PlanEvaluator":
        """An engine that replicates the pre-engine evaluation path:

        no memoization, the full 4-rung register ladder, no occupancy
        prescreen.  Combine with :func:`evaluation_caches_disabled` to
        also recompute the per-family geometry each time.  Benchmarks
        and equivalence tests use this as the comparison baseline.
        """
        return cls(
            device=device,
            memoize=False,
            escalation="ladder",
            prescreen=False,
            vectorize=False,
        )

    # -- phase accounting ------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute engine activity inside the block to phase ``name``.

        Deltas accumulate in :attr:`phase_stats`, so re-entering a phase
        (e.g. stage 2 running once per stage-1 survivor) extends its
        bucket.  Phases are flat — tuners label their top-level stages;
        nesting would double-count and is not supported.
        """
        before = self.stats.snapshot()
        try:
            yield
        finally:
            delta = self.stats.since(before)
            with self._lock:
                bucket = self.phase_stats.setdefault(name, EvalStats())
            bucket.add(delta)

    def phase_dict(self) -> Dict[str, Dict[str, float]]:
        """``phase -> as_dict()`` for reports and benchmark baselines."""
        return {
            name: stats.as_dict() for name, stats in self.phase_stats.items()
        }

    # -- timing ----------------------------------------------------------------

    @contextmanager
    def _timed(self):
        """Account engine time: merged-interval wall + per-thread cpu sum.

        Only a thread's *outermost* engine frame participates (nested
        calls — ``evaluate_spill_free`` invoking ``evaluate`` — must not
        double-bill), and overlapping frames from concurrent workers
        extend one shared busy interval instead of each adding their
        own full delta.
        """
        depth = getattr(self._depth, "value", 0)
        self._depth.value = depth + 1
        if depth > 0:
            try:
                yield
            finally:
                self._depth.value = depth
            return
        start = time.perf_counter()
        with self._lock:
            if self._busy == 0:
                self._busy_open = start
            self._busy += 1
        try:
            yield
        finally:
            end = time.perf_counter()
            self._depth.value = depth
            with self._lock:
                self.stats.cpu_s += end - start
                self._busy -= 1
                if self._busy == 0:
                    self.stats.wall_s += end - self._busy_open

    # -- single evaluation -----------------------------------------------------

    def _key(self, ir: ProgramIR, plan: KernelPlan) -> tuple:
        # The device profile is part of the content address: the same
        # plan priced on two profiles must never share a cache entry
        # (profiles are frozen, hashable value objects — two specs that
        # merely share a name still produce distinct keys).
        return (id(ir), self.device, plan_family_key(plan), plan.max_registers)

    def evaluate(self, ir: ProgramIR, plan: KernelPlan) -> SimulationResult:
        """Validate + simulate one plan, memoized.

        Raises :class:`PlanInfeasible` / :class:`InvalidPlan` exactly as
        the direct ``validate_plan`` + ``simulate`` path would.
        """
        with self._timed():
            return self._evaluate(ir, plan)

    def _in_degraded_mode(self) -> bool:
        return getattr(self._degraded, "value", False)

    def _log_candidate(
        self,
        plan: KernelPlan,
        disposition: str,
        reason: Optional[str] = None,
        result: Optional[SimulationResult] = None,
        degraded: bool = False,
    ) -> None:
        if self.search_log is None:
            return
        self.search_log.candidate(
            plan,
            fingerprint=plan_fingerprint(plan),
            family=plan_fingerprint(plan, include_registers=False),
            disposition=disposition,
            reason=reason,
            result=result,
            degraded=degraded,
            device=self.device.name,
        )

    def _evaluate(
        self,
        ir: ProgramIR,
        plan: KernelPlan,
        rejection_fn=None,
        produce_fn=None,
    ) -> SimulationResult:
        """One request through the engine, scalar or family-priced.

        Without hooks this is the scalar path: validate, prescreen,
        simulate.  The family-pricing path injects two hooks carrying a
        pre-priced lane — ``rejection_fn(plan) -> (code, message) |
        None`` replaces the prescreen (the lane already knows its
        occupancy verdict; it may also *raise* an INFEASIBLE directly to
        replay a validation failure) and ``produce_fn(plan)`` replaces
        the ``simulate`` call.  Everything observable — request/hit/
        miss/screen/infeasible accounting, memoization, candidate
        telemetry, fault injection — is identical in both modes, and
        degraded mode always drops the hooks and re-runs the scalar
        conservative path.
        """
        self.stats.requests += 1
        degraded = self._in_degraded_mode()
        if degraded:
            rejection_fn = None
            produce_fn = None
        key = self._key(ir, plan)
        if self.memoize and not degraded:
            with self._lock:
                hit = self._cache.get(key)
            if hit is not None and hit[0] is ir:
                self.stats.hits += 1
                status, value = hit[1]
                if status == "ok":
                    self._log_candidate(plan, "cache-hit", result=value)
                    return value
                self.stats.infeasible += 1
                self._log_candidate(
                    plan, "cache-hit-infeasible", reason=str(value)
                )
                raise value
        self.stats.misses += 1
        screened = False
        try:
            # Legality prescreen: structural lint rules, the RL3xx
            # transformation certifier (dependence-distance refutations
            # of fusion/time-tile/streaming/retiming), and the cheap
            # register-dependent occupancy suffix — candidates the
            # device cannot run (or whose transformations are provably
            # illegal) are rejected without paying for the counter and
            # timing models, and every rejection carries a stable
            # ``RLxxx`` rule code.
            rejection = None
            witness = None
            if rejection_fn is not None:
                rejection = rejection_fn(plan)
            else:
                if self.validate:
                    validate_plan(ir, plan)
                if self.prescreen and not degraded:
                    diag = plan_rejection(
                        ir, plan, self.device, assume_validated=True
                    )
                    if diag is not None:
                        rejection = (diag.code, diag.message)
                        # RL3xx refutations carry a counterexample
                        # (grid point + event pair); thread it into the
                        # exception context so batch telemetry can show
                        # *why* the plan is illegal, not just the code.
                        witness = diag.witness
            if rejection is not None:
                code, message = rejection
                self.stats.screened += 1
                self.stats.lint_rejections += 1
                screened = True
                raise PlanInfeasible(
                    f"[{code}] {message}",
                    rule=code,
                    witness=(
                        witness.describe() if witness is not None else None
                    ),
                )
            if self.fault_injector is not None:
                self.fault_injector.invoke(
                    plan_fingerprint(plan), degraded=degraded
                )
            if produce_fn is not None:
                result = produce_fn(plan)
            else:
                result = None
                if self._precomputed and not degraded:
                    with self._lock:
                        result = self._precomputed.pop(key, None)
                if result is None:
                    result = simulate(ir, plan, self.device)
        except INFEASIBLE as exc:
            self.stats.infeasible += 1
            if self.memoize:
                with self._lock:
                    self._cache[key] = (ir, ("fail", exc))
            self._log_candidate(
                plan,
                "screened" if screened else "infeasible",
                reason=str(exc),
                degraded=degraded,
            )
            raise
        except Exception as exc:  # noqa: BLE001 — telemetry, then re-raise
            # Unexpected (injected or real) fault: still one request, so
            # still one candidate event; the resilience machinery decides
            # what happens to the candidate next.
            self._log_candidate(
                plan,
                "error",
                reason=f"{type(exc).__name__}: {exc}",
                degraded=degraded,
            )
            raise
        if self.memoize:
            with self._lock:
                self._cache[key] = (ir, ("ok", result))
        self._log_candidate(plan, "simulated", result=result, degraded=degraded)
        return result

    def try_evaluate(
        self,
        ir: ProgramIR,
        plan: KernelPlan,
        catch: tuple = INFEASIBLE,
    ) -> Optional[SimulationResult]:
        """Like :meth:`evaluate` but returns None for infeasible plans."""
        try:
            return self.evaluate(ir, plan)
        except catch:
            return None

    # -- register escalation ---------------------------------------------------

    def register_demand(self, ir: ProgramIR, plan: KernelPlan) -> int:
        """Uncapped register demand of a plan (register-independent)."""
        return plan_prefix(ir, plan).reg_demand

    def evaluate_spill_free(
        self,
        ir: ProgramIR,
        plan: KernelPlan,
        levels: Sequence[int] = REGISTER_LEVELS,
    ) -> Optional[Tuple[KernelPlan, SimulationResult]]:
        """The paper's dynamic register-increment ladder, incrementally.

        Returns the first (plan, result) along the escalation levels that
        does not spill, or None when the plan is infeasible or spills
        even at the top level.  In ``incremental`` mode the register-
        independent prefix supplies the demand up front, so the spilling
        rungs below the first feasible level are skipped entirely — the
        chosen plan and its simulated result are identical to walking
        the full ladder.
        """
        with self._timed():
            return self._evaluate_spill_free(ir, plan, tuple(levels))

    def _evaluate_spill_free(
        self, ir: ProgramIR, plan: KernelPlan, levels: Tuple[int, ...]
    ) -> Optional[Tuple[KernelPlan, SimulationResult]]:
        if self.escalation == "ladder":
            for level in levels:
                candidate = plan.replace(max_registers=level)
                result = self.try_evaluate(ir, candidate)
                if result is None:
                    return None
                if not result.counters.has_spills:
                    return candidate, result
            return None
        # Incremental: demand is register-independent, so the first
        # non-spilling rung is known without simulating the others.
        try:
            if self.validate:
                validate_plan(ir, plan)
            demand = self.register_demand(ir, plan)
        except INFEASIBLE as exc:
            if self.search_log is not None:
                self.search_log.prune(
                    plan,
                    family=plan_fingerprint(plan, include_registers=False),
                    reason=f"infeasible: {exc}",
                )
            return None
        level = next((lv for lv in levels if demand <= lv), None)
        if level is None:
            # Spills even at the top level: every rung would have
            # spilled; the seed ladder discarded the candidate too.
            self.stats.rungs_skipped += len(levels)
            if self.search_log is not None:
                self.search_log.prune(
                    plan,
                    family=plan_fingerprint(plan, include_registers=False),
                    reason=(
                        f"spills at every register level "
                        f"(demand {demand} > {levels[-1]})"
                    ),
                )
            return None
        position = levels.index(level)
        self.stats.rungs_skipped += position
        candidate = plan.replace(max_registers=level)
        result = self.try_evaluate(ir, candidate)
        if result is None:
            return None
        return candidate, result

    # -- batch evaluation ------------------------------------------------------

    def evaluate_batch(
        self,
        ir: ProgramIR,
        plans: Iterable[KernelPlan],
        workers: Optional[int] = None,
        catch: tuple = INFEASIBLE,
        on_result=None,
    ) -> List[Optional[SimulationResult]]:
        """Evaluate many plans, results in input order (None = infeasible).

        With ``workers`` (or the evaluator default) > 1, evaluations run
        on a thread pool; ordering and values are identical to the
        serial path because the model is pure and results are assembled
        by input position.  Structural groups large enough for the
        vectorized backend are priced whole-axis in one NumPy pass;
        small groups (and any group the vector path cannot handle) run
        the scalar route — results are bit-for-bit identical either way.
        """
        plans = list(plans)
        jobs = None
        if self._vector_eligible(len(plans)):
            jobs = self._family_jobs(
                ir, plans, spill_free=False, catch=catch
            )
        if jobs is None:
            jobs = [
                (p, lambda p=p: self.try_evaluate(ir, p, catch=catch))
                for p in plans
            ]
            self._maybe_precompute(ir, plans, workers)
        return self._run_batch(jobs, workers, on_result=on_result)

    def evaluate_spill_free_batch(
        self,
        ir: ProgramIR,
        plans: Iterable[KernelPlan],
        workers: Optional[int] = None,
        levels: Sequence[int] = REGISTER_LEVELS,
        on_result=None,
    ) -> List[Optional[Tuple[KernelPlan, SimulationResult]]]:
        """Batch variant of :meth:`evaluate_spill_free`, input-ordered."""
        plans = list(plans)
        levels = tuple(levels)
        jobs = None
        if self._vector_eligible(len(plans)) and self.escalation == "incremental":
            jobs = self._family_jobs(
                ir, plans, spill_free=True, levels=levels
            )
        if jobs is None:
            jobs = [
                (p, lambda p=p: self.evaluate_spill_free(ir, p, levels=levels))
                for p in plans
            ]
            self._maybe_precompute(ir, plans, workers, levels=levels)
        return self._run_batch(jobs, workers, on_result=on_result)

    # -- vectorized family pricing ---------------------------------------------

    def _vector_eligible(self, count: int) -> bool:
        return (
            self.vectorize
            and count >= MIN_FAMILY
            and _pricing_module() is not None
        )

    def _family_jobs(
        self,
        ir: ProgramIR,
        plans: List[KernelPlan],
        spill_free: bool,
        levels: Tuple[int, ...] = REGISTER_LEVELS,
        catch: tuple = INFEASIBLE,
    ) -> Optional[List[tuple]]:
        """Build input-ordered ``(plan, thunk)`` jobs with family pricing.

        Plans are grouped by structural key; groups of ``MIN_FAMILY`` or
        more are priced in one vectorized pass (eagerly, on the
        submitting thread, under the engine timer) and their thunks
        merely *finalize* the pre-priced lane through the normal
        accounting.  Small groups — and any group whose vector pricing
        fails for an unexpected reason — keep scalar thunks.  Returns
        None when grouping itself fails, meaning "use the scalar batch".
        """
        with self._timed():
            try:
                groups: Dict[tuple, List[int]] = {}
                for index, plan in enumerate(plans):
                    groups.setdefault(
                        plan_structural_key(plan), []
                    ).append(index)
            except Exception:  # noqa: BLE001 — odd plan: scalar batch
                return None
            jobs: List[Optional[tuple]] = [None] * len(plans)
            for indexes in groups.values():
                members = [plans[i] for i in indexes]
                thunks = None
                if len(indexes) >= MIN_FAMILY:
                    try:
                        if spill_free:
                            thunks = self._price_spill_free_group(
                                ir, members, levels
                            )
                        else:
                            thunks = self._price_group(ir, members, catch)
                    except Exception:  # noqa: BLE001 — fall back to scalar
                        _obs_count("pricing.scalar_fallbacks")
                        thunks = None
                if thunks is None:
                    if spill_free:
                        thunks = [
                            (
                                lambda p=p: self.evaluate_spill_free(
                                    ir, p, levels=levels
                                )
                            )
                            for p in members
                        ]
                    else:
                        thunks = [
                            (lambda p=p: self.try_evaluate(ir, p, catch=catch))
                            for p in members
                        ]
                for i, thunk in zip(indexes, thunks):
                    jobs[i] = (plans[i], thunk)
            return jobs  # type: ignore[return-value]

    def _price_spill_free_group(
        self, ir: ProgramIR, group: List[KernelPlan], levels: Tuple[int, ...]
    ) -> List:
        """Finalize-thunks for one structural family, spill-free mode.

        Mirrors :meth:`_evaluate_spill_free` lane by lane: validation
        failures and all-level spills prune without a request;
        everything else resolves to the first non-spilling rung and
        finalizes the pre-priced lane through :meth:`_evaluate`.
        """
        pricing = _pricing_module()
        proto = group[0]
        if self.validate:
            try:
                validate_plan(ir, proto)
            except INFEASIBLE as exc:
                reason = f"infeasible: {exc}"
                return [
                    (lambda p=p: self._prune_job(p, reason))
                    for p in group
                ]
        structure = pricing.family_structure(ir, proto)
        fusion = fusion_rejection(ir, proto) if self.prescreen else None
        if fusion is None:
            # One-shot: demand, rung resolution, and pricing share a
            # single pass over the family's lane arrays.  A lane the
            # memo already holds is priced wastefully, but misses
            # dominate searches so overwhelmingly that one fused pass
            # beats a demand pass plus a memo-filtered pricing pass.
            demands, positions, lanes = structure.price_spill_free(
                group, levels, self.device
            )
        else:
            # Fusion-rejected families never reach the occupancy screen
            # or the model, so pricing their lanes would be pure waste;
            # rung resolution still needs the demand vector.
            demands = structure.demand(group)
            positions = lanes = None
        thunks: List = []
        for i, plan in enumerate(group):
            demand = int(demands[i])
            if positions is not None:
                position = int(positions[i])
            else:
                level = next((lv for lv in levels if demand <= lv), None)
                position = -1 if level is None else levels.index(level)
            if position < 0:
                reason = (
                    f"spills at every register level "
                    f"(demand {demand} > {levels[-1]})"
                )
                thunks.append(
                    lambda p=plan, r=reason: self._all_spill_job(
                        p, r, len(levels)
                    )
                )
                continue
            candidate = plan.replace(max_registers=levels[position])
            lane = lanes[i] if lanes is not None else None
            thunks.append(
                lambda c=candidate, l=lane, pos=position: (
                    self._spill_free_finalize(ir, c, l, pos, fusion)
                )
            )
        return thunks

    def _price_group(
        self, ir: ProgramIR, group: List[KernelPlan], catch: tuple
    ) -> List:
        """Finalize-thunks for one structural family, plain-batch mode.

        Mirrors ``try_evaluate``: a validation failure replays as an
        in-request infeasibility (request + miss + memoized exception),
        exactly as the scalar ``_evaluate`` raises it.
        """
        pricing = _pricing_module()
        proto = group[0]
        invalid: Optional[BaseException] = None
        if self.validate:
            try:
                validate_plan(ir, proto)
            except INFEASIBLE as exc:
                invalid = exc
        if invalid is not None:
            def reject(plan, exc=invalid):
                raise exc

            return [
                (
                    lambda p=p: self._finalize(
                        ir, p, None, None, catch, rejection_fn=reject
                    )
                )
                for p in group
            ]
        structure = pricing.family_structure(ir, proto)
        fusion = fusion_rejection(ir, proto) if self.prescreen else None
        need_pricing = fusion is None
        to_price: Dict[tuple, KernelPlan] = {}
        keys = []
        for plan in group:
            key = self._key(ir, plan)
            keys.append(key)
            if need_pricing and not self._memo_has(ir, key):
                to_price.setdefault(key, plan)
        lane_by_key = self._price_lanes(structure, to_price)
        return [
            (
                lambda p=p, l=lane_by_key.get(k): self._finalize(
                    ir, p, l, fusion, catch
                )
            )
            for p, k in zip(group, keys)
        ]

    def _price_lanes(self, structure, to_price: Dict[tuple, KernelPlan]):
        """One vectorized pricing pass over the not-yet-memoized lanes."""
        if not to_price:
            return {}
        keys = list(to_price)
        lanes = structure.price([to_price[k] for k in keys], self.device)
        return dict(zip(keys, lanes))

    def _memo_has(self, ir: ProgramIR, key: tuple) -> bool:
        if not self.memoize:
            return False
        with self._lock:
            hit = self._cache.get(key)
        return hit is not None and hit[0] is ir

    def _prune_job(self, plan: KernelPlan, reason: str) -> None:
        with self._timed():
            if self.search_log is not None:
                self.search_log.prune(
                    plan,
                    family=plan_fingerprint(plan, include_registers=False),
                    reason=reason,
                )
            return None

    def _all_spill_job(
        self, plan: KernelPlan, reason: str, rungs: int
    ) -> None:
        with self._timed():
            self.stats.rungs_skipped += rungs
            if self.search_log is not None:
                self.search_log.prune(
                    plan,
                    family=plan_fingerprint(plan, include_registers=False),
                    reason=reason,
                )
            return None

    def _spill_free_finalize(
        self, ir: ProgramIR, candidate: KernelPlan, lane, position: int, fusion
    ) -> Optional[Tuple[KernelPlan, SimulationResult]]:
        with self._timed():
            self.stats.rungs_skipped += position
            result = self._finalize(ir, candidate, lane, fusion, INFEASIBLE)
            if result is None:
                return None
            return candidate, result

    def _finalize(
        self,
        ir: ProgramIR,
        plan: KernelPlan,
        lane,
        fusion,
        catch: tuple,
        rejection_fn=None,
    ) -> Optional[SimulationResult]:
        """Resolve one pre-priced lane through the normal request path."""
        with self._timed():
            if rejection_fn is None:
                rejection_fn, produce_fn = self._lane_fns(ir, lane, fusion)
            else:
                produce_fn = None
            try:
                return self._evaluate(
                    ir,
                    plan,
                    rejection_fn=rejection_fn,
                    produce_fn=produce_fn,
                )
            except catch:
                return None

    def _lane_fns(self, ir: ProgramIR, lane, fusion):
        """The two ``_evaluate`` hooks for one pre-priced lane.

        ``lane`` may be None when the memo pre-check expected a cache
        hit (or the family was fusion-rejected before pricing); the
        produce hook then falls back to a scalar ``simulate`` so a
        cache race or memoize=False still yields a correct result.
        """

        def rejection_fn(plan):
            if not self.prescreen:
                return None
            if fusion is not None:
                _count_rejection(fusion.code)
                return (fusion.code, fusion.message)
            if lane is not None and lane.occ_message is not None:
                self._count_occupancy_screen(lane.occ_code)
                return (lane.occ_code, lane.occ_message)
            return None

        def produce_fn(plan):
            if lane is None:
                return simulate(ir, plan, self.device)
            if lane.occ_message is not None:
                # Prescreen disabled: surface the occupancy failure
                # exactly as ``simulate``'s plan_occupancy step would.
                self._count_occupancy_screen(lane.occ_code)
                raise PlanInfeasible(lane.occ_message, **lane.occ_context)
            self.stats.vectorized += 1
            return lane.result

        return rejection_fn, produce_fn

    @staticmethod
    def _count_occupancy_screen(code: Optional[str]) -> None:
        """Mirror ``plan_occupancy``'s rejection counters for a lane."""
        from ..obs import counter, metrics_enabled

        if metrics_enabled():
            counter("simulate.prescreen_rejections").add()
            counter(f"lint.reject.{code}").add()

    def _maybe_precompute(
        self,
        ir: ProgramIR,
        plans: List[KernelPlan],
        workers: Optional[int],
        levels: Optional[Tuple[int, ...]] = None,
    ) -> None:
        """Process-pool pre-computation of the residual scalar work.

        With ``executor='process'``, the pure ``simulate`` calls a
        scalar batch is about to make are farmed out to a fork-based
        :class:`ProcessPoolExecutor` first; workers ship back plain
        ``(family_key, registers, SimulationResult)`` primitives and the
        parent seeds them into ``_precomputed``, where ``_evaluate``
        consumes them in place of its own ``simulate`` call.  All
        accounting, memoization, prescreening and telemetry stay in the
        parent, so results and statistics are identical to the thread
        path — simulation results are pure values and pickle exactly.
        Any pool failure (no fork on this platform, unpicklable IR)
        degrades silently to plain in-process evaluation.
        """
        import multiprocessing

        count = workers if workers is not None else self.workers
        if (
            self.executor != "process"
            or count is None
            or count <= 1
            or len(plans) <= 1
        ):
            return
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            return
        token = next(_POOL_TOKEN_COUNTER)
        _POOL_STATE[token] = (ir, self.device, self.validate, levels)
        try:
            from concurrent.futures import ProcessPoolExecutor

            count = min(count, len(plans))
            chunks = [plans[i::count] for i in range(count)]
            with _span(
                "eval.precompute", candidates=len(plans), workers=count
            ):
                with ProcessPoolExecutor(
                    max_workers=count, mp_context=context
                ) as pool:
                    for shipped in pool.map(
                        _pool_simulate_chunk,
                        [(token, chunk) for chunk in chunks],
                    ):
                        with self._lock:
                            for family_key, registers, result in shipped:
                                self._precomputed[
                                    (id(ir), family_key, registers)
                                ] = result
        except Exception:  # noqa: BLE001 — pool is an optimization only
            _obs_count("resilience.pool_failures")
        finally:
            _POOL_STATE.pop(token, None)

    def _run_batch(self, jobs, workers: Optional[int], on_result=None) -> List:
        """Run ``(plan, thunk)`` jobs, input-ordered, under the guard.

        Every job runs inside :meth:`_guarded`, which enforces the
        per-evaluation timeout, the retry policy and the ``on_error``
        policy — an unexpected exception in one job is captured and
        resolved per-candidate instead of propagating out and killing
        the whole batch (unless the policy is ``fail-fast``, in which
        case it propagates *wrapped*, carrying the candidate context).

        ``on_result(index, plan, outcome, error)`` fires as each job
        completes — even if a later job aborts the batch — which is
        what lets the tuning journal checkpoint mid-batch progress.
        """
        count = workers if workers is not None else self.workers
        serial = count is None or count <= 1 or len(jobs) <= 1
        if self.executor == "process":
            # Heavy work was pre-computed on the pool; the remaining
            # per-candidate finalization is cheap and lock-heavy, so it
            # runs serially in the parent.
            serial = True
        if serial:
            with _span("eval.batch", candidates=len(jobs), workers=1):
                return [
                    self._guarded(plan, thunk, index, on_result)
                    for index, (plan, thunk) in enumerate(jobs)
                ]
        # Worker threads have no tag stack of their own: capture the
        # submitting thread's search-log context here and re-install it
        # around every job, so batch candidates carry their tuner tags.
        tags = self.search_log.capture() if self.search_log else None

        def run_job(plan, thunk, index):
            if tags is None:
                return self._guarded(plan, thunk, index, on_result)
            with self.search_log.use(tags):
                return self._guarded(plan, thunk, index, on_result)

        with _span("eval.batch", candidates=len(jobs), workers=count):
            with ThreadPoolExecutor(max_workers=count) as pool:
                futures = [
                    pool.submit(run_job, plan, thunk, index)
                    for index, (plan, thunk) in enumerate(jobs)
                ]
                return [future.result() for future in futures]

    # -- fault tolerance -------------------------------------------------------

    def _guarded(self, plan, thunk, index: int = 0, on_result=None):
        """Run one batch job under timeout/retry/on_error protection."""
        try:
            try:
                result = self._attempt_with_retries(thunk, plan)
            except INFEASIBLE:
                result = None
        except Exception as exc:  # noqa: BLE001 — resolved by policy
            return self._resolve_failure(plan, thunk, exc, index, on_result)
        if on_result is not None:
            on_result(index, plan, result, None)
        return result

    def _attempt_with_retries(self, thunk, plan=None):
        """One evaluation attempt plus the retry policy's re-attempts."""
        max_retries = self.retry.max_retries if self.retry else 0
        attempt = 0
        while True:
            try:
                return self._attempt(thunk)
            except INFEASIBLE:
                raise
            except Exception as exc:  # noqa: BLE001
                if isinstance(exc, EvaluationTimeout):
                    with self._lock:
                        self.stats.timeouts += 1
                    _obs_count("resilience.timeouts")
                    if self.search_log is not None and plan is not None:
                        self.search_log.marker(
                            "timeout", plan, timeout_s=self.timeout_s
                        )
                if attempt >= max_retries:
                    raise
                with self._lock:
                    self.stats.retries += 1
                _obs_count("resilience.retries")
                if self.search_log is not None and plan is not None:
                    self.search_log.marker(
                        "retry", plan, attempt=attempt + 1,
                        error=type(exc).__name__,
                    )
                self.retry.sleep(attempt)
                attempt += 1

    def _attempt(self, thunk):
        """Run a thunk, bounded by the per-evaluation timeout.

        With a timeout configured the thunk runs on a daemon watchdog
        thread so a hung evaluation cannot wedge the batch (or block
        interpreter exit); its result is simply abandoned.
        """
        timeout = self.timeout_s
        if timeout is None:
            return thunk()
        box: dict = {}
        done = threading.Event()
        # The watchdog thread starts with an empty tag stack: hand the
        # caller's search-log context across so telemetry stays attributed.
        tags = self.search_log.capture() if self.search_log else None

        def run():
            try:
                if tags is None:
                    box["value"] = thunk()
                else:
                    with self.search_log.use(tags):
                        box["value"] = thunk()
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                box["error"] = exc
            finally:
                done.set()

        worker = threading.Thread(target=run, daemon=True, name="eval-watchdog")
        worker.start()
        if not done.wait(timeout):
            raise EvaluationTimeout(
                f"evaluation exceeded {timeout}s deadline", timeout_s=timeout
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _resolve_failure(self, plan, thunk, exc, index: int, on_result):
        """Apply the ``on_error`` policy to a persistent failure."""
        described = plan.describe() if hasattr(plan, "describe") else str(plan)
        if self.on_error == "degrade":
            try:
                try:
                    result = self._attempt_degraded(thunk)
                except INFEASIBLE:
                    result = None
            except Exception as degraded_exc:  # noqa: BLE001
                exc = degraded_exc
            else:
                with self._lock:
                    self.stats.degraded += 1
                _obs_count("resilience.degraded")
                if self.search_log is not None:
                    self.search_log.marker("degraded", plan)
                if on_result is not None:
                    on_result(index, plan, result, None)
                return result
        with self._lock:
            self.stats.failures += 1
            if len(self.failure_records) < MAX_FAILURE_RECORDS:
                self.failure_records.append(
                    FailureRecord(
                        plan=described,
                        error=type(exc).__name__,
                        message=str(exc),
                    )
                )
        _obs_count("resilience.failures")
        if self.on_error == "fail-fast":
            if self.search_log is not None:
                self.search_log.marker(
                    "failure", plan, error=type(exc).__name__,
                    message=str(exc),
                )
            if isinstance(exc, EvaluationError):
                raise exc.with_context(plan=described, candidate=index)
            raise EvaluationError(
                f"evaluation of candidate failed: {exc}",
                plan=described,
                candidate=index,
                phase="evaluate",
            ) from exc
        # skip / degrade: quarantine the candidate and keep searching,
        # unless the failure budget says the run is systemically broken.
        if self.search_log is not None:
            self.search_log.marker(
                "skip", plan, error=type(exc).__name__, message=str(exc)
            )
        self.failure_budget.charge(plan=described)
        if on_result is not None:
            on_result(index, plan, None, exc)
        return None

    def _attempt_degraded(self, thunk):
        """Re-run a failed thunk on the conservative path.

        Degraded mode bypasses the memo-cache read and the occupancy
        prescreen and disarms fault injection — everything optional
        between the caller and the model — while still honouring the
        per-evaluation timeout.
        """
        self._degraded.value = True
        try:
            return self._attempt(thunk)
        finally:
            self._degraded.value = False

    # -- maintenance -----------------------------------------------------------

    def cache_size(self) -> int:
        with self._lock:
            return len(self._cache)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
