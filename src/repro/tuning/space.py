"""Pruned autotuning search space (paper Section V).

The autotuner prunes the configuration space with three choices that
"conform to the tuned parameters discovered by other autotuners":

1. block sizes and unroll factors are powers of two per dimension;
2. block sizes are in [4, 256] per dimension (total ≤ device limit);
3. unroll factors are ≤ 8 for bandwidth-bound stencils and ≤ 4 for
   compute-bound ones.

Unrolled versions are ordered so the statement count after unrolling
(``uz*uy*ux``) increases monotonically, letting the tuner escalate the
per-thread register budget (32 → 64 → 128 → 255) and skip spilling
configurations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from ..codegen.plan import KernelPlan, REGISTER_LEVELS
from ..gpu.device import DeviceSpec, P100

BLOCK_MIN = 4
BLOCK_MAX = 256
UNROLL_MAX_BANDWIDTH = 8
UNROLL_MAX_COMPUTE = 4


def _powers_of_two(lo: int, hi: int) -> Tuple[int, ...]:
    out: List[int] = []
    value = lo
    while value <= hi:
        out.append(value)
        value *= 2
    return tuple(out)


@dataclass(frozen=True)
class SearchSpace:
    """The pruned candidate space for one kernel."""

    ndim: int
    streaming: bool
    bandwidth_bound: bool = True
    allow_unroll: bool = True
    device: DeviceSpec = P100

    @property
    def tiled_dims(self) -> int:
        return self.ndim - 1 if self.streaming else self.ndim

    def block_candidates(self) -> Tuple[Tuple[int, ...], ...]:
        """Power-of-two blocks within [4, 256] per dim and device limits."""
        sizes = _powers_of_two(BLOCK_MIN, BLOCK_MAX)
        out: List[Tuple[int, ...]] = []
        for combo in itertools.product(sizes, repeat=self.tiled_dims):
            threads = 1
            for extent in combo:
                threads *= extent
            if threads < self.device.warp_size:
                continue
            if threads > self.device.max_threads_per_block:
                continue
            out.append(combo)
        return tuple(out)

    def unroll_candidates(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-axis unroll factors, ordered by total unroll (monotone)."""
        if not self.allow_unroll:
            return (tuple([1] * self.ndim),)
        cap = (
            UNROLL_MAX_BANDWIDTH
            if self.bandwidth_bound
            else UNROLL_MAX_COMPUTE
        )
        factors = _powers_of_two(1, cap)
        combos: List[Tuple[int, ...]] = []
        for combo in itertools.product(factors, repeat=self.ndim):
            if self.streaming and combo[0] != 1:
                continue  # no unrolling along the serial sweep
            total = 1
            for factor in combo:
                total *= factor
            if total > cap:
                continue
            combos.append(combo)
        combos.sort(key=lambda c: (self._total(c), c))
        return tuple(combos)

    @staticmethod
    def _total(combo: Sequence[int]) -> int:
        total = 1
        for factor in combo:
            total *= factor
        return total

    def register_levels(self) -> Tuple[int, ...]:
        return REGISTER_LEVELS

    def size(self) -> int:
        """Candidate count of the pruned (block x unroll) space."""
        return len(self.block_candidates()) * len(self.unroll_candidates())


def exhaustive_space_size(ndim: int, streaming: bool) -> int:
    """Rough census of an *unpruned* OpenTuner-style space.

    Every block extent in [1, 1024], every unroll in [1, 16], four
    register levels, boolean prefetch, three perspectives, three
    streaming modes — the combinatorial space Section V contrasts
    hierarchical tuning against (OpenTuner took > 24h on it).
    """
    dims = ndim - 1 if streaming else ndim
    blocks = 1024 ** dims
    unrolls = 16 ** ndim
    return blocks * unrolls * len(REGISTER_LEVELS) * 2 * 3 * 3


def seed_variants(
    plan: KernelPlan, space: SearchSpace
) -> Iterator[KernelPlan]:
    """Stage-1 variants: block size x unroll factors over the base plan."""
    for block in space.block_candidates():
        for unroll in space.unroll_candidates():
            yield plan.replace(block=block, unroll=unroll)


def prune_overtiled(
    ir, candidates: Sequence[KernelPlan], search_log=None
) -> List[KernelPlan]:
    """Drop candidates whose tile exceeds the domain (lint rule RL205).

    A block tile (threads x unroll) larger than the domain extent along
    any axis leaves part of every block permanently idle.  On hardware
    such plans are wasteful; in the analytical model they are still
    priced as first-class citizens (unroll past the domain extent keeps
    changing the instruction mix), so pruning them trades model
    fidelity for saved simulations — which is why the tuners expose it
    as an opt-in (``HierarchicalTuner(lint_prune=True)``) rather than a
    default.

    If *every* candidate is overtiled (tiny test domains), the list is
    returned unpruned: the tuner must still measure something.
    """
    try:
        domain = ir.domain_shape()
    except ValueError:
        return list(candidates)

    def overtiled(plan: KernelPlan) -> bool:
        return any(
            plan.tile_extent(axis, ir.ndim) > domain[axis]
            for axis in plan.tiled_axes(ir.ndim)
        )

    kept = [plan for plan in candidates if not overtiled(plan)]
    if not kept:
        return list(candidates)
    dropped = len(candidates) - len(kept)
    if dropped:
        from ..obs import counter, metrics_enabled

        if metrics_enabled():
            counter("lint.prune.overtile").add(dropped)
        if search_log is not None:
            search_log.emit(
                "prune",
                reason="lint.RL205",
                dropped=dropped,
                kept=len(kept),
            )
    return kept
