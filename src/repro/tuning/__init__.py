"""Autotuning: pruned spaces, hierarchical tuning, deep tuning, fission."""

from .deeptuning import (
    DeepTuningEntry,
    DeepTuningResult,
    FusionSchedule,
    MAX_FUSION_DEGREE,
    deep_tune,
    fusion_schedule,
    schedule_to_program_plan,
)
from .evaluator import (
    EXECUTOR_MODES,
    EvalStats,
    FailureRecord,
    PlanEvaluator,
    evaluation_caches_disabled,
    plan_fingerprint,
)
from .fission import (
    FissionCandidate,
    dedupe_candidates,
    export_dsl,
    generate_fission_candidates,
    recompute_fission,
    trivial_fission,
)
from .fusion import fuse_instances, maxfuse
from .hierarchical import (
    HierarchicalTuner,
    Measurement,
    TuningResult,
    tune_kernel,
)
from .space import (
    SearchSpace,
    exhaustive_space_size,
    seed_variants,
)
from .transfer import (
    TransferSeed,
    WarmStartTuner,
    journaled_winners,
    transfer_deep_tune,
    transfer_tune,
)

__all__ = [
    "DeepTuningEntry",
    "DeepTuningResult",
    "EXECUTOR_MODES",
    "EvalStats",
    "FailureRecord",
    "FissionCandidate",
    "FusionSchedule",
    "HierarchicalTuner",
    "MAX_FUSION_DEGREE",
    "Measurement",
    "PlanEvaluator",
    "SearchSpace",
    "TransferSeed",
    "TuningResult",
    "WarmStartTuner",
    "dedupe_candidates",
    "deep_tune",
    "evaluation_caches_disabled",
    "plan_fingerprint",
    "exhaustive_space_size",
    "export_dsl",
    "fuse_instances",
    "fusion_schedule",
    "generate_fission_candidates",
    "journaled_winners",
    "maxfuse",
    "recompute_fission",
    "schedule_to_program_plan",
    "seed_variants",
    "transfer_deep_tune",
    "transfer_tune",
    "trivial_fission",
    "tune_kernel",
]
