"""Deep tuning of iterative stencils for arbitrary time iterations (§VI-A).

ARTEMIS generates version ``(x × 1)`` — one fused launch covering ``x``
time steps — starting at ``x = 1``.  Each version is autotuned and then
profiled; version ``(x+1) × 1`` is tuned *only if* version ``(x × 1)`` is
still bandwidth-bound at DRAM, texture cache, or shared memory (fusion
only helps bandwidth-bound kernels).  With the per-launch times ``f(x)``
recorded, a near-optimal fusion schedule for any iteration count ``T``
follows from the dynamic program::

    opt(0) = 0
    opt(T) = min over 1 <= x <= min(k, T) of  f(x) + opt(T - x)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..codegen.plan import KernelPlan, ProgramPlan
from ..codegen.resources import auto_assign, seed_plan_from_pragma
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import PlanInfeasible
from ..ir.stencil import ProgramIR
from ..obs import span as _span
from ..obs.search import log_context as _log_context
from ..profiling.roofline import classify_result
from ..resilience.checkpoint import (
    TuningJournal,
    ir_fingerprint,
    plan_from_dict,
    plan_to_dict,
)
from ..resilience.errors import UsageError
from .evaluator import EvalStats, Measurement, PlanEvaluator
from .hierarchical import HierarchicalTuner, TuningResult

#: Hard cap on explored fusion degrees ("usually k <= 4 for most order-1
#: stencils, and much smaller for high-order stencils").
MAX_FUSION_DEGREE = 8


@dataclass(frozen=True)
class DeepTuningEntry:
    """One tuned fusion degree."""

    time_tile: int
    measurement: Measurement
    bandwidth_bound: bool
    bound_level: str

    @property
    def time_s(self) -> float:
        return self.measurement.time_s

    @property
    def tflops(self) -> float:
        return self.measurement.tflops


@dataclass(frozen=True)
class DeepTuningResult:
    """All tuned fusion degrees for one iterative stencil."""

    entries: Tuple[DeepTuningEntry, ...]
    evaluations: int
    eval_stats: Optional[EvalStats] = None

    @property
    def k(self) -> int:
        """Largest tuned fusion degree."""
        return max(e.time_tile for e in self.entries)

    @property
    def tipping_point(self) -> int:
        """The fusion degree past which performance stops improving —
        the pink-circled cusp of the paper's Figure 4."""
        best = max(self.entries, key=lambda e: e.tflops)
        return best.time_tile

    def f(self, x: int) -> float:
        """Per-launch execution time of version (x × 1)."""
        for entry in self.entries:
            if entry.time_tile == x:
                return entry.time_s
        raise KeyError(x)

    def plan_for(self, x: int) -> KernelPlan:
        for entry in self.entries:
            if entry.time_tile == x:
                return entry.measurement.plan
        raise KeyError(x)


def deep_tune(
    ir: ProgramIR,
    device: DeviceSpec = P100,
    max_degree: int = MAX_FUSION_DEGREE,
    use_register_opts: bool = True,
    top_k: int = 4,
    evaluator: Optional[PlanEvaluator] = None,
    workers: Optional[int] = None,
    journal: Optional[TuningJournal] = None,
    make_tuner: Optional[Callable[..., HierarchicalTuner]] = None,
) -> DeepTuningResult:
    """Tune fusion degrees 1, 2, ... while profiling says fusion helps.

    A single evaluation engine is shared across the degree sweep, so
    plans revisited between degrees (and the post-tune profiling
    simulation of each winner) are served from the memo cache.

    With a ``journal``, checkpoint/resume operates at two levels:
    completed fusion degrees replay wholesale from their ``degree``
    records, and within an interrupted degree the inner hierarchical
    tuner replays its journaled candidates — so a crash mid-sweep loses
    at most the candidate being evaluated.  The stopping conditions are
    deterministic functions of the entries, so a resumed sweep halts at
    the same degree as an uninterrupted one.

    ``make_tuner`` swaps the inner per-degree tuner class: it is called
    with the same keyword arguments ``HierarchicalTuner`` would receive
    (``use_register_opts``, ``top_k``, ``evaluator``, ``workers``,
    ``journal``).  Transfer tuning uses this to warm-start every degree
    from another device's journal (``repro.tuning.transfer``).
    """
    if not ir.is_iterative:
        raise UsageError("deep tuning applies to iterative stencils")
    if len(ir.kernels) != 1:
        raise UsageError("deep tuning expects a single smoother kernel")
    engine = evaluator or PlanEvaluator(device=device, workers=workers)
    stats_before = engine.stats.snapshot()
    irfp = ir_fingerprint(ir) if journal is not None else None
    instance = ir.kernels[0]
    entries: List[DeepTuningEntry] = []
    evaluations = 0
    slog = engine.search_log
    with _span("deep_tune", max_degree=max_degree), _log_context(
        slog, phase="deep-tune"
    ):
        for degree in range(1, max_degree + 1):
            degree_key = f"{irfp}:degree:{degree}"
            record = journal.lookup(degree_key) if journal is not None else None
            if record is not None:
                entry = DeepTuningEntry(
                    time_tile=degree,
                    measurement=Measurement(
                        plan=plan_from_dict(record["plan"]),
                        time_s=record["time_s"],
                        tflops=record["tflops"],
                    ),
                    bandwidth_bound=record["bandwidth_bound"],
                    bound_level=record["bound_level"],
                )
                if slog is not None:
                    with slog.context(degree=degree):
                        slog.replay(entry.measurement.plan)
                evaluations += int(record.get("evaluations", 0))
                entries.append(entry)
            else:
                with _span("deep_tune.degree", degree=degree), _log_context(
                    slog, degree=degree
                ):
                    with _span("planning", kernel=instance.name, degree=degree):
                        base = seed_plan_from_pragma(ir, instance).replace(
                            time_tile=degree
                        )
                        base = auto_assign(ir, base, engine.device).plan
                    tuner = (make_tuner or HierarchicalTuner)(
                        ir,
                        use_register_opts=use_register_opts,
                        top_k=top_k,
                        evaluator=engine,
                        workers=workers,
                        journal=journal,
                    )
                    try:
                        result = tuner.tune(base)
                    except PlanInfeasible:
                        break
                    evaluations += tuner.evaluations
                    # The winner was just tuned, so this classification
                    # simulation is a cache hit — the identical
                    # SimulationResult object.  Phase-labelled so the
                    # bench profile can attribute it (on a cold run
                    # these are the *only* cache hits: the stages
                    # themselves are all-miss by design).
                    with engine.phase("classify"):
                        sim = engine.evaluate(ir, result.best_plan)
                    report = classify_result(sim, engine.device)
                bandwidth = report.bound_level in ("dram", "tex", "shm")
                entries.append(
                    DeepTuningEntry(
                        time_tile=degree,
                        measurement=result.best,
                        bandwidth_bound=bandwidth,
                        bound_level=report.bound_level,
                    )
                )
                if journal is not None:
                    journal.record_degree(
                        degree_key,
                        {
                            "degree": degree,
                            "plan": plan_to_dict(result.best.plan),
                            "time_s": result.best.time_s,
                            "tflops": result.best.tflops,
                            "bandwidth_bound": bandwidth,
                            "bound_level": report.bound_level,
                            "evaluations": tuner.evaluations,
                        },
                    )
            # Fusion helps only bandwidth-bound versions: stop otherwise.
            if not entries[-1].bandwidth_bound:
                break
            # Stop when the fused version got slower per step (the cusp).
            if degree >= 2:
                prev = entries[-2]
                if entries[-1].time_s / degree > prev.time_s / prev.time_tile:
                    break
    if not entries:
        raise PlanInfeasible("no fusion degree could be tuned")
    return DeepTuningResult(
        entries=tuple(entries),
        evaluations=evaluations,
        eval_stats=engine.stats.since(stats_before),
    )


# ---------------------------------------------------------------------------
# fusion-schedule dynamic program
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusionSchedule:
    """Optimal launch decomposition of T iterations."""

    total_time_s: float
    tiles: Tuple[int, ...]  # launch time-tile sizes, in execution order

    def counts(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for tile in self.tiles:
            out[tile] = out.get(tile, 0) + 1
        return out

    def describe(self) -> str:
        """Paper notation: ``(4x3 ⊕ 1x1)`` for tiles (4,4,4,1)."""
        parts = [
            f"{tile}x{count}" for tile, count in sorted(self.counts().items(),
                                                        reverse=True)
        ]
        return " (+) ".join(parts)


#: Below this many inner-loop operations (``iterations x degrees``) the
#: scalar DP wins — per-step numpy dispatch overhead exceeds the work.
VECTOR_DP_MIN_OPS = 4096


def fusion_schedule(result: DeepTuningResult, iterations: int) -> FusionSchedule:
    """Solve opt(T) exactly via dynamic programming.

    For long horizons the per-step minimization runs as one numpy
    reduction over the degree axis; the two paths are bitwise-identical
    (float64 addition either way, and ``argmin``'s first-occurrence
    tie-break picks the same tile as the scalar loop's strict-less
    update, which also keeps the first minimum in ascending ``x``).
    """
    if iterations < 0:
        raise UsageError("iteration count must be non-negative")
    if iterations == 0:
        return FusionSchedule(total_time_s=0.0, tiles=())
    # Both paths touch exactly degrees 1..min(k, T), so a gap in the
    # tuned entries raises the same KeyError the scalar loop would.
    k = min(result.k, iterations)
    f_vals = [result.f(x) for x in range(1, k + 1)]
    np = None
    if iterations * k >= VECTOR_DP_MIN_OPS:
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a runtime dep
            np = None
    choice: List[int] = [0] * (iterations + 1)
    if np is not None:
        f_arr = np.asarray(f_vals, dtype=np.float64)
        best_arr = np.empty(iterations + 1, dtype=np.float64)
        best_arr[0] = 0.0
        for t in range(1, iterations + 1):
            m = min(k, t)
            # best[t-1], best[t-2], ..., best[t-m] — aligned with x=1..m.
            costs = f_arr[:m] + best_arr[t - m:t][::-1]
            idx = int(np.argmin(costs))
            best_arr[t] = costs[idx]
            choice[t] = idx + 1
        total = float(best_arr[iterations])
    else:
        best: List[float] = [0.0] + [float("inf")] * iterations
        for t in range(1, iterations + 1):
            for x in range(1, min(k, t) + 1):
                cost = f_vals[x - 1] + best[t - x]
                if cost < best[t]:
                    best[t] = cost
                    choice[t] = x
        total = best[iterations]
    tiles: List[int] = []
    t = iterations
    while t > 0:
        tiles.append(choice[t])
        t -= choice[t]
    tiles.reverse()
    return FusionSchedule(total_time_s=total, tiles=tuple(tiles))


def schedule_to_program_plan(
    result: DeepTuningResult, schedule: FusionSchedule
) -> ProgramPlan:
    """Materialize a fusion schedule as a launchable ProgramPlan."""
    plans: List[KernelPlan] = []
    counts: List[int] = []
    for tile in schedule.tiles:
        plan = result.plan_for(tile)
        if plans and plans[-1] == plan:
            counts[-1] += 1
        else:
            plans.append(plan)
            counts.append(1)
    return ProgramPlan(plans=tuple(plans), launch_counts=tuple(counts))
