"""Transfer tuning: warm-start one device's search from another's journal.

A finished tuning run leaves behind a :class:`TuningJournal` of every
candidate it priced.  Those records are *wrong* as timings on any other
device — which is why checkpoint resume refuses across devices
(:class:`~repro.resilience.errors.CheckpointDeviceMismatch`) — but the
*shape* of the winners transfers well: the block sizes and unroll
factors that won on a P100 are strong priors for where a V100 search
should look.  Transfer tuning exploits this the sanctioned way:

* :func:`journaled_winners` reads a foreign journal **offline** (no
  replay, no device check — timings are never reused) and extracts the
  best recorded plans for a given stencil;
* :class:`WarmStartTuner` narrows the stage-1 block x unroll sweep to
  the winners' configurations plus an adjustable power-of-two
  neighborhood, falling back to the full sweep if the projection is
  empty — a foreign journal can shrink the search, never brick it;
* :func:`transfer_tune` / :func:`transfer_deep_tune` wire the two into
  the standard :func:`~repro.tuning.hierarchical.tune_kernel` and
  :func:`~repro.tuning.deeptuning.deep_tune` entry points.

Stage 2 runs untouched on the surviving candidates, so second-tier
knobs (prefetch, concurrent streaming, perspectives, retiming, folding)
are still explored from scratch on the target device.  The search-cost
savings are measured by ``benchmarks/bench_transfer.py`` and gated in
``BENCH_transfer.json``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..codegen.plan import KernelPlan
from ..gpu.device import DeviceSpec, P100
from ..ir.stencil import ProgramIR
from ..resilience.checkpoint import (
    TuningJournal,
    ir_fingerprint,
    plan_from_dict,
)
from .deeptuning import DeepTuningResult, deep_tune
from .hierarchical import HierarchicalTuner, TuningResult
from .space import SearchSpace

__all__ = [
    "DEFAULT_NEIGHBORHOOD",
    "DEFAULT_SEED_LIMIT",
    "TransferSeed",
    "WarmStartTuner",
    "journaled_winners",
    "transfer_deep_tune",
    "transfer_tune",
]

#: Power-of-two rings explored around each seed configuration (one ring
#: = every single-knob halve/double of a kept configuration).  Two
#: rings is the validated default: on the benchmarked P100 -> V100
#: transfer it reproduces the cold search's winner at every fusion
#: degree while pricing roughly half the candidates
#: (``benchmarks/bench_transfer.py``); one ring saves more (~80%) but
#: can land on a different — equal-or-slower — winner.
DEFAULT_NEIGHBORHOOD = 2

#: Distinct seed configurations mined from the source journal.  The
#: journal records *every* priced candidate, not just winners, so an
#: unlimited read would reconstruct the full sweep and save nothing.
DEFAULT_SEED_LIMIT = 16

JournalSource = Union[str, "os.PathLike", TuningJournal]


@dataclass(frozen=True)
class TransferSeed:
    """One winner mined from a source-device journal.

    ``time_s``/``tflops`` are the *source* device's model numbers —
    useful for ranking seeds, meaningless as target timings.
    """

    plan: KernelPlan
    time_s: float
    tflops: float
    source_device: Optional[str] = None

    @property
    def signature(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        return _signature(self.plan)


def _signature(plan: KernelPlan) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The stage-1 coordinates of a plan: (block, unroll).

    Deliberately excludes every second-tier knob (retime, prefetch,
    streaming mode, time tile): seeds only steer *where* stage 1 looks,
    and retimed twins must travel with their parent variant.
    """
    return (tuple(plan.block), tuple(plan.unroll))


def journaled_winners(
    source: JournalSource,
    ir: ProgramIR,
    limit: Optional[int] = DEFAULT_SEED_LIMIT,
) -> Tuple[TransferSeed, ...]:
    """Best recorded plans for ``ir`` in a (foreign) journal.

    ``source`` is a journal path or an open :class:`TuningJournal`.  A
    path is opened with ``device=None`` — reading a foreign journal is
    the sanctioned cross-device use, so no mismatch check applies and
    nothing is replayed.  Records are filtered to this stencil by IR
    fingerprint, deduplicated by stage-1 signature (best time kept) and
    returned fastest-first, at most ``limit`` of them (``None`` = all).
    """
    owned = not isinstance(source, TuningJournal)
    journal = TuningJournal(os.fspath(source)) if owned else source
    try:
        prefix = f"{ir_fingerprint(ir)}:"
        best: dict = {}
        for record in journal.records():
            key = record.get("key", "")
            if not key.startswith(prefix):
                continue
            plan_dict = record.get("plan")
            time_s = record.get("time_s")
            if plan_dict is None or time_s is None:
                continue  # infeasible candidate: nothing to transfer
            plan = plan_from_dict(plan_dict)
            sig = _signature(plan)
            seed = TransferSeed(
                plan=plan,
                time_s=time_s,
                tflops=record.get("tflops", 0.0),
                source_device=journal.recorded_device,
            )
            held = best.get(sig)
            if held is None or seed.time_s < held.time_s:
                best[sig] = seed
    finally:
        if owned:
            journal.close()
    winners = sorted(best.values(), key=lambda s: s.time_s)
    if limit is not None:
        winners = winners[: max(0, limit)]
    return tuple(winners)


class WarmStartTuner(HierarchicalTuner):
    """Hierarchical tuner whose stage 1 is seeded by foreign winners.

    The full block x unroll sweep is generated, then filtered to the
    configurations whose (block, unroll) signature lies within
    ``neighborhood`` power-of-two rings of any seed — so every kept
    candidate is still a legal member of the target device's own
    :class:`~repro.tuning.space.SearchSpace` (limits differ across
    devices; an MI100 seed of 64 threads/warp never smuggles an
    undersized block onto an NVIDIA part).  An empty projection falls
    back to the full sweep.  Stage 2 is inherited unchanged.
    """

    def __init__(
        self,
        ir: ProgramIR,
        seeds: Sequence[TransferSeed] = (),
        neighborhood: int = DEFAULT_NEIGHBORHOOD,
        **tuner_kwargs,
    ):
        super().__init__(ir, **tuner_kwargs)
        self.seeds = tuple(seeds)
        self.neighborhood = max(0, int(neighborhood))
        #: sweep sizes of the last stage 1, for cost reporting:
        #: ``stage1_full`` is what a cold search would have measured,
        #: ``stage1_kept`` what the warm start actually submitted.
        self.stage1_full = 0
        self.stage1_kept = 0

    def _warm_signatures(self) -> Set[tuple]:
        allowed: Set[tuple] = {seed.signature for seed in self.seeds}
        frontier = set(allowed)
        for _ in range(self.neighborhood):
            ring: Set[tuple] = set()
            for block, unroll in frontier:
                for axis in range(len(block)):
                    for scaled in (block[axis] * 2, block[axis] // 2):
                        if scaled >= 1:
                            moved = list(block)
                            moved[axis] = scaled
                            ring.add((tuple(moved), unroll))
                for axis in range(len(unroll)):
                    for scaled in (unroll[axis] * 2, unroll[axis] // 2):
                        if scaled >= 1:
                            moved = list(unroll)
                            moved[axis] = scaled
                            ring.add((block, tuple(moved)))
            frontier = ring - allowed
            allowed |= ring
        return allowed

    def _stage1_candidates(
        self, base: KernelPlan, space: SearchSpace
    ) -> List[KernelPlan]:
        full = super()._stage1_candidates(base, space)
        self.stage1_full = len(full)
        if not self.seeds:
            self.stage1_kept = len(full)
            return full
        allowed = self._warm_signatures()
        kept = [plan for plan in full if _signature(plan) in allowed]
        if not kept:
            # The seeds project entirely outside this device's space
            # (different dimensionality, disjoint limits): a warm start
            # may never brick the search, so sweep cold.
            kept = full
        self.stage1_kept = len(kept)
        return kept


def transfer_tune(
    ir: ProgramIR,
    base: KernelPlan,
    source: JournalSource,
    device: DeviceSpec = P100,
    neighborhood: int = DEFAULT_NEIGHBORHOOD,
    seed_limit: Optional[int] = DEFAULT_SEED_LIMIT,
    **tuner_kwargs,
) -> TuningResult:
    """:func:`~repro.tuning.hierarchical.tune_kernel`, warm-started.

    Mines ``source`` for this stencil's winners and tunes ``base`` on
    ``device`` with the narrowed stage-1 sweep.  All remaining keyword
    arguments flow to :class:`WarmStartTuner` /
    :class:`~repro.tuning.hierarchical.HierarchicalTuner`.
    """
    seeds = journaled_winners(source, ir, limit=seed_limit)
    tuner = WarmStartTuner(
        ir,
        seeds=seeds,
        neighborhood=neighborhood,
        device=device,
        **tuner_kwargs,
    )
    return tuner.tune(base)


def transfer_deep_tune(
    ir: ProgramIR,
    source: JournalSource,
    device: DeviceSpec = P100,
    neighborhood: int = DEFAULT_NEIGHBORHOOD,
    seed_limit: Optional[int] = DEFAULT_SEED_LIMIT,
    **deep_kwargs,
) -> DeepTuningResult:
    """:func:`~repro.tuning.deeptuning.deep_tune`, warm-started.

    Every fusion degree's inner tuner is a :class:`WarmStartTuner`
    seeded from ``source``.  Seeds are mined once: the (block, unroll)
    signature ignores the time tile, so winners recorded at any source
    degree steer every target degree.
    """
    seeds = journaled_winners(source, ir, limit=seed_limit)

    def make_tuner(inner_ir, **tuner_kwargs):
        return WarmStartTuner(
            inner_ir,
            seeds=seeds,
            neighborhood=neighborhood,
            **tuner_kwargs,
        )

    return deep_tune(ir, device=device, make_tuner=make_tuner, **deep_kwargs)
