"""Budget-matched random search — the OpenTuner-style strawman (§V).

The paper contrasts hierarchical autotuning with generic search ("the
use of generic search strategies like genetic algorithms makes it
extremely time consuming": OpenTuner needed >24 h where hierarchical
tuning took <5 h).  This module implements an unbiased random sampler
over the *unpruned* configuration space so the comparison can be run
under an equal evaluation budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..codegen.plan import (
    KernelPlan,
    PERSPECTIVES,
    REGISTER_LEVELS,
    STREAM_CONCURRENT,
    STREAM_NONE,
    STREAM_SERIAL,
)
from ..codegen.resources import InvalidPlan
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import PlanInfeasible
from ..ir.stencil import ProgramIR
from .evaluator import Measurement, PlanEvaluator

_BLOCK_CHOICES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
_UNROLL_CHOICES = tuple(range(1, 17))


@dataclass(frozen=True)
class RandomSearchResult:
    best: Optional[Measurement]
    evaluations: int
    attempts: int
    infeasible: int


def _sample_plan(rng: random.Random, ir: ProgramIR, kernel_name: str) -> KernelPlan:
    streaming = rng.choice((STREAM_NONE, STREAM_SERIAL, STREAM_CONCURRENT))
    dims = ir.ndim - 1 if streaming != STREAM_NONE else ir.ndim
    block = tuple(rng.choice(_BLOCK_CHOICES) for _ in range(dims))
    unroll = tuple(rng.choice(_UNROLL_CHOICES) for _ in range(ir.ndim))
    placements: List[Tuple[str, str]] = []
    instance = ir.kernel(kernel_name)
    for array in instance.arrays_read():
        info = ir.array_map.get(array)
        if info is not None and info.ndim == ir.ndim and rng.random() < 0.5:
            placements.append((array, "shmem"))
    return KernelPlan(
        kernel_names=(kernel_name,),
        block=block,
        streaming=streaming,
        stream_axis=0,
        concurrent_chunks=rng.choice((1, 2, 4, 8))
        if streaming == STREAM_CONCURRENT
        else 1,
        unroll=unroll,
        prefetch=rng.random() < 0.5,
        perspective=rng.choice(PERSPECTIVES),
        placements=tuple(placements),
        max_registers=rng.choice(REGISTER_LEVELS),
    )


def random_search(
    ir: ProgramIR,
    kernel_name: str,
    budget: int,
    device: DeviceSpec = P100,
    seed: int = 0,
    evaluator: Optional[PlanEvaluator] = None,
    workers: Optional[int] = None,
) -> RandomSearchResult:
    """Sample ``budget`` configurations uniformly; keep the best.

    Mirrors an untuned generic search: most samples are infeasible
    (thread/shared-memory/register limits) or spill, which is exactly
    why unpruned spaces waste their budget.  Every sample counts one
    evaluation, feasible or not (a failed compile still costs a generic
    tuner its budget slot).  The whole budget is submitted as one batch
    through the shared evaluation engine, so independent samples can be
    priced in parallel without changing the result.
    """
    rng = random.Random(seed)
    engine = evaluator or PlanEvaluator(device=device, workers=workers)
    plans = [_sample_plan(rng, ir, kernel_name) for _ in range(budget)]
    # Generic search has no pruning model: broad ValueErrors from deep in
    # the geometry code count as failed compiles, not bugs.
    results = engine.evaluate_batch(
        ir,
        plans,
        workers=workers,
        catch=(PlanInfeasible, InvalidPlan, ValueError),
    )
    best: Optional[Measurement] = None
    infeasible = 0
    for plan, result in zip(plans, results):
        if result is None:
            infeasible += 1
            continue
        measurement = Measurement(
            plan=plan, time_s=result.time_s, tflops=result.tflops
        )
        if best is None or measurement.time_s < best.time_s:
            best = measurement
    return RandomSearchResult(
        best=best,
        evaluations=len(plans),
        attempts=len(plans),
        infeasible=infeasible,
    )
