"""Budget-matched random search — the OpenTuner-style strawman (§V).

The paper contrasts hierarchical autotuning with generic search ("the
use of generic search strategies like genetic algorithms makes it
extremely time consuming": OpenTuner needed >24 h where hierarchical
tuning took <5 h).  This module implements an unbiased random sampler
over the *unpruned* configuration space so the comparison can be run
under an equal evaluation budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..codegen.plan import (
    KernelPlan,
    PERSPECTIVES,
    REGISTER_LEVELS,
    STREAM_CONCURRENT,
    STREAM_NONE,
    STREAM_SERIAL,
)
from ..codegen.resources import InvalidPlan, validate_plan
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import PlanInfeasible, simulate
from ..ir.stencil import ProgramIR
from .hierarchical import Measurement

_BLOCK_CHOICES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
_UNROLL_CHOICES = tuple(range(1, 17))


@dataclass(frozen=True)
class RandomSearchResult:
    best: Optional[Measurement]
    evaluations: int
    attempts: int
    infeasible: int


def _sample_plan(rng: random.Random, ir: ProgramIR, kernel_name: str) -> KernelPlan:
    streaming = rng.choice((STREAM_NONE, STREAM_SERIAL, STREAM_CONCURRENT))
    dims = ir.ndim - 1 if streaming != STREAM_NONE else ir.ndim
    block = tuple(rng.choice(_BLOCK_CHOICES) for _ in range(dims))
    unroll = tuple(rng.choice(_UNROLL_CHOICES) for _ in range(ir.ndim))
    placements: List[Tuple[str, str]] = []
    instance = ir.kernel(kernel_name)
    for array in instance.arrays_read():
        info = ir.array_map.get(array)
        if info is not None and info.ndim == ir.ndim and rng.random() < 0.5:
            placements.append((array, "shmem"))
    return KernelPlan(
        kernel_names=(kernel_name,),
        block=block,
        streaming=streaming,
        stream_axis=0,
        concurrent_chunks=rng.choice((1, 2, 4, 8))
        if streaming == STREAM_CONCURRENT
        else 1,
        unroll=unroll,
        prefetch=rng.random() < 0.5,
        perspective=rng.choice(PERSPECTIVES),
        placements=tuple(placements),
        max_registers=rng.choice(REGISTER_LEVELS),
    )


def random_search(
    ir: ProgramIR,
    kernel_name: str,
    budget: int,
    device: DeviceSpec = P100,
    seed: int = 0,
) -> RandomSearchResult:
    """Sample ``budget`` configurations uniformly; keep the best.

    Mirrors an untuned generic search: most samples are infeasible
    (thread/shared-memory/register limits) or spill, which is exactly
    why unpruned spaces waste their budget.
    """
    rng = random.Random(seed)
    best: Optional[Measurement] = None
    evaluations = 0
    infeasible = 0
    attempts = 0
    while evaluations < budget:
        attempts += 1
        plan = _sample_plan(rng, ir, kernel_name)
        try:
            validate_plan(ir, plan)
            result = simulate(ir, plan, device)
        except (PlanInfeasible, InvalidPlan, ValueError):
            infeasible += 1
            evaluations += 1  # a failed compile still costs the tuner
            continue
        evaluations += 1
        measurement = Measurement(
            plan=plan, time_s=result.time_s, tflops=result.tflops
        )
        if best is None or measurement.time_s < best.time_s:
            best = measurement
    return RandomSearchResult(
        best=best,
        evaluations=evaluations,
        attempts=attempts,
        infeasible=infeasible,
    )
