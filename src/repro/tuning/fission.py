"""Kernel fission for register-constrained stencil DAGs (paper §VI-B).

ARTEMIS generates three DSL specification versions from an input kernel:

1. **maxfuse** — all stencil functions over the same domain fused;
2. **trivial-fission** — each distinct output array in its own kernel,
   together with the backward slice of statements it needs (shared
   temporaries get replicated across kernels, as in Figure 3b/3c);
3. **recompute-fission** — outputs packed into kernels so that each
   kernel's recomputation halo stays ≤ max(4, r), where r is the largest
   stencil order among individual statements.

Every variant is materialized both as IR (for immediate tuning) and as
DSL source text (the paper writes fission candidates out as DSL files
the user may then optimize — Figure 3c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..dsl.ast import ArrayAccess, array_accesses
from ..ir.analysis import access_patterns, stencil_order
from ..ir.dag import statement_dag, statements_for_output
from ..ir.stencil import ProgramIR, Statement, StencilInstance
from .fusion import maxfuse


@dataclass(frozen=True)
class FissionCandidate:
    """One generated fission/fusion variant."""

    label: str  # maxfuse | trivial-fission | recompute-fission
    ir: ProgramIR
    dsl: str


def _slice_instance(
    instance: StencilInstance, indices: Sequence[int], name: str
) -> StencilInstance:
    statements = tuple(instance.statements[i] for i in indices)
    read = {a.name for s in statements for a in array_accesses(s.rhs)}
    written = {s.target for s in statements if not s.is_local}
    placements = tuple(
        (array, storage)
        for array, storage in instance.placements
        if array in read or array in written
    )
    return StencilInstance(
        name=f"{name}.0",
        stencil_name=name,
        statements=statements,
        placements=placements,
        pragma=instance.pragma,
    )


def trivial_fission(
    ir: ProgramIR, instance: StencilInstance
) -> Tuple[StencilInstance, ...]:
    """One kernel per distinct output array, slices replicated."""
    outputs = instance.arrays_written()
    if len(outputs) <= 1:
        return (instance,)
    kernels: List[StencilInstance] = []
    for index, output in enumerate(outputs):
        indices = statements_for_output(instance, output)
        kernels.append(
            _slice_instance(
                instance, indices, f"{instance.stencil_name}_{index}"
            )
        )
    return tuple(kernels)


def recompute_fission(
    ir: ProgramIR, instance: StencilInstance
) -> Tuple[StencilInstance, ...]:
    """Pack outputs while each kernel's recompute halo is ≤ max(4, r).

    The recomputation halo of a kernel grows when one of its outputs is
    consumed by another statement of the *same* kernel at a non-zero
    offset (the consumer must recompute a halo of the producer under
    overlapped tiling).  Outputs are packed greedily, in order, while the
    accumulated chained halo stays within the bound.
    """
    outputs = instance.arrays_written()
    if len(outputs) <= 1:
        return (instance,)
    r = _max_statement_order(ir, instance)
    bound = max(4, r)

    groups: List[List[str]] = []
    current: List[str] = []
    current_halo = 0
    for output in outputs:
        halo = _output_halo(ir, instance, output)
        chained = _consumes_prior_output(instance, output, current)
        added = halo if not chained else current_halo + halo
        if current and added > bound:
            groups.append(current)
            current = [output]
            current_halo = halo
        else:
            current.append(output)
            current_halo = max(current_halo, added)
    if current:
        groups.append(current)

    if len(groups) == 1:
        return (instance,)
    kernels: List[StencilInstance] = []
    for index, group in enumerate(groups):
        indices: Set[int] = set()
        for output in group:
            indices.update(statements_for_output(instance, output))
        kernels.append(
            _slice_instance(
                instance,
                sorted(indices),
                f"{instance.stencil_name}_rc{index}",
            )
        )
    return tuple(kernels)


def _max_statement_order(ir: ProgramIR, instance: StencilInstance) -> int:
    order = 0
    for stmt in instance.statements:
        for access in array_accesses(stmt.rhs):
            for idx in access.indices:
                if idx.single_iterator() is not None:
                    order = max(order, abs(idx.const))
    return order


def _output_halo(ir: ProgramIR, instance: StencilInstance, output: str) -> int:
    indices = statements_for_output(instance, output)
    halo = 0
    for i in indices:
        stmt = instance.statements[i]
        for access in array_accesses(stmt.rhs):
            for idx in access.indices:
                if idx.single_iterator() is not None:
                    halo = max(halo, abs(idx.const))
    return halo


def _consumes_prior_output(
    instance: StencilInstance, output: str, prior: Sequence[str]
) -> bool:
    indices = statements_for_output(instance, output)
    prior_set = set(prior)
    for i in indices:
        for access in array_accesses(instance.statements[i].rhs):
            if access.name in prior_set:
                return True
    return False


# ---------------------------------------------------------------------------
# DSL export (Figure 3c)
# ---------------------------------------------------------------------------


def export_dsl(ir: ProgramIR) -> str:
    """Render a (possibly fissioned) IR back to DSL source text."""
    lines: List[str] = []
    # Parameters: reconstruct named extents from array shapes.
    params: Dict[int, str] = {}
    names = iter("NLMPQRSTUV")
    decls: List[str] = []
    for info in ir.arrays:
        dims = []
        for extent in info.shape:
            if extent not in params:
                params[extent] = next(names)
            dims.append(params[extent])
        decls.append(f"{info.name}[{','.join(dims)}]")
    lines.append(
        "parameter "
        + ", ".join(f"{name}={extent}" for extent, name in params.items())
        + ";"
    )
    lines.append("iterator " + ", ".join(ir.iterators) + ";")
    scalar_decls = [name for name, _ in ir.scalars]
    lines.append("double " + ", ".join(decls + scalar_decls) + ";")
    if ir.copyin:
        lines.append("copyin " + ", ".join(ir.copyin) + ";")
    if ir.time_iterations > 1:
        lines.append(f"iterate {ir.time_iterations};")

    from ..dsl.printer import format_expr

    for instance in ir.kernels:
        signature_arrays = list(instance.io_arrays())
        used_scalars = _scalars_used(ir, instance)
        signature = signature_arrays + used_scalars
        lines.append(
            f"stencil {instance.stencil_name} ({', '.join(signature)}) {{"
        )
        if instance.placements:
            by_class: Dict[str, List[str]] = {}
            for array, storage in instance.placements:
                by_class.setdefault(storage, []).append(array)
            groups = ", ".join(
                f"{storage} ({', '.join(arrays)})"
                for storage, arrays in by_class.items()
            )
            lines.append(f"  #assign {groups}")
        for stmt in instance.statements:
            rhs = format_expr(stmt.rhs)
            lines.append(f"  {stmt.lhs} {stmt.op} {rhs};")
        lines.append("}")
        lines.append(
            f"{instance.stencil_name} ({', '.join(signature)});"
        )
    if ir.copyout:
        lines.append("copyout " + ", ".join(ir.copyout) + ";")
    return "\n".join(lines) + "\n"


def _scalars_used(ir: ProgramIR, instance: StencilInstance) -> List[str]:
    from ..dsl.ast import scalar_names

    locals_ = {s.target for s in instance.statements if s.is_local}
    declared = set(ir.scalar_map)
    used: List[str] = []
    for stmt in instance.statements:
        for name in scalar_names(stmt.rhs):
            if name in declared and name not in locals_ and name not in used:
                used.append(name)
    return used


# ---------------------------------------------------------------------------
# candidate generation (the three DSL versions of Section VI-B)
# ---------------------------------------------------------------------------


def dedupe_candidates(
    candidates: Sequence[FissionCandidate],
) -> Tuple[FissionCandidate, ...]:
    """Drop candidates whose DSL text duplicates an earlier one.

    Trivial and recompute fission frequently produce the same kernel
    split (every output already in its own group); tuning the duplicate
    would double the evaluation cost for an identical result, so the
    pipeline prices each distinct DSL version once.
    """
    seen: Set[str] = set()
    unique: List[FissionCandidate] = []
    for candidate in candidates:
        if candidate.dsl in seen:
            continue
        seen.add(candidate.dsl)
        unique.append(candidate)
    return tuple(unique)


def generate_fission_candidates(
    ir: ProgramIR, search_log=None
) -> Tuple[FissionCandidate, ...]:
    """Produce the maxfuse / trivial-fission / recompute-fission variants.

    With a ``search_log`` (``repro.obs.search``) attached, the generated
    variants are recorded as one ``fission`` telemetry event, so explain
    reports can say which alternative program shapes the search priced.
    """
    from ..obs import span

    with span("fission", kernels=len(ir.kernels)):
        candidates = _generate_fission_candidates(ir)
    if search_log is not None:
        search_log.fission(candidates)
    return candidates


def _generate_fission_candidates(ir: ProgramIR) -> Tuple[FissionCandidate, ...]:
    candidates: List[FissionCandidate] = []

    fused_ir = maxfuse(ir)
    candidates.append(
        FissionCandidate(label="maxfuse", ir=fused_ir, dsl=export_dsl(fused_ir))
    )

    fused = fused_ir.kernels[0] if len(fused_ir.kernels) == 1 else None
    base = fused if fused is not None else ir.kernels[0]

    trivial = trivial_fission(ir, base)
    trivial_ir = ir.replace(kernels=trivial)
    candidates.append(
        FissionCandidate(
            label="trivial-fission", ir=trivial_ir, dsl=export_dsl(trivial_ir)
        )
    )

    recompute = recompute_fission(ir, base)
    recompute_ir = ir.replace(kernels=recompute)
    candidates.append(
        FissionCandidate(
            label="recompute-fission",
            ir=recompute_ir,
            dsl=export_dsl(recompute_ir),
        )
    )
    return tuple(candidates)
