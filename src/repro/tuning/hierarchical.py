"""Hierarchical autotuning (paper Section V).

Tuning runs in steps instead of searching the full cross-product:

* **Stage 1** tunes the high-impact knobs — thread block size and unroll
  factors — with serial streaming enabled by default when shared memory
  is used.  Unrolled versions are explored in increasing order of the
  post-unroll statement count, and the per-thread register budget is
  escalated (32 → 64 → 128 → 255) so only spill-free configurations are
  measured.
* **Stage 2** takes the top-K stage-1 candidates and layers the
  second-tier optimizations on them: prefetching, concurrent streaming,
  and thread-block load/compute adjustment (perspectives), plus retiming
  and folding when the profiling advice enables register-level
  optimizations.  Variants whose plan family was already measured (in
  stage 1 or for an earlier survivor) are deduplicated by fingerprint.

All measurement flows through a shared :class:`PlanEvaluator`
(``repro.tuning.evaluator``), which memoizes simulation results,
collapses the register-escalation ladder via the register-independent
simulation prefix, and can evaluate candidate batches on a thread pool.

**Evaluation accounting** is uniform: ``evaluations`` counts one per
candidate plan submitted for measurement — feasible, spilling and
infeasible candidates alike, independent of how many register-escalation
rungs were needed.  (The seed implementation counted each escalation
rung but not infeasible candidates; the uniform rule makes tuner budgets
comparable across search strategies.)

Users can supply their own hierarchy (a list of variant generators), as
the paper allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from ..codegen.plan import (
    KernelPlan,
    PERSPECTIVE_MIXED,
    STREAM_CONCURRENT,
)
from ..codegen.tiling import plan_family_key
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import PlanInfeasible
from ..ir.folding import find_fold_groups
from ..ir.homogenize import kernel_retimable
from ..ir.stencil import ProgramIR
from ..obs import counter as _counter, metrics_enabled as _metrics_enabled
from ..obs import span as _span
from ..obs.search import log_context as _log_context
from ..resilience.checkpoint import (
    TuningJournal,
    ir_fingerprint,
    plan_from_dict,
    plan_to_dict,
)
from .evaluator import EvalStats, Measurement, PlanEvaluator, plan_fingerprint
from .space import SearchSpace, prune_overtiled, seed_variants

__all__ = [
    "HierarchicalTuner",
    "Measurement",
    "TuningResult",
    "tune_kernel",
    "with_fold_groups",
    "TOP_K",
]

#: Stage-1 survivors carried into stage 2.
TOP_K = 4

#: Sentinel distinguishing "journal has no record" from a journaled
#: infeasible outcome (which replays as None).
_MISS = object()

VariantGenerator = Callable[[ProgramIR, KernelPlan], Iterable[KernelPlan]]


def with_fold_groups(plan: KernelPlan, folds) -> KernelPlan:
    """Attach fold groups, inheriting each member's storage placement."""
    placements = list(plan.placements)
    placed = {a for a, _ in placements}
    for group in folds:
        if group.folded_name not in placed:
            placements.append(
                (group.folded_name, plan.placement_of(group.members[0]))
            )
    return plan.replace(fold_groups=folds, placements=tuple(placements))


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a hierarchical tuning run."""

    best: Measurement
    evaluations: int
    stage1_evaluations: int
    trace: Tuple[Measurement, ...] = ()
    eval_stats: Optional[EvalStats] = None

    @property
    def best_plan(self) -> KernelPlan:
        return self.best.plan


class HierarchicalTuner:
    """Two-stage (or user-defined) pruned autotuner."""

    def __init__(
        self,
        ir: ProgramIR,
        device: DeviceSpec = P100,
        use_unrolling: bool = True,
        use_register_opts: bool = False,
        bandwidth_bound: bool = True,
        top_k: int = TOP_K,
        hierarchy: Optional[Sequence[VariantGenerator]] = None,
        keep_trace: bool = False,
        evaluator: Optional[PlanEvaluator] = None,
        workers: Optional[int] = None,
        journal: Optional[TuningJournal] = None,
        lint_prune: bool = False,
    ):
        self.ir = ir
        self.evaluator = evaluator or PlanEvaluator(device=device, workers=workers)
        self.device = self.evaluator.device
        self.use_unrolling = use_unrolling
        self.use_register_opts = use_register_opts
        self.bandwidth_bound = bandwidth_bound
        self.top_k = top_k
        self.hierarchy = hierarchy
        self.keep_trace = keep_trace
        #: opt-in lint-guided pruning (rule RL205): drop overtiled
        #: stage-1 candidates before measuring.  Off by default — the
        #: analytical model prices overtiled plans as first-class
        #: citizens (unroll beyond the domain extent still changes the
        #: instruction mix), so pruning can change the winner; enable
        #: it only when saved simulations matter more than exhaustive
        #: fidelity to the model.
        self.lint_prune = lint_prune
        self.workers = workers if workers is not None else self.evaluator.workers
        #: checkpoint journal: measured candidates are appended as they
        #: complete, and journaled outcomes replay instead of
        #: re-evaluating (see ``repro.resilience.checkpoint``).
        self.journal = journal
        self._irfp = ir_fingerprint(ir) if journal is not None else None
        self.evaluations = 0
        self._trace: List[Measurement] = []
        self._measured_families: Set[tuple] = set()

    # -- checkpoint journal ------------------------------------------------------

    def _journal_key(self, tag: str, plan: KernelPlan) -> str:
        """Content-addressed record key: IR + operation + plan family.

        Register-independent, because the evaluator escalates the cap —
        the journal stores the *resolved* plan, keyed by the request.
        """
        return (
            f"{self._irfp}:{tag}:"
            f"{plan_fingerprint(plan, include_registers=False)}"
        )

    @property
    def _slog(self):
        """The evaluator's attached search log (None when telemetry is off)."""
        return self.evaluator.search_log

    def _journal_replay(self, tag: str, plan: KernelPlan):
        """Journaled outcome: a Measurement, None (infeasible) or _MISS."""
        if self.journal is None:
            return _MISS
        record = self.journal.lookup(self._journal_key(tag, plan))
        if record is None:
            return _MISS
        if self._slog is not None:
            # Replayed candidates never reach the evaluation engine, so
            # they get their own record kind instead of a ``candidate``.
            self._slog.replay(plan)
        if record.get("plan") is None:
            return None
        measurement = Measurement(
            plan=plan_from_dict(record["plan"]),
            time_s=record["time_s"],
            tflops=record["tflops"],
        )
        if self.keep_trace:
            self._trace.append(measurement)
        return measurement

    def _journal_record(
        self, tag: str, plan: KernelPlan, measurement: Optional[Measurement]
    ) -> None:
        if self.journal is None:
            return
        key = self._journal_key(tag, plan)
        if measurement is None:
            self.journal.record_candidate(key, None)
        else:
            self.journal.record_candidate(
                key,
                plan_to_dict(measurement.plan),
                time_s=measurement.time_s,
                tflops=measurement.tflops,
            )

    def _journal_on_result(self, tag: str):
        """Per-completion callback journaling batch jobs as they finish.

        Runs inside the evaluator's batch loop (possibly on worker
        threads — the journal appends under its own lock), so a crash
        mid-batch preserves every candidate that already completed.
        """
        if self.journal is None:
            return None

        def on_result(index, plan, outcome, error):
            key = self._journal_key(tag, plan)
            if error is not None:
                # Quarantined by the on_error policy: diagnostic record
                # only — the candidate is re-evaluated on resume.
                self.journal.record_failure(key, error)
            elif outcome is None:
                self.journal.record_candidate(key, None)
            else:
                resolved, sim = outcome
                self.journal.record_candidate(
                    key,
                    plan_to_dict(resolved),
                    time_s=sim.time_s,
                    tflops=sim.tflops,
                )

        return on_result

    # -- measurement -----------------------------------------------------------

    def measure(self, plan: KernelPlan) -> Optional[Measurement]:
        """Evaluate a candidate; escalate registers past spills.

        Implements the paper's dynamic register increment: if the
        configuration spills at the current ``maxrregcount``, retry at
        the next level; configurations that spill even at 255 registers
        are discarded (only non-spill configurations are explored).  The
        evaluator resolves the ladder from the register-independent
        demand, so the spilling rungs cost nothing.

        Counts exactly one evaluation per call, feasible or not.
        """
        self.evaluations += 1
        self._measured_families.add(plan_family_key(plan))
        replayed = self._journal_replay("sf", plan)
        if replayed is not _MISS:
            return replayed
        found = self.evaluator.evaluate_spill_free(self.ir, plan)
        measurement = self._record(found)
        self._journal_record("sf", plan, measurement)
        return measurement

    def _measure_batch(
        self, plans: Sequence[KernelPlan]
    ) -> List[Optional[Measurement]]:
        """Measure candidates (possibly in parallel), input-ordered.

        Accounting and trace entries are identical to calling
        :meth:`measure` serially on each plan.
        """
        self.evaluations += len(plans)
        for plan in plans:
            self._measured_families.add(plan_family_key(plan))
        results: List[Optional[Measurement]] = [None] * len(plans)
        fresh: List[Tuple[int, KernelPlan]] = []
        for position, plan in enumerate(plans):
            replayed = self._journal_replay("sf", plan)
            if replayed is not _MISS:
                results[position] = replayed
            else:
                fresh.append((position, plan))
        if not fresh:
            return results
        found = self.evaluator.evaluate_spill_free_batch(
            self.ir,
            [plan for _, plan in fresh],
            workers=self.workers,
            on_result=self._journal_on_result("sf"),
        )
        for (position, _), item in zip(fresh, found):
            results[position] = self._record(item)
        return results

    def _record(self, found) -> Optional[Measurement]:
        if found is None:
            return None
        plan, result = found
        measurement = Measurement(
            plan=plan, time_s=result.time_s, tflops=result.tflops
        )
        if self.keep_trace:
            self._trace.append(measurement)
        return measurement

    def measure_with_spills(self, plan: KernelPlan) -> Optional[Measurement]:
        """Measure at the maximum register level even if it spills.

        Counts one evaluation, feasible or not (uniform accounting).
        """
        self.evaluations += 1
        candidate = plan.replace(max_registers=255)
        self._measured_families.add(plan_family_key(candidate))
        replayed = self._journal_replay("ms", candidate)
        if replayed is not _MISS:
            return replayed
        result = self.evaluator.try_evaluate(self.ir, candidate)
        if result is None:
            self._journal_record("ms", candidate, None)
            return None
        measurement = Measurement(
            plan=candidate, time_s=result.time_s, tflops=result.tflops
        )
        if self.keep_trace:
            self._trace.append(measurement)
        self._journal_record("ms", candidate, measurement)
        return measurement

    # -- stages -----------------------------------------------------------------

    def tune(self, base: KernelPlan) -> TuningResult:
        stats_before = self.evaluator.stats.snapshot()
        with _span("tuning", kernels="+".join(base.kernel_names)):
            with _log_context(
                self._slog, kernels="+".join(base.kernel_names)
            ):
                if self.hierarchy is not None:
                    result = self._tune_custom(base)
                else:
                    result = self._tune_two_stage(base)
        return dataclass_replace_stats(
            result, self.evaluator.stats.since(stats_before)
        )

    def _tune_two_stage(self, base: KernelPlan) -> TuningResult:
        stage1 = self._stage1(base)
        stage1_evals = self.evaluations
        if not stage1:
            # Nothing spill-free: fall back to the best spilling config.
            with _log_context(self._slog, stage="spill-fallback"), \
                    self.evaluator.phase("spill-fallback"):
                fallback = self.measure_with_spills(base)
            if fallback is None:
                raise PlanInfeasible(
                    f"no feasible configuration for {base.kernel_names}"
                )
            return TuningResult(
                best=fallback,
                evaluations=self.evaluations,
                stage1_evaluations=stage1_evals,
                trace=tuple(self._trace),
            )
        best = self._stage2(stage1)
        return TuningResult(
            best=best,
            evaluations=self.evaluations,
            stage1_evaluations=stage1_evals,
            trace=tuple(self._trace),
        )

    def _stage1(self, base: KernelPlan) -> List[Measurement]:
        with _span("tuning.stage1") as stage_span, _log_context(
            self._slog, stage="stage1"
        ), self.evaluator.phase("stage1"):
            space = SearchSpace(
                ndim=self.ir.ndim,
                streaming=base.uses_streaming,
                bandwidth_bound=self.bandwidth_bound,
                allow_unroll=self.use_unrolling,
                device=self.device,
            )
            candidates = self._stage1_candidates(base, space)
            if self.lint_prune:
                candidates = prune_overtiled(
                    self.ir, candidates, search_log=self._slog
                )
            results = [
                m for m in self._measure_batch(candidates) if m is not None
            ]
            results.sort(key=lambda m: m.time_s)
            if _metrics_enabled():
                _counter("tuner.stage1.candidates").add(len(candidates))
                _counter("tuner.stage1.feasible").add(len(results))
            if stage_span is not None:
                stage_span.attributes.update(
                    candidates=len(candidates), feasible=len(results)
                )
            return results[: self.top_k]

    def _stage1_candidates(
        self, base: KernelPlan, space: SearchSpace
    ) -> List[KernelPlan]:
        """Stage-1 candidate list: the block x unroll sweep over ``base``.

        The extension point for warm-started searches —
        :class:`repro.tuning.transfer.WarmStartTuner` overrides this to
        narrow the sweep to the neighborhood of another device's
        journaled winners.  Retimed twins ride along with their parent
        variant, so overrides that filter the returned list keep the
        pairing intact.
        """
        retimable = self._retimable(base)
        candidates: List[KernelPlan] = []
        for variant in seed_variants(base, space):
            candidates.append(variant)
            if retimable and variant.total_unroll() == 1:
                # Register-level optimizations change which block
                # sizes win; explore the retimed shape of each block
                # up front.
                candidates.append(variant.replace(retime=True))
        return candidates

    def _retimable(self, plan: KernelPlan) -> bool:
        if not (self.use_register_opts and plan.uses_streaming):
            return False
        iterator = self.ir.iterators[plan.stream_axis]
        return all(
            kernel_retimable(self.ir, self.ir.kernel(name), iterator)
            for name in plan.kernel_names
        )

    def _stage2(self, survivors: List[Measurement]) -> Measurement:
        # Different survivors (and stage 1 itself) can generate the same
        # second-tier variant — e.g. retiming a survivor that stage 1
        # already explored retimed.  Deduplicate by plan-family
        # fingerprint so each distinct configuration is measured once.
        with _span("tuning.stage2", survivors=len(survivors)) as stage_span, \
                _log_context(self._slog, stage="stage2"), \
                self.evaluator.phase("stage2"):
            candidates: List[KernelPlan] = []
            seen = set(self._measured_families)
            for survivor in survivors:
                for variant in self._stage2_variants(survivor.plan):
                    family = plan_family_key(variant)
                    if family in seen:
                        continue
                    seen.add(family)
                    candidates.append(variant)
            best = survivors[0]
            for measurement in self._measure_batch(candidates):
                if measurement is not None and measurement.time_s < best.time_s:
                    best = measurement
            if _metrics_enabled():
                _counter("tuner.stage2.candidates").add(len(candidates))
            if stage_span is not None:
                stage_span.attributes["candidates"] = len(candidates)
            return best

    def _stage2_variants(self, plan: KernelPlan) -> Iterable[KernelPlan]:
        yield plan.replace(prefetch=True)
        yield plan.replace(perspective=PERSPECTIVE_MIXED)
        yield plan.replace(prefetch=True, perspective=PERSPECTIVE_MIXED)
        if plan.streaming == "serial":
            for chunks in (2, 4):
                yield plan.replace(
                    streaming=STREAM_CONCURRENT, concurrent_chunks=chunks
                )
        if self.use_register_opts and plan.uses_streaming:
            iterator = self.ir.iterators[plan.stream_axis]
            retimable = all(
                kernel_retimable(self.ir, self.ir.kernel(name), iterator)
                for name in plan.kernel_names
            )
            if retimable:
                yield plan.replace(retime=True)
                yield plan.replace(retime=True, prefetch=True)
            folds = ()
            for name in plan.kernel_names:
                folds = folds + find_fold_groups(self.ir.kernel(name))
            if folds:
                yield with_fold_groups(plan, folds)

    def _tune_custom(self, base: KernelPlan) -> TuningResult:
        """User-defined hierarchy: each level maps survivors to variants."""
        survivors = [base]
        best: Optional[Measurement] = None
        stage1_evals = 0
        for depth, generator in enumerate(self.hierarchy or ()):
            level_plans: List[KernelPlan] = []
            for plan in survivors:
                level_plans.extend(generator(self.ir, plan))
            with _span(
                f"tuning.level{depth + 1}", candidates=len(level_plans)
            ), _log_context(self._slog, stage=f"level{depth + 1}"), \
                    self.evaluator.phase(f"level{depth + 1}"):
                measured = [
                    m for m in self._measure_batch(level_plans) if m is not None
                ]
            measured.sort(key=lambda m: m.time_s)
            if measured:
                survivors = [m.plan for m in measured[: self.top_k]]
                if best is None or measured[0].time_s < best.time_s:
                    best = measured[0]
            if depth == 0:
                stage1_evals = self.evaluations
        if best is None:
            best = self.measure_with_spills(base)
            if best is None:
                raise PlanInfeasible("custom hierarchy produced no candidates")
        return TuningResult(
            best=best,
            evaluations=self.evaluations,
            stage1_evaluations=stage1_evals,
            trace=tuple(self._trace),
        )


def dataclass_replace_stats(
    result: TuningResult, stats: EvalStats
) -> TuningResult:
    from dataclasses import replace

    return replace(result, eval_stats=stats)


def tune_kernel(
    ir: ProgramIR,
    base: KernelPlan,
    device: DeviceSpec = P100,
    **tuner_kwargs,
) -> TuningResult:
    """Convenience wrapper: hierarchical tuning of one kernel plan."""
    tuner = HierarchicalTuner(ir, device=device, **tuner_kwargs)
    return tuner.tune(base)
