"""Hierarchical autotuning (paper Section V).

Tuning runs in steps instead of searching the full cross-product:

* **Stage 1** tunes the high-impact knobs — thread block size and unroll
  factors — with serial streaming enabled by default when shared memory
  is used.  Unrolled versions are explored in increasing order of the
  post-unroll statement count, and the per-thread register budget is
  escalated (32 → 64 → 128 → 255) so only spill-free configurations are
  measured.
* **Stage 2** takes the top-K stage-1 candidates and layers the
  second-tier optimizations on them: prefetching, concurrent streaming,
  and thread-block load/compute adjustment (perspectives), plus retiming
  and folding when the profiling advice enables register-level
  optimizations.

Users can supply their own hierarchy (a list of variant generators), as
the paper allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..codegen.plan import (
    KernelPlan,
    PERSPECTIVE_MIXED,
    STREAM_CONCURRENT,
)
from ..codegen.resources import InvalidPlan, validate_plan
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import PlanInfeasible, simulate
from ..ir.folding import find_fold_groups
from ..ir.homogenize import kernel_retimable
from ..ir.stencil import ProgramIR
from .space import SearchSpace, seed_variants

#: Stage-1 survivors carried into stage 2.
TOP_K = 4

VariantGenerator = Callable[[ProgramIR, KernelPlan], Iterable[KernelPlan]]


def with_fold_groups(plan: KernelPlan, folds) -> KernelPlan:
    """Attach fold groups, inheriting each member's storage placement."""
    placements = list(plan.placements)
    placed = {a for a, _ in placements}
    for group in folds:
        if group.folded_name not in placed:
            placements.append(
                (group.folded_name, plan.placement_of(group.members[0]))
            )
    return plan.replace(fold_groups=folds, placements=tuple(placements))


@dataclass(frozen=True)
class Measurement:
    """One evaluated candidate."""

    plan: KernelPlan
    time_s: float
    tflops: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a hierarchical tuning run."""

    best: Measurement
    evaluations: int
    stage1_evaluations: int
    trace: Tuple[Measurement, ...] = ()

    @property
    def best_plan(self) -> KernelPlan:
        return self.best.plan


class HierarchicalTuner:
    """Two-stage (or user-defined) pruned autotuner."""

    def __init__(
        self,
        ir: ProgramIR,
        device: DeviceSpec = P100,
        use_unrolling: bool = True,
        use_register_opts: bool = False,
        bandwidth_bound: bool = True,
        top_k: int = TOP_K,
        hierarchy: Optional[Sequence[VariantGenerator]] = None,
        keep_trace: bool = False,
    ):
        self.ir = ir
        self.device = device
        self.use_unrolling = use_unrolling
        self.use_register_opts = use_register_opts
        self.bandwidth_bound = bandwidth_bound
        self.top_k = top_k
        self.hierarchy = hierarchy
        self.keep_trace = keep_trace
        self.evaluations = 0
        self._trace: List[Measurement] = []

    # -- measurement -----------------------------------------------------------

    def measure(self, plan: KernelPlan) -> Optional[Measurement]:
        """Simulate a candidate; escalate registers past spills.

        Implements the paper's dynamic register increment: if the
        configuration spills at the current ``maxrregcount``, retry at
        the next level; configurations that spill even at 255 registers
        are discarded (only non-spill configurations are explored).
        """
        for level in (32, 64, 128, 255):
            candidate = plan.replace(max_registers=level)
            try:
                validate_plan(self.ir, candidate)
                result = simulate(self.ir, candidate, self.device)
            except (PlanInfeasible, InvalidPlan):
                return None
            self.evaluations += 1
            if not result.counters.has_spills:
                measurement = Measurement(
                    plan=candidate,
                    time_s=result.time_s,
                    tflops=result.tflops,
                )
                if self.keep_trace:
                    self._trace.append(measurement)
                return measurement
        return None

    def measure_with_spills(self, plan: KernelPlan) -> Optional[Measurement]:
        """Measure at the maximum register level even if it spills."""
        candidate = plan.replace(max_registers=255)
        try:
            validate_plan(self.ir, candidate)
            result = simulate(self.ir, candidate, self.device)
        except (PlanInfeasible, InvalidPlan):
            return None
        self.evaluations += 1
        return Measurement(
            plan=candidate, time_s=result.time_s, tflops=result.tflops
        )

    # -- stages -----------------------------------------------------------------

    def tune(self, base: KernelPlan) -> TuningResult:
        if self.hierarchy is not None:
            return self._tune_custom(base)
        stage1 = self._stage1(base)
        stage1_evals = self.evaluations
        if not stage1:
            # Nothing spill-free: fall back to the best spilling config.
            fallback = self.measure_with_spills(base)
            if fallback is None:
                raise PlanInfeasible(
                    f"no feasible configuration for {base.kernel_names}"
                )
            return TuningResult(
                best=fallback,
                evaluations=self.evaluations,
                stage1_evaluations=stage1_evals,
                trace=tuple(self._trace),
            )
        best = self._stage2(stage1)
        return TuningResult(
            best=best,
            evaluations=self.evaluations,
            stage1_evaluations=stage1_evals,
            trace=tuple(self._trace),
        )

    def _stage1(self, base: KernelPlan) -> List[Measurement]:
        space = SearchSpace(
            ndim=self.ir.ndim,
            streaming=base.uses_streaming,
            bandwidth_bound=self.bandwidth_bound,
            allow_unroll=self.use_unrolling,
            device=self.device,
        )
        retimable = self._retimable(base)
        results: List[Measurement] = []
        for variant in seed_variants(base, space):
            measurement = self.measure(variant)
            if measurement is not None:
                results.append(measurement)
            if retimable and variant.total_unroll() == 1:
                # Register-level optimizations change which block sizes
                # win; explore the retimed shape of each block up front.
                retimed = self.measure(variant.replace(retime=True))
                if retimed is not None:
                    results.append(retimed)
        results.sort(key=lambda m: m.time_s)
        return results[: self.top_k]

    def _retimable(self, plan: KernelPlan) -> bool:
        if not (self.use_register_opts and plan.uses_streaming):
            return False
        iterator = self.ir.iterators[plan.stream_axis]
        return all(
            kernel_retimable(self.ir, self.ir.kernel(name), iterator)
            for name in plan.kernel_names
        )

    def _stage2(self, survivors: List[Measurement]) -> Measurement:
        best = survivors[0]
        for survivor in survivors:
            for variant in self._stage2_variants(survivor.plan):
                measurement = self.measure(variant)
                if measurement is not None and measurement.time_s < best.time_s:
                    best = measurement
        return best

    def _stage2_variants(self, plan: KernelPlan) -> Iterable[KernelPlan]:
        yield plan.replace(prefetch=True)
        yield plan.replace(perspective=PERSPECTIVE_MIXED)
        yield plan.replace(prefetch=True, perspective=PERSPECTIVE_MIXED)
        if plan.streaming == "serial":
            for chunks in (2, 4):
                yield plan.replace(
                    streaming=STREAM_CONCURRENT, concurrent_chunks=chunks
                )
        if self.use_register_opts and plan.uses_streaming:
            iterator = self.ir.iterators[plan.stream_axis]
            retimable = all(
                kernel_retimable(self.ir, self.ir.kernel(name), iterator)
                for name in plan.kernel_names
            )
            if retimable:
                yield plan.replace(retime=True)
                yield plan.replace(retime=True, prefetch=True)
            folds = ()
            for name in plan.kernel_names:
                folds = folds + find_fold_groups(self.ir.kernel(name))
            if folds:
                yield with_fold_groups(plan, folds)

    def _tune_custom(self, base: KernelPlan) -> TuningResult:
        """User-defined hierarchy: each level maps survivors to variants."""
        survivors = [base]
        best: Optional[Measurement] = None
        stage1_evals = 0
        for depth, generator in enumerate(self.hierarchy or ()):
            measured: List[Measurement] = []
            for plan in survivors:
                for variant in generator(self.ir, plan):
                    measurement = self.measure(variant)
                    if measurement is not None:
                        measured.append(measurement)
            measured.sort(key=lambda m: m.time_s)
            if measured:
                survivors = [m.plan for m in measured[: self.top_k]]
                if best is None or measured[0].time_s < best.time_s:
                    best = measured[0]
            if depth == 0:
                stage1_evals = self.evaluations
        if best is None:
            best = self.measure_with_spills(base)
            if best is None:
                raise PlanInfeasible("custom hierarchy produced no candidates")
        return TuningResult(
            best=best,
            evaluations=self.evaluations,
            stage1_evaluations=stage1_evals,
            trace=tuple(self._trace),
        )


def tune_kernel(
    ir: ProgramIR,
    base: KernelPlan,
    device: DeviceSpec = P100,
    **tuner_kwargs,
) -> TuningResult:
    """Convenience wrapper: hierarchical tuning of one kernel plan."""
    tuner = HierarchicalTuner(ir, device=device, **tuner_kwargs)
    return tuner.tune(base)
