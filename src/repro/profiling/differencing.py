"""Code differencing (paper Section IV, Listings 2 vs 3).

When a kernel's OI sits near a ridge point, ARTEMIS resolves the
classification empirically: it generates a modified version V' whose
accesses to the suspect memory level are drastically reduced — Listing 3
confines every global access to one block-sized tile — runs both, and
declares the kernel bound at that level iff V' runs faster.

In this reproduction, V' is realized by re-simulating the plan with the
suspect level's traffic collapsed the same way Listing 3 collapses it:
every block's global reads land in one tile's worth of data (so DRAM
transactions vanish into cache), or the shared/texture traffic is
similarly short-circuited.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..codegen.plan import KernelPlan
from ..gpu.counters import KernelCounters, SimulationResult, TimingBreakdown
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import simulate
from ..ir.stencil import ProgramIR
from ..resilience.errors import UsageError

#: Speedup V' must show before V is declared bound at the level.
SPEEDUP_THRESHOLD = 1.10


@dataclass(frozen=True)
class DifferencingVerdict:
    """Outcome of one code-differencing experiment."""

    level: str
    base_time_s: float
    reduced_time_s: float
    bound: bool

    @property
    def speedup(self) -> float:
        if self.reduced_time_s <= 0:
            return float("inf")
        return self.base_time_s / self.reduced_time_s


def _reduced_result(
    base: SimulationResult, level: str
) -> SimulationResult:
    """Synthesize V': the level's traffic collapsed to one tile per block.

    Listing 3 keeps the instruction stream (so tex transactions remain)
    but confines DRAM to a per-block tile; for the tex and shm levels the
    corresponding traffic itself is short-circuited.
    """
    counters = base.counters
    if level == "dram":
        tile_bytes = float(
            counters.blocks * counters.threads_per_block * 8
        )
        new_counters = replace(
            counters,
            dram_read_bytes=min(counters.dram_read_bytes, tile_bytes),
            dram_write_bytes=min(counters.dram_write_bytes, tile_bytes),
            spill_bytes=0.0,
        )
    elif level == "tex":
        new_counters = replace(
            counters,
            tex_bytes=counters.tex_bytes * 0.05,
        )
    elif level == "shm":
        new_counters = replace(counters, shm_bytes=counters.shm_bytes * 0.05)
    else:
        raise UsageError(f"unknown memory level {level!r}")
    timing = _retime(base.timing, counters, new_counters)
    return SimulationResult(
        counters=new_counters, occupancy=base.occupancy, timing=timing
    )


def _retime(
    timing: TimingBreakdown,
    old: KernelCounters,
    new: KernelCounters,
) -> TimingBreakdown:
    """Scale each resource's time by its traffic ratio."""

    def scaled(time_s: float, old_bytes: float, new_bytes: float) -> float:
        if old_bytes <= 0:
            return time_s
        return time_s * (new_bytes / old_bytes)

    return TimingBreakdown(
        compute_s=timing.compute_s,
        dram_s=scaled(timing.dram_s, old.dram_bytes, new.dram_bytes),
        tex_s=scaled(timing.tex_s, old.tex_bytes, new.tex_bytes),
        shm_s=scaled(timing.shm_s, old.shm_bytes, new.shm_bytes),
        sync_s=timing.sync_s,
        latency_s=timing.latency_s,
        launch_s=timing.launch_s,
    )


def differencing_test(
    ir: ProgramIR,
    plan: KernelPlan,
    level: str,
    device: DeviceSpec = P100,
) -> DifferencingVerdict:
    """Run V and the reduced V' and compare execution times."""
    base = simulate(ir, plan, device)
    reduced = _reduced_result(base, level)
    speedup = base.time_s / reduced.time_s if reduced.time_s > 0 else float("inf")
    return DifferencingVerdict(
        level=level,
        base_time_s=base.time_s,
        reduced_time_s=reduced.time_s,
        bound=speedup >= SPEEDUP_THRESHOLD,
    )
