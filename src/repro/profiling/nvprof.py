"""Simulated nvprof: run a kernel plan and collect named metrics.

The paper's profiling component "first uses nvprof to execute and
profile the kernel to collect the counters for metrics of interest, and
then uses those metrics to compute the operational intensity for
different memory levels".  Here the execution is the analytical
simulator; the metric names follow nvprof's vocabulary so the downstream
logic reads like the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..codegen.plan import KernelPlan
from ..gpu.counters import SimulationResult
from ..gpu.device import DeviceSpec, P100
from ..gpu.simulator import simulate
from ..ir.stencil import ProgramIR

#: The metrics ARTEMIS collects ("less than 10 metrics at present").
METRIC_NAMES = (
    "flop_count_dp",
    "dram_read_bytes",
    "dram_write_bytes",
    "tex_bytes",
    "shared_load_store_bytes",
    "local_memory_overhead_bytes",
    "achieved_occupancy",
    "registers_per_thread",
    "elapsed_ms",
)


@dataclass(frozen=True)
class ProfileReport:
    """One profiled execution: metrics plus derived OIs."""

    plan: KernelPlan
    metrics: Dict[str, float]
    result: SimulationResult

    def oi(self, level: str) -> float:
        return self.result.counters.oi(level)

    @property
    def elapsed_ms(self) -> float:
        return self.metrics["elapsed_ms"]

    @property
    def tflops(self) -> float:
        return self.result.tflops


def profile(
    ir: ProgramIR, plan: KernelPlan, device: DeviceSpec = P100
) -> ProfileReport:
    """Profile one launch and return nvprof-style metrics."""
    result = simulate(ir, plan, device)
    counters = result.counters
    metrics = {
        "flop_count_dp": counters.flops,
        "dram_read_bytes": counters.dram_read_bytes,
        "dram_write_bytes": counters.dram_write_bytes,
        "tex_bytes": counters.tex_bytes,
        "shared_load_store_bytes": counters.shm_bytes,
        "local_memory_overhead_bytes": counters.spill_bytes,
        "achieved_occupancy": result.occupancy.occupancy,
        "registers_per_thread": float(counters.regs_per_thread),
        "elapsed_ms": result.time_ms,
    }
    return ProfileReport(plan=plan, metrics=metrics, result=result)


def profile_many(
    ir: ProgramIR,
    plans: Tuple[KernelPlan, ...],
    device: DeviceSpec = P100,
) -> Tuple[ProfileReport, ...]:
    return tuple(profile(ir, plan, device) for plan in plans)
