"""Bottleneck profiling: roofline, simulated nvprof, code differencing."""

from .advisor import Advice, advise
from .differencing import DifferencingVerdict, differencing_test
from .nvprof import METRIC_NAMES, ProfileReport, profile, profile_many
from .roofline import (
    AMBIGUOUS,
    BANDWIDTH_BOUND,
    BottleneckReport,
    COMPUTE_BOUND,
    LevelVerdict,
    MEMORY_LEVELS,
    classify,
    classify_level,
    classify_result,
    oi_table,
)

__all__ = [
    "AMBIGUOUS",
    "Advice",
    "BANDWIDTH_BOUND",
    "BottleneckReport",
    "COMPUTE_BOUND",
    "DifferencingVerdict",
    "LevelVerdict",
    "MEMORY_LEVELS",
    "METRIC_NAMES",
    "ProfileReport",
    "advise",
    "classify",
    "classify_level",
    "classify_result",
    "differencing_test",
    "oi_table",
    "profile",
    "profile_many",
]
