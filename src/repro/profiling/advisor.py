"""Profiling-driven optimization decisions (paper Section IV-A).

The advisor turns a bottleneck report into concrete guidance: which
optimization families the autotuner should explore or suppress, which
alternate versions to generate for the user, and textual hints.  Each
rule below is one bullet of Section IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..codegen.plan import KernelPlan
from ..gpu.device import DeviceSpec, P100
from ..ir.stencil import ProgramIR
from .differencing import differencing_test
from .nvprof import ProfileReport, profile
from .roofline import BottleneckReport, classify_result

#: Spill bytes (relative to DRAM traffic) treated as high register
#: pressure even before hard spills appear.
SPILL_PRESSURE_RATIO = 0.02


@dataclass(frozen=True)
class Advice:
    """Optimization guidance for one kernel."""

    bottleneck: BottleneckReport
    use_shared_memory: bool
    use_unrolling: bool
    use_register_opts: bool  # retiming / register caching / folding
    explore_higher_fusion: bool
    explore_fission: bool
    generate_global_version: bool
    hints: Tuple[str, ...]

    def suppressed(self) -> Tuple[str, ...]:
        out: List[str] = []
        if not self.use_shared_memory:
            out.append("shared-memory buffering")
        if not self.use_unrolling:
            out.append("loop unrolling")
        if not self.use_register_opts:
            out.append("register-level optimizations")
        return tuple(out)


def advise(
    ir: ProgramIR,
    plan: KernelPlan,
    device: DeviceSpec = P100,
    report: Optional[ProfileReport] = None,
) -> Advice:
    """Apply the Section IV-A guidelines to one profiled kernel."""
    if report is None:
        report = profile(ir, plan, device)
    bottleneck = classify_result(report.result, device)
    counters = report.result.counters

    # Resolve ambiguous levels by code differencing (Section IV).
    resolved_bandwidth = {
        level: bottleneck.bandwidth_bound_at(level)
        for level in ("dram", "tex", "shm")
    }
    for level in bottleneck.ambiguous_levels():
        verdict = differencing_test(ir, plan, level, device)
        resolved_bandwidth[level] = verdict.bound

    compute_bound = bottleneck.compute_bound() and not any(
        resolved_bandwidth.values()
    )
    spills = counters.has_spills or (
        counters.dram_bytes > 0
        and counters.spill_bytes / counters.dram_bytes > SPILL_PRESSURE_RATIO
    )
    iterative = ir.is_iterative

    hints: List[str] = []
    use_shared = True
    use_unroll = True
    use_regopts = False
    explore_fusion = False
    explore_fission = False
    generate_global = False

    if compute_bound:
        # "shared memory optimizations, or optimizations like unrolling
        # that improve ILP, are not useful, and turned off ... FLOP-
        # reducing optimizations are applied."
        use_shared = False
        use_unroll = False
        use_regopts = True  # folding / CSE reduce FLOPs
        hints.append(
            "kernel is compute-bound: shared-memory and ILP optimizations "
            "disabled; applying FLOP-reducing rewrites (folding)"
        )
    if spills:
        # "If the stencil exhibits high register pressure or register
        # spills, then loop unrolling is turned off ... versions with
        # varying degree of fission" are generated.
        use_unroll = False
        explore_fission = True
        hints.append(
            f"register pressure ({counters.regs_demand} demanded vs "
            f"{counters.regs_per_thread} available): unrolling disabled, "
            "generating fission candidates"
        )
    if iterative and (resolved_bandwidth["tex"] or resolved_bandwidth["dram"]):
        explore_fusion = True
        hints.append(
            "iterative stencil bandwidth-bound at texture/DRAM: exploring "
            "a higher fusion degree"
        )
    if not iterative and resolved_bandwidth["tex"]:
        use_shared = True
        hints.append(
            "spatial stencil texture-bandwidth-bound: shared memory "
            "buffering enabled by default"
        )
    if (
        not iterative
        and resolved_bandwidth["dram"]
        and plan.placement_map
        and any(s == "shmem" for _, s in plan.placements)
    ):
        # DRAM-bound *despite* shared memory: the extra shared traffic
        # may not pay off — hand the user a global-memory version.
        verdict = differencing_test(ir, plan, "dram", device)
        if verdict.bound:
            generate_global = True
            hints.append(
                "kernel remains DRAM bandwidth-bound with shared memory: "
                "generating the global-memory version; consider algorithmic "
                "changes that reduce DRAM traffic or stencil order"
            )
    if resolved_bandwidth["shm"]:
        use_regopts = True
        hints.append(
            "kernel is shared-memory bandwidth-bound: enabling register-"
            "level optimizations (retiming, register caching, folding)"
        )

    return Advice(
        bottleneck=bottleneck,
        use_shared_memory=use_shared,
        use_unrolling=use_unroll,
        use_register_opts=use_regopts,
        explore_higher_fusion=explore_fusion,
        explore_fission=explore_fission,
        generate_global_version=generate_global,
        hints=tuple(hints),
    )
