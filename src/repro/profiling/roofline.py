"""Roofline-model bottleneck classification (paper Section IV).

For each memory level M the operational intensity ``OI_M = FLOPs /
bytes_M`` is compared against the device ridge point ``α/β_M``:

* ``OI_M ≪ α/β_M``  → bandwidth-bound at M;
* ``OI_M ≥ α/β_M``  → compute-bound at M;
* close to the ridge → ambiguous, resolved by code differencing;
* bound nowhere and at low occupancy → latency-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..gpu.counters import KernelCounters, SimulationResult
from ..gpu.device import DeviceSpec, P100

MEMORY_LEVELS = ("dram", "tex", "shm")

#: Band around the ridge point treated as ambiguous ("when OI_M is closer
#: to α/β_M, categorizing the kernel ... is difficult").
AMBIGUITY_BAND = 0.25

BANDWIDTH_BOUND = "bandwidth"
COMPUTE_BOUND = "compute"
AMBIGUOUS = "ambiguous"

#: Occupancy below which a kernel bound nowhere is called latency-bound.
LATENCY_OCCUPANCY = 0.25


@dataclass(frozen=True)
class LevelVerdict:
    """Classification of one memory level."""

    level: str
    oi: float
    ridge: float
    verdict: str  # bandwidth | compute | ambiguous

    @property
    def severity(self) -> float:
        """How far below the ridge the OI sits (1 = at ridge, >1 worse)."""
        if self.oi <= 0:
            return float("inf")
        return self.ridge / self.oi


@dataclass(frozen=True)
class BottleneckReport:
    """Full roofline verdict for one kernel execution."""

    levels: Tuple[LevelVerdict, ...]
    occupancy: float
    bound_level: str  # dram | tex | shm | compute | latency
    latency_bound: bool

    def verdict(self, level: str) -> LevelVerdict:
        for entry in self.levels:
            if entry.level == level:
                return entry
        raise KeyError(level)

    def bandwidth_bound_at(self, level: str) -> bool:
        return self.verdict(level).verdict == BANDWIDTH_BOUND

    def compute_bound(self) -> bool:
        return all(v.verdict == COMPUTE_BOUND for v in self.levels)

    def ambiguous_levels(self) -> Tuple[str, ...]:
        return tuple(v.level for v in self.levels if v.verdict == AMBIGUOUS)


def classify_level(
    device: DeviceSpec, level: str, oi: float
) -> LevelVerdict:
    ridge = device.ridge(level)
    if oi >= ridge:
        verdict = COMPUTE_BOUND
    elif oi >= ridge * (1.0 - AMBIGUITY_BAND):
        verdict = AMBIGUOUS
    else:
        verdict = BANDWIDTH_BOUND
    return LevelVerdict(level=level, oi=oi, ridge=ridge, verdict=verdict)


def classify(
    counters: KernelCounters,
    occupancy: float,
    device: DeviceSpec = P100,
) -> BottleneckReport:
    """Classify a kernel from its counters (the Section IV decision)."""
    levels = tuple(
        classify_level(device, level, counters.oi(level))
        for level in MEMORY_LEVELS
    )
    # The binding level is the bandwidth-bound level with the worst
    # severity; if none is bandwidth-bound the kernel is compute-bound,
    # unless occupancy is too low to hide latency.
    bw_levels = [v for v in levels if v.verdict == BANDWIDTH_BOUND]
    latency = False
    if bw_levels:
        bound = max(bw_levels, key=lambda v: v.severity).level
    elif occupancy < LATENCY_OCCUPANCY:
        bound = "latency"
        latency = True
    else:
        bound = "compute"
    return BottleneckReport(
        levels=levels,
        occupancy=occupancy,
        bound_level=bound,
        latency_bound=latency,
    )


def classify_result(
    result: SimulationResult, device: DeviceSpec = P100
) -> BottleneckReport:
    return classify(result.counters, result.occupancy.occupancy, device)


def oi_table(counters: KernelCounters) -> Dict[str, float]:
    """The OI row the paper's Table II reports for one version."""
    return {level: counters.oi(level) for level in MEMORY_LEVELS}
