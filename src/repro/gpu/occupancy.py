"""GPU occupancy calculator.

Computes the number of resident blocks per SM given a kernel's resource
footprint, and the resulting occupancy (active warps over the SM's warp
capacity).  The limiter string reports *why* occupancy is capped, which
the advisor and the resource-rationing algorithm (Section II-B2) consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..resilience.errors import InfeasiblePlanError
from .device import DeviceSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one kernel configuration on one device."""

    blocks_per_sm: int
    active_warps: int
    occupancy: float  # active threads / max threads per SM, in (0, 1]
    limiter: str  # 'threads' | 'blocks' | 'registers' | 'shmem' | 'none'
    #: warp/wavefront width of the device this was computed for (64 on
    #: AMD wavefront devices)
    warp_size: int = 32

    @property
    def active_threads(self) -> int:
        return self.active_warps * self.warp_size


def registers_per_block(
    device: DeviceSpec, threads_per_block: int, regs_per_thread: int
) -> int:
    """Register-file footprint of one block, honouring warp granularity."""
    warps = -(-threads_per_block // device.warp_size)
    per_warp = regs_per_thread * device.warp_size
    granularity = device.register_granularity
    per_warp = -(-per_warp // granularity) * granularity
    return warps * per_warp


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    regs_per_thread: int,
    shmem_per_block: int,
) -> OccupancyResult:
    """Occupancy of a kernel with the given per-block footprint.

    Raises :class:`InfeasiblePlanError` (a ``ValueError``) when the
    configuration cannot launch at all (block too large, or one block
    exceeds an SM's resources).
    """
    if threads_per_block < 1:
        raise InfeasiblePlanError("threads_per_block must be positive")
    if threads_per_block > device.max_threads_per_block:
        raise InfeasiblePlanError(
            f"block of {threads_per_block} threads exceeds device limit "
            f"{device.max_threads_per_block}",
            threads=threads_per_block,
            device=device.name,
        )
    if shmem_per_block > device.shared_mem_per_block:
        raise InfeasiblePlanError(
            f"block needs {shmem_per_block} B shared memory, device allows "
            f"{device.shared_mem_per_block} B per block",
            shmem_bytes=shmem_per_block,
            device=device.name,
        )
    regs_per_thread = max(1, regs_per_thread)
    if regs_per_thread > device.max_registers_per_thread:
        raise InfeasiblePlanError(
            f"{regs_per_thread} registers/thread exceeds device limit "
            f"{device.max_registers_per_thread}",
            registers=regs_per_thread,
            device=device.name,
        )

    limits = {}
    limits["threads"] = device.max_threads_per_sm // threads_per_block
    limits["blocks"] = device.max_blocks_per_sm
    block_regs = registers_per_block(device, threads_per_block, regs_per_thread)
    limits["registers"] = device.registers_per_sm // block_regs if block_regs else (
        device.max_blocks_per_sm
    )
    if shmem_per_block > 0:
        limits["shmem"] = device.shared_mem_per_sm // shmem_per_block
    blocks = min(limits.values())
    if blocks < 1:
        # One block alone exceeds the SM's registers or shared memory.
        limiter = min(limits, key=limits.get)  # type: ignore[arg-type]
        raise InfeasiblePlanError(
            f"kernel cannot launch: resource {limiter!r} admits zero blocks",
            limiter=limiter,
            device=device.name,
        )
    limiter = min(limits, key=limits.get)  # type: ignore[arg-type]
    if blocks == device.max_blocks_per_sm and limiter != "blocks":
        limiter = "blocks"
    warps_per_block = -(-threads_per_block // device.warp_size)
    active_warps = min(blocks * warps_per_block, device.max_warps_per_sm)
    occ = active_warps / device.max_warps_per_sm
    return OccupancyResult(
        blocks_per_sm=blocks,
        active_warps=active_warps,
        occupancy=occ,
        limiter=limiter,
        warp_size=device.warp_size,
    )


def max_block_for_occupancy(
    device: DeviceSpec,
    target_occupancy: float,
    regs_per_thread: int,
    shmem_per_block: int,
) -> int:
    """Largest threads-per-block that still meets a target occupancy.

    Supports the paper's ``occupancy t`` clause: the rationing algorithm
    needs to know whether a configuration can reach the requested
    occupancy at all.  Returns 0 when no block size qualifies.
    """
    best = 0
    size = device.warp_size
    while size <= device.max_threads_per_block:
        try:
            result = occupancy(device, size, regs_per_thread, shmem_per_block)
        except ValueError:
            break
        if result.occupancy >= target_occupancy:
            best = size
        size *= 2
    return best
