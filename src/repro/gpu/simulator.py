"""Analytical kernel simulator: counters + timing for a kernel plan.

Device-parametric: every resource limit, bandwidth and model knob comes
from the :class:`~repro.gpu.device.DeviceSpec` profile passed in (the
paper's P100 is the default; see ``docs/devices.md``).

The simulator plays the role of the paper's (GPU + nvprof) pair.  Every
quantity ARTEMIS's profiling and tuning logic consumes — FLOPs, DRAM
bytes, texture bytes, shared-memory bytes, registers, occupancy — is
derived *mechanistically* from the stencil IR and the kernel plan:

* FLOPs come from the statement ASTs times the points each fused stage
  computes per block (overlapped tiling recomputes halo points);
* texture bytes count the global-load instructions that actually execute
  (buffered arrays load their footprint once; gmem arrays load per
  distinct access, discounted by blocked-unroll register reuse), scaled
  by a 32-byte-sector coalescing factor;
* DRAM bytes separate unique first-touch traffic from re-touches, which
  hit in L2 with a probability set by the live working set vs. L2 size —
  this is what makes "global-stream" lose to "global" (Section VIII-F)
  and fusion pay off for bandwidth-bound smoothers (Table II);
* shared bytes count buffer fills, rotation traffic and served reads;
* register demand beyond ``maxrregcount`` spills, adding local-memory
  traffic (the §VIII-D fission story).

Timing applies a derated roofline — ``max`` over per-resource times with
occupancy-dependent saturation — plus an issue-latency term that binds
low-occupancy kernels, sync overhead and launch overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..codegen.plan import KernelPlan, PERSPECTIVE_OUTPUT
from ..codegen.tiling import (
    LaunchGeometry,
    Stage,
    _ir_memoized,
    _plan_memoized,
    build_stages,
    buffer_requirements,
    distinct_read_offsets,
    gmem_loads_per_point,
    intermediate_specs,
    launch_geometry,
    pingpong_pair,
    points_computed,
    read_footprint,
    shmem_bytes_per_block,
)
from ..ir.analysis import access_patterns, access_summary
from ..ir.stencil import ProgramIR
from ..ir.types import sizeof
from ..obs import counter as _counter, metrics_enabled as _metrics_enabled
from ..obs import span as _span
from ..resilience.errors import InfeasiblePlanError
from .counters import KernelCounters, SimulationResult, TimingBreakdown
from .device import DeviceSpec, P100
from .occupancy import OccupancyResult, occupancy


class PlanInfeasible(InfeasiblePlanError):
    """Raised when a plan cannot launch on the device at all.

    Part of the :mod:`repro.resilience` taxonomy (and still a
    ``ValueError``, as in the seed implementation): tuners treat it as
    "candidate rejected", never as a crash.
    """


#: Spilled registers are stored and reloaded about once per computed
#: point; the traffic transits the L1/tex path (thrashing it) and is
#: backed by DRAM-resident local memory.  These module constants are the
#: P100 defaults, kept for backward compatibility — the model reads the
#: per-device values (``DeviceSpec.spill_access_rate``,
#: ``DeviceSpec.inter_block_l2_factor``).
SPILL_ACCESS_RATE = 1.0

#: L2 capture of cross-block halo reuse relative to same-block reuse.
INTER_BLOCK_L2_FACTOR = 0.5


#: Count of full `simulate` invocations since process start (or the last
#: reset).  The evaluation engine's regression tests and benchmarks use
#: this to prove memoization actually removes simulations.
_SIMULATE_CALLS = 0


def simulate_call_count() -> int:
    """Total :func:`simulate` invocations since start / last reset."""
    return _SIMULATE_CALLS


def reset_simulate_calls() -> int:
    """Zero the call counter, returning the previous value."""
    global _SIMULATE_CALLS
    previous = _SIMULATE_CALLS
    _SIMULATE_CALLS = 0
    return previous


@dataclass(frozen=True)
class PlanPrefix:
    """The register-independent prefix of a simulation.

    Everything here is a pure function of (IR, plan family): launch
    geometry, the fused stage list, buffer layouts, shared-memory bytes
    and uncapped register demand.  The four rungs of the register-
    escalation ladder (32/64/128/255) share one prefix; only occupancy,
    spill traffic and timing — the cheap suffix — depend on the cap.
    """

    geometry: LaunchGeometry
    stages: Tuple[Stage, ...]
    buffers: Dict[str, "object"]
    shmem: int
    reg_demand: int
    live_bytes_per_block: float
    intermediates: frozenset
    inter_by_consumer: Dict[Tuple[int, str], "object"]
    externally_visible: frozenset


def plan_prefix(ir: ProgramIR, plan: KernelPlan) -> PlanPrefix:
    """Register-independent analysis of a plan (memoized per family)."""
    return _plan_memoized(
        "sim_prefix", ir, plan, lambda: _plan_prefix(ir, plan)
    )


def _plan_prefix(ir: ProgramIR, plan: KernelPlan) -> PlanPrefix:
    geometry = launch_geometry(ir, plan)
    stages = tuple(build_stages(ir, plan))
    buffers = buffer_requirements(ir, plan)
    shmem = shmem_bytes_per_block(ir, plan)
    from .registers import register_demand

    demand = register_demand(ir, plan)
    return PlanPrefix(
        geometry=geometry,
        stages=stages,
        buffers=buffers,
        shmem=shmem,
        reg_demand=demand,
        live_bytes_per_block=_live_bytes_per_block(
            ir, plan, geometry, stages, buffers
        ),
        intermediates=intermediate_arrays(ir, plan),
        inter_by_consumer={
            (spec.stage_index + 1, spec.array): spec
            for spec in intermediate_specs(ir, plan)
        },
        externally_visible=externally_visible(ir, plan),
    )


def plan_occupancy(
    ir: ProgramIR, plan: KernelPlan, device: DeviceSpec = P100
) -> OccupancyResult:
    """The launch-feasibility screen of :func:`simulate`, on its own.

    Computes occupancy from the memoized register-independent prefix
    plus the plan's register cap — the same arithmetic, raising the same
    :class:`PlanInfeasible`, as the corresponding step inside
    :func:`simulate`, but without paying for counters and timing.  The
    evaluation engine uses this to reject launch-infeasible candidates
    from the cheap suffix alone.
    """
    pre = plan_prefix(ir, plan)
    compiled = min(pre.reg_demand, plan.max_registers)
    try:
        return occupancy(
            device, pre.geometry.threads_per_block, compiled, pre.shmem
        )
    except ValueError as exc:
        if _metrics_enabled():
            _counter("simulate.prescreen_rejections").add()
            # Classify onto the stable lint rule code (RL201/202/203)
            # so dashboards and the evaluation engine agree on names.
            from ..lint.rules_plan import classify_occupancy_failure

            _counter(
                f"lint.reject.{classify_occupancy_failure(exc)}"
            ).add()
        context = dict(getattr(exc, "context", None) or {})
        raise PlanInfeasible(str(exc), **context) from exc


def simulate(
    ir: ProgramIR, plan: KernelPlan, device: DeviceSpec = P100
) -> SimulationResult:
    """Simulate one launch of ``plan`` over the whole domain."""
    global _SIMULATE_CALLS
    _SIMULATE_CALLS += 1
    if _metrics_enabled():
        _counter("simulate.calls").add()
    with _span("simulate"):
        pre = plan_prefix(ir, plan)
        regs = {
            "demand": pre.reg_demand,
            "compiled": min(pre.reg_demand, plan.max_registers),
        }
        occ = plan_occupancy(ir, plan, device)
        counters = _count(ir, plan, device, pre, regs, occ)
        timing = _time(ir, plan, device, pre.geometry, counters, occ)
        return SimulationResult(counters=counters, occupancy=occ, timing=timing)


# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------


def _domain_points(geometry: LaunchGeometry) -> int:
    total = 1
    for extent in geometry.domain:
        total *= extent
    return total


def _count(
    ir: ProgramIR,
    plan: KernelPlan,
    device: DeviceSpec,
    pre: PlanPrefix,
    regs: Dict[str, int],
    occ: OccupancyResult,
) -> KernelCounters:
    geometry = pre.geometry
    stages = pre.stages
    buffers = pre.buffers
    shmem = pre.shmem
    blocks = geometry.blocks
    domain_points = _domain_points(geometry)
    esize = 8  # evaluation suite is double precision; per-array dtype below

    flops = 0.0
    useful_flops = 0.0
    tex_bytes = 0.0
    dram_read = 0.0
    dram_write = 0.0
    shm_bytes = 0.0

    active_blocks = max(1, occ.blocks_per_sm * device.sms)
    working_set = active_blocks * max(pre.live_bytes_per_block, 1)
    p_intra = min(1.0, device.l2_cache_bytes / working_set)
    p_inter = device.inter_block_l2_factor * p_intra

    intermediates = pre.intermediates
    # Inter-stage buffer specs, keyed by (consumer stage index, array).
    inter_by_consumer = pre.inter_by_consumer

    externally_visible = pre.externally_visible

    for stage in stages:
        instance = stage.instance
        pts = points_computed(ir, plan, stage, geometry)
        flops += stage.flops_per_point * pts * blocks
        useful_flops += stage.flops_per_point * domain_points
        summary = access_summary(ir, instance)
        written_here = set(instance.arrays_written())

        for array, info in summary.items():
            if info.reads_total == 0:
                continue
            arr_esize = (
                sizeof(ir.array_map[array].dtype)
                if array in ir.array_map
                else esize
            )
            if array in written_here:
                # Produced by an earlier statement of this very kernel
                # (a fused DAG): staged on chip, read back through
                # shared memory, never through the texture path.
                shm_bytes += info.reads_distinct * pts * blocks * arr_esize
                continue
            if stage.index > 0 and array in intermediates:
                # Served from on-chip inter-stage buffers: shared-plane
                # reads cost shared bandwidth, register-plane reads are
                # free.  Retimed consumers read each finished plane's
                # in-plane offsets once.
                inter = inter_by_consumer.get((stage.index, array))
                if inter is not None:
                    served = (
                        inter.center_reads
                        if (inter.reg_planes > 0 or plan.retime)
                        else inter.total_reads
                    )
                    shm_bytes += served * pts * blocks * arr_esize
                continue
            spec = buffers.get(array)
            footprint = read_footprint(ir, plan, stage, geometry, array)
            if spec is not None and (spec.shm_planes > 0 or spec.reg_planes > 0):
                # Buffered: footprint loaded from global exactly once.
                loads = footprint * blocks
                tex_bytes += loads * arr_esize * _fill_coalescing(
                    ir, plan, geometry, stage, array,
                    device.dram_transaction_bytes,
                )
                dram_read += _dram_read(
                    loads * arr_esize,
                    footprint * blocks * arr_esize,
                    _unique_bytes(ir, array, arr_esize, plan),
                    p_intra,
                    p_inter,
                )
                shm_bytes += _buffered_shm_traffic(
                    ir, plan, stage, spec, info, pts, blocks, footprint, arr_esize
                )
            else:
                # Direct global (gmem) reads: one load per distinct access
                # per point, reduced by blocked-unroll register reuse.
                per_point = _gmem_loads_per_point(ir, plan, instance, array)
                loads = per_point * pts * blocks
                tex_bytes += loads * arr_esize * _gmem_coalescing(
                    ir, plan, instance, array
                )
                # Streaming without shared memory sweeps a long pencil and
                # keeps evicting the re-touched planes (paper §VIII-F).
                p_touch = p_intra
                if plan.uses_streaming:
                    p_touch *= device.stream_gmem_l2_capture
                dram_read += _dram_read(
                    loads * arr_esize,
                    footprint * blocks * arr_esize,
                    _unique_bytes(ir, array, arr_esize, plan),
                    p_touch,
                    p_inter,
                )

        # Stores: intermediates go to on-chip buffers; final / externally
        # visible arrays go to DRAM.
        for array in instance.arrays_written():
            arr_esize = (
                sizeof(ir.array_map[array].dtype)
                if array in ir.array_map
                else esize
            )
            writes = summary[array].writes if array in summary else 1
            if not stage.is_last and array in intermediates:
                inter = inter_by_consumer.get(
                    (stage.index + 1, _consumed_name(ir, plan, stage, array))
                )
                if inter is None or inter.shm_planes > 0:
                    shm_bytes += writes * pts * blocks * arr_esize
                continue
            if array not in externally_visible:
                # A value consumed only inside this launch (fused-DAG
                # temporary): staged in shared memory, never written out.
                shm_bytes += writes * pts * blocks * arr_esize
                continue
            dram_write += writes * domain_points * arr_esize

    # Register spills: stored to and reloaded from local memory (DRAM-
    # backed, read through the tex/L1 path).
    spilled = max(0, regs["demand"] - regs["compiled"])
    total_points = sum(
        points_computed(ir, plan, s, geometry) * blocks for s in stages
    )
    spill_bytes = spilled * device.spill_access_rate * 2 * esize * total_points
    tex_bytes += spill_bytes  # local-memory traffic transits L1/tex

    syncs = _sync_count(plan, geometry, stages, shmem)

    return KernelCounters(
        flops=flops,
        useful_flops=useful_flops,
        dram_read_bytes=dram_read,
        dram_write_bytes=dram_write,
        tex_bytes=tex_bytes,
        shm_bytes=shm_bytes,
        spill_bytes=spill_bytes,
        blocks=blocks,
        threads_per_block=geometry.threads_per_block,
        regs_per_thread=regs["compiled"],
        regs_demand=regs["demand"],
        shmem_per_block=shmem,
        syncs=syncs,
    )


def _unique_bytes(
    ir: ProgramIR, array: str, esize: int, plan: Optional[KernelPlan] = None
) -> float:
    info = ir.array_map.get(array)
    if info is None and plan is not None:
        # Folded virtual arrays take their members' extent.
        for group in plan.fold_groups:
            if group.folded_name == array:
                info = ir.array_map.get(group.members[0])
                break
    if info is None:
        return 0.0
    return float(info.elements * esize)


def _dram_read(
    loaded_bytes: float,
    fill_bytes: float,
    unique_bytes: float,
    p_intra: float,
    p_inter: float,
) -> float:
    """DRAM read bytes given total loads, one-touch fill and unique data.

    First touches of unique data always come from DRAM.  The inter-block
    halo redundancy (fill - unique) hits L2 with probability ``p_inter``;
    same-block re-touches (loaded - fill) with probability ``p_intra``.
    """
    unique = min(unique_bytes, fill_bytes)
    inter_excess = max(0.0, fill_bytes - unique)
    intra_excess = max(0.0, loaded_bytes - fill_bytes)
    return (
        unique
        + inter_excess * (1.0 - p_inter)
        + intra_excess * (1.0 - p_intra)
    )


def _live_bytes_per_block(ir, plan, geometry, stages, buffers) -> float:
    """Bytes a block must keep cached for its gmem re-touches to hit L2.

    Under streaming, consecutive sweep steps re-touch the previous
    step's planes — the reuse distance is about one plane per directly-
    read (gmem) array.  On-chip-buffered arrays never re-touch, so they
    do not contribute.
    """
    total = 0.0
    for stage in stages:
        for array in stage.instance.arrays_read():
            info = ir.array_map.get(array)
            arr_esize = sizeof(info.dtype) if info is not None else 8
            spec = buffers.get(array)
            if spec is None or not spec.plane_elements:
                continue
            if spec.shm_planes > 0 or spec.reg_planes > 0:
                continue  # buffered: loaded once, no cache reliance
            total += spec.plane_elements * arr_esize
        break  # the first stage dominates the steady-state window
    return total


def externally_visible(ir: ProgramIR, plan: KernelPlan) -> frozenset:
    """Memoized :func:`_externally_visible` — reads only the kernel set,
    so every geometry/unroll/register variant shares one computation."""
    return _ir_memoized(
        "ext_visible",
        ir,
        (plan.kernel_names,),
        lambda: frozenset(_externally_visible(ir, plan)),
    )


def intermediate_arrays(ir: ProgramIR, plan: KernelPlan) -> frozenset:
    """Memoized :func:`_intermediate_arrays` (stage-structure keyed)."""
    return _ir_memoized(
        "inter_arrays",
        ir,
        (plan.kernel_names, plan.time_tile, plan.fold_groups),
        lambda: frozenset(
            _intermediate_arrays(ir, plan, tuple(build_stages(ir, plan)))
        ),
    )


def _externally_visible(ir: ProgramIR, plan: KernelPlan) -> set:
    """Arrays whose values must leave the launch: program outputs plus
    anything read by kernels outside this plan."""
    inside = set(plan.kernel_names)
    visible = set(ir.copyout)
    for kernel in ir.kernels:
        if kernel.name in inside:
            continue
        visible.update(kernel.arrays_read())
    # Iterative programs feed the ping-pong output back as next input;
    # other in-launch temporaries are recomputed every application.
    if ir.is_iterative:
        for kernel in ir.kernels:
            try:
                written, read = pingpong_pair(ir, kernel)
            except ValueError:
                visible.update(kernel.arrays_written())
                continue
            visible.add(written)
            visible.add(read)
    return visible


def _consumed_name(ir, plan, stage, written_array: str) -> str:
    """Name the next stage reads the written value under (ping-pong)."""
    if plan.time_tile > 1:
        _written, read = pingpong_pair(ir, stage.instance)
        return read
    return written_array


def _intermediate_arrays(ir, plan, stages) -> set:
    """Arrays passed between fused stages inside this launch."""
    if plan.time_tile > 1:
        written, read = pingpong_pair(ir, stages[0].instance)
        return {written, read}
    produced: set = set()
    intermediates: set = set()
    for stage in stages:
        for array in stage.instance.arrays_read():
            if array in produced:
                intermediates.add(array)
        produced.update(stage.instance.arrays_written())
    return intermediates


def _buffered_shm_traffic(
    ir, plan, stage, spec, info, pts, blocks, footprint, esize
) -> float:
    """Shared-memory bytes for a buffered array at one stage."""
    if spec.shm_planes == 0:
        return 0.0  # pure register buffering
    window = spec.shm_planes + spec.reg_planes
    fill_fraction = spec.shm_planes / window if window else 1.0
    stores = footprint * fill_fraction * blocks
    # Reads whose stream offset falls on a shared plane are served by
    # shared memory; register-plane reads are free.
    if plan.retime and plan.uses_streaming:
        # Retimed accumulation reads each arriving plane's in-plane
        # offsets once; the stream-axis spread collapses into register
        # accumulators (associative reordering).
        shm_reads_per_point = _inplane_distinct_reads(
            ir, stage, spec.array, plan.stream_axis
        )
        rotation = 0
    elif plan.uses_streaming and spec.reg_planes > 0:
        shm_reads_per_point = _center_plane_reads(ir, plan, stage, spec.array)
        # Rotation through the shared center plane: one load + one store
        # per point (Listing 2's shift phase).
        rotation = 2 * pts
    else:
        shm_reads_per_point = info.reads_distinct
        rotation = 0
    loads = shm_reads_per_point * pts
    return (stores + (loads + rotation) * blocks) * esize


def _inplane_distinct_reads(ir, stage, array, stream_axis: int) -> int:
    """Distinct read offsets with the stream component dropped."""
    seen = set()
    for pattern in access_patterns(ir, stage.instance):
        if pattern.array != array or pattern.is_write:
            continue
        inplane = tuple(
            offset
            for axis, offset in enumerate(pattern.axis_offsets)
            if axis != stream_axis
        )
        seen.add(inplane)
    return len(seen)


def _center_plane_reads(ir, plan, stage, array) -> int:
    count = 0
    seen = set()
    for pattern in access_patterns(ir, stage.instance):
        if pattern.array != array or pattern.is_write:
            continue
        if pattern.axis_offsets in seen:
            continue
        seen.add(pattern.axis_offsets)
        stream_offset = pattern.axis_offsets[plan.stream_axis]
        if stream_offset in (None, 0):
            count += 1
    return count


_gmem_loads_per_point = gmem_loads_per_point
_distinct_read_offsets = distinct_read_offsets


def _fill_coalescing(ir, plan, geometry, stage, array, sector: int = 32) -> float:
    """Transaction inflation for a buffered tile fill.

    A warp filling a tile row of ``w`` bytes touches ``ceil(w/sector)``
    sectors (``sector`` = the device's DRAM transaction size), plus one
    extra when the row starts at a halo offset — the penalty the *mixed*
    perspective removes (Section III-B3).
    """
    x_axis = ir.ndim - 1
    row_elems = geometry.tile[x_axis]
    halo = stage.halo[x_axis]
    row_bytes = (row_elems + halo[0] + halo[1]) * 8
    sectors = math.ceil(row_bytes / sector)
    extra = 0
    if plan.perspective == PERSPECTIVE_OUTPUT and (halo[0] or halo[1]):
        extra = 2  # edge threads issue separate, uncoalesced halo loads
    return (sectors + extra) / max(1, math.ceil(row_elems * 8 / sector))


def _gmem_coalescing(ir, plan, instance, array) -> float:
    """Sector inflation for direct global reads (misaligned x offsets)."""
    offsets = _distinct_read_offsets(ir, instance, array)
    if not offsets:
        return 1.0
    x_axis = ir.ndim - 1
    misaligned = sum(
        1 for o in offsets if o[x_axis] not in (None, 0) and (o[x_axis] % 4) != 0
    )
    return 1.0 + 0.125 * (misaligned / len(offsets))


def _sync_count(plan, geometry, stages, shmem) -> float:
    if shmem <= 0:
        return 0.0
    per_step = 2.0 * len(stages)
    steps = geometry.sweep_length if plan.uses_streaming else 1
    return per_step * steps * geometry.blocks


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------


def _time(
    ir: ProgramIR,
    plan: KernelPlan,
    device: DeviceSpec,
    geometry: LaunchGeometry,
    counters: KernelCounters,
    occ: OccupancyResult,
) -> TimingBreakdown:
    occ_frac = occ.occupancy
    # Tail / starvation: too few blocks to fill the device.
    capacity = max(1, occ.blocks_per_sm * device.sms)
    concurrency = min(1.0, counters.blocks / capacity)

    sustained = device.sustained_fraction
    eff_dram = sustained * min(1.0, occ_frac / device.dram_saturation_occupancy)
    eff_tex = device.tex_sustained_fraction * min(
        1.0, occ_frac / device.tex_saturation_occupancy
    )
    # Shared memory bandwidth scales with active SM slices; it saturates
    # at lower occupancy than DRAM.
    eff_shm = sustained * min(
        1.0, occ_frac / (device.dram_saturation_occupancy / 2)
    )
    for value in (eff_dram, eff_tex, eff_shm):
        assert value >= 0

    eff_dram *= concurrency
    eff_tex *= concurrency
    eff_shm *= concurrency

    dram_s = counters.dram_bytes / (device.dram_bw_gbs * 1e9 * max(eff_dram, 1e-9))
    tex_s = counters.tex_bytes / (device.tex_bw_gbs * 1e9 * max(eff_tex, 1e-9))
    shm_s = counters.shm_bytes / (device.shm_bw_gbs * 1e9 * max(eff_shm, 1e-9))

    compute_s = counters.flops / (
        device.peak_gflops * 1e9 * sustained * max(concurrency, 1e-9)
    )

    latency_s = _latency_time(device, plan, counters, occ, concurrency)

    sync_s = (
        counters.syncs / max(1, capacity) * device.sync_cost_ns * 1e-9
        if counters.syncs
        else 0.0
    )
    launch_s = device.launch_overhead_us * 1e-6

    # Without prefetching, the streaming loop's synchronized phases
    # expose the next-plane load latency every iteration (Section
    # III-A4): the shift/load phase cannot overlap compute.
    bubble_s = 0.0
    if (
        plan.uses_streaming
        and counters.shmem_per_block > 0
        and not plan.prefetch
    ):
        bubble_s = 0.12 * max(tex_s, dram_s)

    return TimingBreakdown(
        compute_s=compute_s,
        dram_s=dram_s,
        tex_s=tex_s,
        shm_s=shm_s,
        sync_s=sync_s,
        latency_s=latency_s,
        launch_s=launch_s,
        bubble_s=bubble_s,
    )


def _latency_time(
    device: DeviceSpec,
    plan: KernelPlan,
    counters: KernelCounters,
    occ: OccupancyResult,
    concurrency: float,
) -> float:
    """Issue/dependency latency bound for low-occupancy kernels.

    Each warp's dependent instruction chain stalls for the arithmetic
    latency unless enough other warps (occupancy) or independent
    instructions (unrolling ILP, prefetching) cover it.
    """
    thread_ops = counters.flops + 0.5 * (
        counters.shm_bytes / 8.0 + counters.tex_bytes / 8.0
    )
    warp_insts = thread_ops / device.warp_size
    ilp = 1.0 + 0.4 * math.log2(max(1, plan.total_unroll()))
    if plan.prefetch:
        ilp += 0.3
    covering = max(1.0, occ.active_warps * ilp / device.latency_cover_warps)
    stall = device.arith_latency_cycles / covering
    cycles = warp_insts * max(1.0, stall)
    rate = device.sms * device.warp_schedulers * device.clock_ghz * 1e9
    return cycles / (rate * max(concurrency, 1e-9))
