"""Simulated GPU substrate: device model, occupancy, counters, timing."""

from .counters import KernelCounters, SimulationResult, TimingBreakdown
from .device import DEVICES, DeviceSpec, P100, V100
from .occupancy import (
    OccupancyResult,
    max_block_for_occupancy,
    occupancy,
    registers_per_block,
)
from .registers import compiled_registers, expression_registers, register_demand
from .simulator import PlanInfeasible, simulate

__all__ = [
    "DEVICES",
    "DeviceSpec",
    "KernelCounters",
    "OccupancyResult",
    "P100",
    "PlanInfeasible",
    "SimulationResult",
    "TimingBreakdown",
    "V100",
    "compiled_registers",
    "expression_registers",
    "max_block_for_occupancy",
    "occupancy",
    "register_demand",
    "registers_per_block",
    "simulate",
]
