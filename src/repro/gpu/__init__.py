"""Simulated GPU substrate: device model, occupancy, counters, timing."""

from .counters import KernelCounters, SimulationResult, TimingBreakdown
from .device import (
    A100,
    DEVICES,
    DeviceProfile,
    DeviceSpec,
    MI100,
    P100,
    TOY,
    V100,
    device_names,
    get_device,
    register_device,
)
from .occupancy import (
    OccupancyResult,
    max_block_for_occupancy,
    occupancy,
    registers_per_block,
)
from .registers import compiled_registers, expression_registers, register_demand
from .simulator import PlanInfeasible, simulate

__all__ = [
    "A100",
    "DEVICES",
    "DeviceProfile",
    "DeviceSpec",
    "KernelCounters",
    "MI100",
    "OccupancyResult",
    "P100",
    "PlanInfeasible",
    "SimulationResult",
    "TOY",
    "TimingBreakdown",
    "V100",
    "compiled_registers",
    "device_names",
    "expression_registers",
    "get_device",
    "max_block_for_occupancy",
    "occupancy",
    "register_device",
    "register_demand",
    "registers_per_block",
    "simulate",
]
