"""Hardware-counter and timing result types produced by the simulator.

Field names mirror the nvprof metrics the paper collects (Section IV):
FLOP counts, DRAM read/write bytes, texture-path bytes, shared-memory
bytes — plus the derived operational intensities the roofline analysis
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .occupancy import OccupancyResult


@dataclass(frozen=True)
class KernelCounters:
    """Counters for one kernel launch (whole-grid totals)."""

    flops: float
    useful_flops: float  # excluding overlapped-tiling recomputation
    dram_read_bytes: float
    dram_write_bytes: float
    tex_bytes: float
    shm_bytes: float
    spill_bytes: float
    blocks: int
    threads_per_block: int
    regs_per_thread: int  # as compiled (capped at maxrregcount)
    regs_demand: int  # pre-cap estimate; demand > compiled => spills
    shmem_per_block: int
    syncs: float  # __syncthreads() executions, whole grid

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes + self.spill_bytes

    @property
    def has_spills(self) -> bool:
        return self.regs_demand > self.regs_per_thread

    @property
    def spilled_registers(self) -> int:
        return max(0, self.regs_demand - self.regs_per_thread)

    def oi(self, level: str) -> float:
        """Operational intensity at a memory level in {dram, tex, shm}."""
        denom = {
            "dram": self.dram_bytes,
            "tex": self.tex_bytes,
            "shm": self.shm_bytes,
        }[level]
        if denom <= 0:
            return float("inf")
        return self.flops / denom


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-resource time components of one launch (seconds)."""

    compute_s: float
    dram_s: float
    tex_s: float
    shm_s: float
    sync_s: float
    latency_s: float
    launch_s: float
    #: exposed load latency in a synchronized streaming loop without
    #: prefetching (the bubble Section III-A4 eliminates)
    bubble_s: float = 0.0

    @property
    def total_s(self) -> float:
        """The kernel runs at the pace of its slowest resource; sync,
        bubble and launch overheads are additive."""
        bound = max(
            self.compute_s, self.dram_s, self.tex_s, self.shm_s, self.latency_s
        )
        return bound + self.sync_s + self.bubble_s + self.launch_s

    @property
    def bound_resource(self) -> str:
        candidates = {
            "compute": self.compute_s,
            "dram": self.dram_s,
            "tex": self.tex_s,
            "shm": self.shm_s,
            "latency": self.latency_s,
        }
        return max(candidates, key=candidates.get)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SimulationResult:
    """Everything the simulator reports about one kernel launch."""

    counters: KernelCounters
    occupancy: OccupancyResult
    timing: TimingBreakdown

    @property
    def time_s(self) -> float:
        return self.timing.total_s

    @property
    def time_ms(self) -> float:
        return self.timing.total_s * 1e3

    @property
    def tflops(self) -> float:
        """Useful (non-redundant) FLOP throughput — what the paper plots."""
        if self.timing.total_s <= 0:
            return 0.0
        return self.counters.useful_flops / self.timing.total_s / 1e12

    @property
    def raw_tflops(self) -> float:
        if self.timing.total_s <= 0:
            return 0.0
        return self.counters.flops / self.timing.total_s / 1e12
