"""Functional execution of stencil programs and kernel plans.

Two executors live here:

* :func:`execute_reference` — the semantic ground truth.  It interprets
  the program IR directly: each kernel updates its grid interior (points
  whose whole read neighbourhood is in bounds), boundaries keep their
  previous values, and iterative programs ping-pong output/input between
  applications (Jacobi convention).
* :func:`execute_plan` — interprets a :class:`KernelPlan` the way a GPU
  block would: the domain is decomposed into block tiles, each block
  loads its input tile *once* (with the halo the plan's overlapped tiling
  says it needs) and computes every fused stage purely from its local
  copy.  If the plan's halo/expansion arithmetic were wrong, tile borders
  would diverge from the reference — this is the repo's stand-in for
  running the generated CUDA.

Both are vectorized with NumPy inside tiles and perform identical
floating-point operations, so agreement is exact (bitwise) for
semantically correct plans.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codegen.plan import KernelPlan, ProgramPlan
from ..codegen.tiling import build_stages, launch_geometry, pingpong_pair
from ..dsl.ast import (
    ArrayAccess,
    BinOp,
    Call,
    Expr,
    Name,
    Num,
    UnaryOp,
)
from ..ir.analysis import (
    combined_halo,
    internal_reach,
    scalar_slices,
    statement_geometry,
)
from ..ir.folding import FoldedArray
from ..ir.stencil import ProgramIR, StencilInstance
from ..ir.types import DTYPE_NUMPY

_CALL_IMPL = {
    "sqrt": np.sqrt,
    "cbrt": np.cbrt,
    "fabs": np.abs,
    "abs": np.abs,
    "exp": np.exp,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tanh": np.tanh,
    "fmin": np.minimum,
    "fmax": np.maximum,
    "min": np.minimum,
    "max": np.maximum,
    "pow": np.power,
}


def allocate_inputs(ir: ProgramIR, seed: int = 0) -> Dict[str, np.ndarray]:
    """Deterministic random inputs for every array, plus scalar values."""
    rng = np.random.default_rng(seed)
    data: Dict[str, np.ndarray] = {}
    for info in ir.arrays:
        data[info.name] = rng.uniform(
            0.1, 1.0, size=info.shape
        ).astype(DTYPE_NUMPY[info.dtype])
    return data


def default_scalars(ir: ProgramIR, seed: int = 1) -> Dict[str, float]:
    rng = np.random.default_rng(seed)
    return {name: float(rng.uniform(0.1, 1.0)) for name, _ in ir.scalars}


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------


class _Frame:
    """Evaluation context: array views for a region plus scalar env."""

    def __init__(
        self,
        arrays: Dict[str, np.ndarray],
        scalars: Dict[str, float],
        region: Tuple[Tuple[int, int], ...],
        iterators: Tuple[str, ...],
        origins: Optional[Dict[str, Tuple[int, ...]]] = None,
    ):
        self.arrays = arrays
        self.scalars = dict(scalars)
        self.region = region
        self.iterators = iterators
        #: per-array coordinate offset (local buffers are shifted copies)
        self.origins = origins or {}
        self.locals: Dict[str, np.ndarray] = {}

    def eval(self, expr: Expr):
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Name):
            if expr.id in self.locals:
                return self.locals[expr.id]
            return self.scalars[expr.id]
        if isinstance(expr, UnaryOp):
            return -self.eval(expr.operand)
        if isinstance(expr, BinOp):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return left / right
        if isinstance(expr, Call):
            return _CALL_IMPL[expr.func](*(self.eval(a) for a in expr.args))
        assert isinstance(expr, ArrayAccess)
        return self.read(expr)

    def read(self, access: ArrayAccess) -> np.ndarray:
        array = self.arrays[access.name]
        origin = self.origins.get(access.name, (0,) * array.ndim)
        slices: List[slice] = []
        used_axes: List[int] = []
        for idx in access.indices:
            iterator = idx.single_iterator()
            if iterator is not None:
                axis = self.iterators.index(iterator)
                lo, hi = self.region[axis]
                dim = len(slices)
                start = lo + idx.const - origin[dim]
                slices.append(slice(start, start + (hi - lo)))
                used_axes.append(axis)
            elif idx.is_constant():
                slices.append(idx.const - origin[len(slices)])
                used_axes.append(-1)
            else:
                # General affine subscript: evaluate per-axis coordinates.
                return self._read_affine(access, array, origin)
        view = np.asarray(array[tuple(slices)])
        present = [a for a in used_axes if a >= 0]
        if not present:
            return view
        # Reshape so the view's axes land on the right region axes and
        # missing axes broadcast (lower-rank arrays like strx[i]).
        dim_iter = iter(view.shape)
        target_shape = [
            next(dim_iter) if axis in present else 1
            for axis in range(len(self.region))
        ]
        return view.reshape(target_shape)

    def _read_affine(self, access, array, origin):
        """Slow path: gather for skewed affine subscripts."""
        grids = np.meshgrid(
            *[
                np.arange(lo, hi)
                for lo, hi in self.region
            ],
            indexing="ij",
        )
        coord_of = dict(zip(self.iterators, grids))
        indices = []
        for dim, idx in enumerate(access.indices):
            coord = np.zeros_like(grids[0])
            for name, coeff in idx.coeffs:
                coord = coord + coeff * coord_of[name]
            coord = coord + idx.const - origin[dim]
            indices.append(coord)
        return array[tuple(indices)]


# ---------------------------------------------------------------------------
# reference executor
# ---------------------------------------------------------------------------


def interior_region(
    ir: ProgramIR, instance: StencilInstance, shape: Sequence[int]
) -> Tuple[Tuple[int, int], ...]:
    """The region a kernel updates: points with all reads in bounds."""
    halo = combined_halo(ir, instance)
    return tuple(
        (lo, extent - hi) for (lo, hi), extent in zip(halo, shape)
    )


def run_kernel(
    ir: ProgramIR,
    instance: StencilInstance,
    arrays: Dict[str, np.ndarray],
    scalars: Dict[str, float],
    region: Optional[Tuple[Tuple[int, int], ...]] = None,
    origins: Optional[Dict[str, Tuple[int, ...]]] = None,
    folded: Sequence[FoldedArray] = (),
) -> None:
    """Execute one kernel instance in place.

    Statements execute sequentially over the grid: each grid statement's
    writes are visible to later statements (fused-DAG semantics).  Each
    grid statement runs over its own region — its maximal valid interior
    when ``region`` is None, else the caller's base region expanded by
    the statement's internal recompute expansion and clipped to its
    interior.
    """
    shape = ir.domain_shape()
    _materialize_folds(arrays, folded)
    geometry = statement_geometry(ir, instance)
    for g, (local_slice, halo, expansion) in geometry.items():
        interior = tuple(
            (halo[axis][0], shape[axis] - halo[axis][1])
            for axis in range(ir.ndim)
        )
        if region is None:
            stmt_region = interior
        else:
            stmt_region = tuple(
                (
                    max(region[axis][0] - expansion[axis][0], interior[axis][0]),
                    min(region[axis][1] + expansion[axis][1], interior[axis][1]),
                )
                for axis in range(ir.ndim)
            )
        if any(hi <= lo for lo, hi in stmt_region):
            continue
        frame = _Frame(arrays, scalars, stmt_region, ir.iterators, origins)
        for local_index in local_slice:
            local = instance.statements[local_index]
            value = frame.eval(local.rhs)
            if local.op == "+=":
                frame.locals[local.target] = frame.locals[local.target] + value
            else:
                frame.locals[local.target] = (
                    value
                    if isinstance(value, np.ndarray)
                    else np.asarray(value, dtype=np.float64)
                )
        stmt = instance.statements[g]
        value = frame.eval(stmt.rhs)
        assert isinstance(stmt.lhs, ArrayAccess)
        target = arrays[stmt.target]
        origin = (
            origins.get(stmt.target, (0,) * target.ndim)
            if origins
            else (0,) * target.ndim
        )
        slices = []
        for dim, idx in enumerate(stmt.lhs.indices):
            iterator = idx.single_iterator()
            axis = ir.axis_of(iterator)
            lo, hi = stmt_region[axis]
            start = lo + idx.const - origin[dim]
            slices.append(slice(start, start + (hi - lo)))
        region_shape = tuple(hi - lo for lo, hi in stmt_region)
        if stmt.op == "+=":
            target[tuple(slices)] = target[tuple(slices)] + np.broadcast_to(
                value, region_shape
            )
        else:
            target[tuple(slices)] = np.broadcast_to(value, region_shape)


def _materialize_folds(
    arrays: Dict[str, np.ndarray], folded: Sequence[FoldedArray]
) -> None:
    for fold in folded:
        if fold.name in arrays:
            continue
        value = arrays[fold.members[0]].copy()
        for member in fold.members[1:]:
            if fold.op == "*":
                value = value * arrays[member]
            elif fold.op == "-":
                value = value - arrays[member]
            else:
                value = value + arrays[member]
        arrays[fold.name] = value


def program_pingpong(ir: ProgramIR) -> Tuple[str, str]:
    """(written, read) arrays swapped between program-level iterations.

    The written side is the program's ``copyout`` output (or the last
    array written); the read side is the first same-shaped array that is
    read but never written during one sweep of the kernel list.
    """
    written_all = [
        array for kernel in ir.kernels for array in kernel.arrays_written()
    ]
    written = written_all[-1]
    for candidate in written_all:
        if candidate in ir.copyout:
            written = candidate
            break
    target_shape = ir.array_map[written].shape
    for kernel in ir.kernels:
        for array in kernel.arrays_read():
            info = ir.array_map.get(array)
            if (
                info is not None
                and info.shape == target_shape
                and array not in written_all
            ):
                return written, array
    raise ValueError("iterative program has no ping-pong pair")


def execute_reference(
    ir: ProgramIR,
    inputs: Dict[str, np.ndarray],
    scalars: Optional[Dict[str, float]] = None,
    time_iterations: Optional[int] = None,
) -> Dict[str, np.ndarray]:
    """Ground-truth execution of the whole program."""
    arrays = {name: value.copy() for name, value in inputs.items()}
    scalars = scalars if scalars is not None else default_scalars(ir)
    steps = time_iterations if time_iterations is not None else ir.time_iterations
    carry = ir.is_iterative or steps > 1
    written, read = program_pingpong(ir) if carry else (None, None)
    for step in range(steps):
        if carry:
            # Boundary-carry semantics: each application starts from the
            # input everywhere, then overwrites the interior.  This makes
            # results independent of how a schedule splits the time loop.
            arrays[written][...] = arrays[read]
        for instance in ir.kernels:
            run_kernel(ir, instance, arrays, scalars)
        if carry and step < steps - 1:
            # Jacobi ping-pong: the freshly written values become the
            # next application's input.
            arrays[written], arrays[read] = arrays[read], arrays[written]
    return arrays


# ---------------------------------------------------------------------------
# plan executor (block-tiled, local-buffer execution)
# ---------------------------------------------------------------------------


def execute_plan(
    ir: ProgramIR,
    plan: KernelPlan,
    inputs: Dict[str, np.ndarray],
    scalars: Optional[Dict[str, float]] = None,
) -> Dict[str, np.ndarray]:
    """Execute one launch of ``plan`` block-by-block from local copies.

    Each block copies its input tiles (output tile + the overlap the
    plan's stage expansion dictates + the read halo) and computes every
    fused stage exclusively from those copies, exactly as the generated
    CUDA would from shared memory/registers.  The result must equal
    ``time_tile`` (or the fused DAG's) applications of the reference.
    """
    arrays = {name: value.copy() for name, value in inputs.items()}
    scalars = scalars if scalars is not None else default_scalars(ir)
    stages = build_stages(ir, plan)
    shape = ir.domain_shape()
    ndim = len(shape)

    # Output buffers: blocks write only their own output tile, so block
    # order cannot matter; writes land in fresh copies.
    final_outputs = {
        name: arrays[name].copy()
        for stage in stages
        if stage.is_last
        for name in stage.instance.arrays_written()
    }

    tile = _output_tile(ir, plan)
    counts = [-(-shape[axis] // tile[axis]) for axis in range(ndim)]

    # Total lookback a block needs: max over stages of the stage's
    # overlapped-tiling expansion plus the kernel's internal reach
    # (halo + intra-kernel recompute expansion).
    lookback = [[0, 0] for _ in range(ndim)]
    for stage in stages:
        reach = internal_reach(ir, stage.instance)
        for axis in range(ndim):
            lookback[axis][0] = max(
                lookback[axis][0], stage.expand[axis][0] + reach[axis][0]
            )
            lookback[axis][1] = max(
                lookback[axis][1], stage.expand[axis][1] + reach[axis][1]
            )
    lookback_t = tuple((lo, hi) for lo, hi in lookback)

    for block_index in itertools.product(*[range(c) for c in counts]):
        _execute_block(
            ir,
            plan,
            stages,
            arrays,
            scalars,
            final_outputs,
            shape,
            tile,
            block_index,
            lookback_t,
        )

    for name, buffer in final_outputs.items():
        arrays[name] = buffer
    return arrays


def _output_tile(ir: ProgramIR, plan: KernelPlan) -> Tuple[int, ...]:
    geometry = launch_geometry(ir, plan)
    return geometry.tile


def _execute_block(
    ir,
    plan,
    stages,
    arrays,
    scalars,
    final_outputs,
    shape,
    tile,
    block_index,
    lookback,
):
    ndim = len(shape)
    out_lo = [block_index[a] * tile[a] for a in range(ndim)]
    out_hi = [min(shape[a], out_lo[a] + tile[a]) for a in range(ndim)]
    if any(out_hi[a] <= out_lo[a] for a in range(ndim)):
        return

    # Local buffer extent: output tile + total lookback, clipped to the
    # array bounds.
    buf_lo = [max(0, out_lo[a] - lookback[a][0]) for a in range(ndim)]
    buf_hi = [
        min(shape[a], out_hi[a] + lookback[a][1]) for a in range(ndim)
    ]

    # Copy every array the launch touches into a local buffer.
    local: Dict[str, np.ndarray] = {}
    origins: Dict[str, Tuple[int, ...]] = {}
    touched = set()
    for stage in stages:
        touched.update(stage.instance.arrays_read())
        touched.update(stage.instance.arrays_written())
    for fold_group in plan.fold_groups:
        touched.update(fold_group.members)
    for name in touched:
        if name not in arrays:
            continue
        info = ir.array_map[name]
        if info.ndim == ndim:
            slices = tuple(slice(buf_lo[a], buf_hi[a]) for a in range(ndim))
            local[name] = arrays[name][slices].copy()
            origins[name] = tuple(buf_lo)
        else:
            # Lower-rank arrays are small; copy whole.
            local[name] = arrays[name].copy()
            origins[name] = (0,) * info.ndim

    folded_defs = []
    if plan.fold_groups:
        from ..ir.folding import FoldedArray

        for group in plan.fold_groups:
            folded_defs.append(
                FoldedArray(group.folded_name, group.members, group.op)
            )
        _materialize_folds(local, folded_defs)
        for fold in folded_defs:
            origins[fold.name] = origins[fold.members[0]]

    # Iterative programs use boundary-carry + ping-pong even when this
    # launch covers a single application (time_tile == 1), so that any
    # schedule split agrees with the reference bit-for-bit.
    is_time_tiled = plan.time_tile > 1 or ir.is_iterative
    if is_time_tiled:
        written, read = pingpong_pair(ir, stages[0].instance)

    for stage in stages:
        if is_time_tiled:
            # Boundary-carry semantics (matches execute_reference).
            local[written][...] = local[read]
        # Base region this stage computes: output tile + its remaining
        # expansion, clipped to array bounds.  run_kernel applies each
        # statement's internal expansion and interior clipping itself.
        region = []
        for a in range(ndim):
            lo = max(0, out_lo[a] - stage.expand[a][0])
            hi = min(shape[a], out_hi[a] + stage.expand[a][1])
            region.append((lo, max(lo, hi)))
        run_kernel(
            ir,
            stage.instance,
            local,
            scalars,
            region=tuple(region),
            origins=origins,
            folded=(),
        )
        if is_time_tiled and not stage.is_last:
            # Local ping-pong: the next fused application reads what this
            # one wrote.  Origins travel with the buffers.
            local[written], local[read] = local[read], local[written]
            origins[written], origins[read] = origins[read], origins[written]

    # Commit final outputs over the output tile only.
    for stage in stages:
        if not stage.is_last:
            continue
        for name in stage.instance.arrays_written():
            info = ir.array_map[name]
            if info.ndim != ndim:
                continue
            global_slices = tuple(
                slice(out_lo[a], out_hi[a]) for a in range(ndim)
            )
            local_slices = tuple(
                slice(out_lo[a] - origins[name][a], out_hi[a] - origins[name][a])
                for a in range(ndim)
            )
            final_outputs[name][global_slices] = local[name][local_slices]


def execute_program_plan(
    ir: ProgramIR,
    schedule: ProgramPlan,
    inputs: Dict[str, np.ndarray],
    scalars: Optional[Dict[str, float]] = None,
) -> Dict[str, np.ndarray]:
    """Execute a full schedule (sequence of launches with repeat counts).

    Iterative schedules ping-pong the program's swap pair between
    launches so that each launch consumes the previous launch's output.
    """
    arrays = {name: value.copy() for name, value in inputs.items()}
    scalars = scalars if scalars is not None else default_scalars(ir)
    iterative = ir.is_iterative
    if iterative:
        written, read = program_pingpong(ir)
    first = True
    for plan, count in zip(schedule.plans, schedule.counts):
        for _ in range(count):
            if iterative and not first:
                arrays[written], arrays[read] = arrays[read], arrays[written]
            result = execute_plan(ir, plan, arrays, scalars)
            arrays.update(result)
            first = False
    return arrays
