"""Vectorized plan-family pricing: the analytical model over a lane axis.

The scalar :func:`repro.gpu.simulator.simulate` prices one plan at a
time.  Its arithmetic splits into a *register-independent prefix*
(geometry, stages, buffer layouts, shared memory, register demand) and a
*cheap suffix* (occupancy, spill traffic, counters, timing).  Both
halves branch only on the plan's **structure** — which kernels are
fused, streaming mode and axis, retiming, placements, perspective
(:func:`repro.codegen.tiling.plan_structural_key`) — while the grid
knobs the tuners sweep (block tile, unroll factors, ``unroll_blocked``,
``max_registers``) only change the *numbers* flowing through a fixed
expression DAG.

This module exploits that: :class:`FamilyStructure` captures every
branch decision and structural constant once per (IR, structural key),
and :func:`price_family` then evaluates the whole model as NumPy array
operations over an ``(N_candidates,)`` lane axis — occupancy, spill
traffic and timing in one shot.

Bitwise parity with the scalar path is a hard contract (the evaluation
engine's winners must be byte-identical), so the implementation mirrors
the scalar code's *exact* operation order:

* integer quantities (tiles, footprints, plane elements, register
  demand, shared bytes) are computed in ``int64`` — exact, and well
  below overflow for realistic grids;
* float accumulators (flops, tex/dram/shm bytes) are built as ordered
  term lists and summed sequentially in the scalar emission order, so
  every f8 rounding step matches;
* per-lane branches that the scalar code takes (buffer-winner
  selection, register-vs-shared served reads, sync/bubble gating) are
  evaluated with masks; branches that depend only on structure are
  resolved once at :class:`FamilyStructure` build time;
* lanes that fail the occupancy screen fall back to the scalar
  :func:`repro.gpu.occupancy.occupancy` call to reproduce the exact
  exception message, context and RL2xx classification.

Feasible lanes yield :class:`~repro.gpu.counters.SimulationResult`
objects equal (``==``, field for field) to what ``simulate`` returns.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codegen.plan import (
    GMEM,
    KernelPlan,
    PERSPECTIVE_INPUT,
    PERSPECTIVE_OUTPUT,
    STREAM_CONCURRENT,
)
from ..codegen.tiling import (
    Stage,
    _array_indexes_axis,
    build_stages,
    distinct_read_offsets,
    is_star_along,
    launch_geometry,
    pingpong_pair,
    plan_structural_key,
    stream_window,
)
from ..ir.analysis import access_summary, read_halos
from ..ir.stencil import ProgramIR, StencilInstance
from ..ir.types import sizeof
from ..obs import counter as _obs_counter, metrics_enabled as _metrics_enabled
from ..obs import span as _span
from ..resilience.errors import UsageError
from .counters import KernelCounters, SimulationResult, TimingBreakdown
from .device import DeviceSpec, P100
from .occupancy import OccupancyResult, occupancy as _scalar_occupancy
from .registers import BASE_REGISTERS, expression_registers
from .simulator import (
    _consumed_name,
    externally_visible,
    intermediate_arrays,
)

__all__ = [
    "FamilyPricing",
    "FamilyStructure",
    "PricedLane",
    "family_structure",
    "price_family",
    "priced_lane_count",
    "reset_priced_lanes",
]

_I8 = np.int64
_F8 = np.float64

#: Grid knobs :func:`price_family` may sweep without changing the
#: family's structure (everything else is part of the structural key).
GRID_AXES = ("block", "unroll", "unroll_blocked", "max_registers")

#: Lanes priced through the vectorized backend since start / last reset
#: (the vector-path analogue of ``simulator._SIMULATE_CALLS``).
_PRICED_LANES = 0


def priced_lane_count() -> int:
    """Total lanes priced by :func:`price_family` since start / reset."""
    return _PRICED_LANES


def reset_priced_lanes() -> int:
    """Zero the lane counter, returning the previous value."""
    global _PRICED_LANES
    previous = _PRICED_LANES
    _PRICED_LANES = 0
    return previous


@dataclass
class PricedLane:
    """One candidate's price, in scalar-path terms.

    Either ``result`` is a :class:`SimulationResult` equal to what
    ``simulate`` would return, or the occupancy screen rejected the lane
    and ``occ_message`` / ``occ_context`` / ``occ_code`` carry exactly
    what :func:`repro.gpu.simulator.plan_occupancy` would raise and how
    the lint layer classifies it.  Holds only picklable primitives so
    process-pool workers can ship lanes back to the parent.
    """

    demand: int
    result: Optional[SimulationResult]
    occ_message: Optional[str] = None
    occ_context: Dict[str, Any] = field(default_factory=dict)
    occ_code: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.result is not None


@dataclass(frozen=True)
class FamilyPricing:
    """Result of :func:`price_family`: per-lane prices plus a table."""

    plans: Tuple[KernelPlan, ...]
    lanes: Tuple[PricedLane, ...]
    table: np.ndarray  # structured array, one row per lane

    def __len__(self) -> int:
        return len(self.lanes)

    def best_index(self) -> Optional[int]:
        """Lane index of the fastest feasible candidate (None if all
        lanes were rejected)."""
        best = None
        best_t = math.inf
        for i, lane in enumerate(self.lanes):
            if lane.result is not None and lane.result.time_s < best_t:
                best, best_t = i, lane.result.time_s
        return best


_TABLE_DTYPE = np.dtype(
    [
        ("feasible", np.bool_),
        ("reg_demand", _I8),
        ("regs_per_thread", _I8),
        ("blocks_per_sm", _I8),
        ("occupancy", _F8),
        ("flops", _F8),
        ("dram_bytes", _F8),
        ("tex_bytes", _F8),
        ("shm_bytes", _F8),
        ("spill_bytes", _F8),
        ("time_s", _F8),
        ("tflops", _F8),
        ("rejection", "U8"),
    ]
)


# ---------------------------------------------------------------------------
# structural capture
# ---------------------------------------------------------------------------


@dataclass
class _StageInfo:
    """Structural constants of one stage's counter-model contribution."""

    stage: Stage
    halos: Dict[str, tuple]
    flops_pp: int
    summary: Dict[str, Any]  # the memoized access summary (shared object)
    reads: List[dict]  # ordered read-side term descriptors
    stores: List[dict]  # ordered store-side term descriptors


class FamilyStructure:
    """All structural constants of one plan family's pricing model.

    Built once per (IR, :func:`plan_structural_key`) and cached by
    :func:`family_structure`; :meth:`demand` and :meth:`price` then run
    the whole model over lane arrays.
    """

    def __init__(self, ir: ProgramIR, proto: KernelPlan):
        self.ir = ir
        self.key = plan_structural_key(proto)
        self.ndim = ir.ndim
        self.domain = ir.domain_shape()
        self.stages: Tuple[Stage, ...] = tuple(build_stages(ir, proto))
        self.streaming = proto.uses_streaming
        self.stream_axis = proto.stream_axis
        self.retime = proto.retime
        self.prefetch = proto.prefetch
        self.perspective = proto.perspective
        self.domain_points = 1
        for extent in self.domain:
            self.domain_points *= extent
        geo = launch_geometry(ir, proto)
        self.sweep_length = geo.sweep_length  # structural: chunks fixed
        self.intermediates = intermediate_arrays(ir, proto)
        self.externally_visible = externally_visible(ir, proto)
        self._build_buffer_candidates(proto)
        self._build_inter_specs(proto)
        self._build_stage_infos(proto)
        self._build_register_model(proto)

    # -- buffer winner candidates (mirrors tiling._buffer_requirements) --

    def _build_buffer_candidates(self, proto: KernelPlan) -> None:
        ir = self.ir
        self.buffer_arrays: List[str] = []  # first-encounter order
        self.candidates: Dict[str, List[dict]] = {}
        self.buffer_sizeof: Dict[str, int] = {}
        self.buffer_storage: Dict[str, str] = {}
        self.buffered: Dict[str, bool] = {}
        for stage in self.stages:
            halos = read_halos(ir, stage.instance)
            written_here = set(stage.instance.arrays_written())
            for array, halo in halos.items():
                if array in written_here:
                    continue
                storage = proto.placement_of(array)
                dtype = (
                    ir.array_map[array].dtype
                    if array in ir.array_map
                    else "double"
                )
                cand: dict = {
                    "stage": stage.index,
                    "array": array,
                    "sizeof": sizeof(dtype),
                }
                if storage == GMEM or storage == "constant":
                    cand.update(shm="zero", shm_const=0, reg=0)
                    is_buffered = False
                elif self.streaming:
                    lo, hi = halo[self.stream_axis]
                    window = lo + hi + 1
                    star = is_star_along(
                        ir, stage.instance, array, self.stream_axis
                    )
                    if self.retime:
                        cand.update(shm="const", shm_const=1, reg=0)
                    elif storage == "register":
                        cand.update(shm="zero", shm_const=0, reg=window)
                    elif star:
                        cand.update(shm="const", shm_const=1, reg=window - 1)
                    else:
                        cand.update(shm="const", shm_const=window, reg=0)
                    is_buffered = True
                else:
                    if storage == "register":
                        cand.update(shm="zero", shm_const=0, reg=1)
                    else:
                        cand.update(shm="tile_planes", shm_const=0, reg=0)
                    is_buffered = True
                if array not in self.candidates:
                    self.buffer_arrays.append(array)
                    self.candidates[array] = []
                    self.buffer_sizeof[array] = cand["sizeof"]
                    # storage / buffered-ness is uniform across a given
                    # array's candidates (placement and retime are
                    # plan-wide), hence structural.
                    self.buffer_storage[array] = storage
                    self.buffered[array] = is_buffered
                self.candidates[array].append(cand)

    # -- inter-stage specs (mirrors tiling._intermediate_specs) ----------

    def _build_inter_specs(self, proto: KernelPlan) -> None:
        ir = self.ir
        self.inter_specs: List[dict] = []
        if len(self.stages) > 1:
            for stage, consumer in zip(self.stages[:-1], self.stages[1:]):
                produced = set(stage.instance.arrays_written())
                halos = read_halos(ir, consumer.instance)
                if proto.time_tile > 1:
                    _written, read = pingpong_pair(ir, stage.instance)
                    produced = {read} if read in halos else set()
                for array in produced:
                    if array not in halos:
                        continue
                    halo = halos[array]
                    dtype = (
                        ir.array_map[array].dtype
                        if array in ir.array_map
                        else "double"
                    )
                    distinct, center = _consumer_read_counts(
                        ir, consumer.instance, array, proto
                    )
                    spec: dict = {
                        "array": array,
                        "producer": stage.index,
                        "consumer": consumer.index,
                        "halo": halo,
                        "sizeof": sizeof(dtype),
                        "center": center,
                        "total": distinct,
                    }
                    if self.streaming:
                        lo, hi = halo[self.stream_axis]
                        window = lo + hi + 1
                        if self.retime:
                            spec.update(shm="const", shm_const=1, reg=0)
                        elif is_star_along(
                            ir, consumer.instance, array, self.stream_axis
                        ):
                            spec.update(
                                shm="const", shm_const=1, reg=window - 1
                            )
                        else:
                            spec.update(
                                shm="const", shm_const=window, reg=0
                            )
                    else:
                        if self.retime:
                            spec.update(shm="zero", shm_const=0, reg=0)
                        else:
                            spec.update(shm="depth0", shm_const=0, reg=0)
                    self.inter_specs.append(spec)
        self.inter_by_consumer: Dict[Tuple[int, str], dict] = {
            (spec["producer"] + 1, spec["array"]): spec
            for spec in self.inter_specs
        }
        self.inter_reg_planes = sum(spec["reg"] for spec in self.inter_specs)

    # -- per-stage read/store term descriptors (mirrors simulator._count)

    def _build_stage_infos(self, proto: KernelPlan) -> None:
        ir = self.ir
        self.stage_infos: List[_StageInfo] = []
        for stage in self.stages:
            instance = stage.instance
            summary = access_summary(ir, instance)
            halos = read_halos(ir, instance)
            written_here = set(instance.arrays_written())
            reads: List[dict] = []
            # Iterating the memoized summary dict object itself keeps
            # the term order identical to the scalar loop's.
            for array, info in summary.items():
                if info.reads_total == 0:
                    continue
                arr_esize = (
                    sizeof(ir.array_map[array].dtype)
                    if array in ir.array_map
                    else 8
                )
                item: dict = {"array": array, "esize": arr_esize}
                if array in written_here:
                    item.update(kind="written_here", reads=info.reads_distinct)
                elif stage.index > 0 and array in self.intermediates:
                    inter = self.inter_by_consumer.get((stage.index, array))
                    if inter is None:
                        continue  # no term at all
                    served = (
                        inter["center"]
                        if (inter["reg"] > 0 or self.retime)
                        else inter["total"]
                    )
                    item.update(kind="inter", served=served)
                elif self.buffered.get(array, False):
                    item.update(
                        kind="buffered",
                        unique=_unique_bytes_const(ir, array, arr_esize, proto),
                        fill_extra=(
                            2
                            if self.perspective == PERSPECTIVE_OUTPUT
                            and (
                                stage.halo[self.ndim - 1][0]
                                or stage.halo[self.ndim - 1][1]
                            )
                            else 0
                        ),
                        halo_x=stage.halo[self.ndim - 1],
                        reads_distinct=info.reads_distinct,
                        inplane=(
                            _inplane_distinct_reads_const(
                                ir, stage, array, self.stream_axis
                            )
                            if self.streaming
                            else 0
                        ),
                        center=(
                            _center_plane_reads_const(
                                ir, proto, stage, array
                            )
                            if self.streaming
                            else 0
                        ),
                    )
                else:
                    item.update(
                        kind="gmem",
                        unique=_unique_bytes_const(ir, array, arr_esize, proto),
                        gcoal=_gmem_coalescing_const(ir, stage.instance, array),
                        instance=stage.instance,
                    )
                reads.append(item)
            stores: List[dict] = []
            for array in instance.arrays_written():
                arr_esize = (
                    sizeof(ir.array_map[array].dtype)
                    if array in ir.array_map
                    else 8
                )
                writes = summary[array].writes if array in summary else 1
                entry = {"array": array, "esize": arr_esize, "writes": writes}
                if not stage.is_last and array in self.intermediates:
                    inter = self.inter_by_consumer.get(
                        (stage.index + 1, _consumed_name(ir, proto, stage, array))
                    )
                    if inter is None or _inter_shm_positive(inter):
                        entry["kind"] = "shm"
                    else:
                        continue  # buffered in registers: no traffic term
                elif array not in self.externally_visible:
                    entry["kind"] = "shm"
                else:
                    entry["kind"] = "dram"
                stores.append(entry)
            self.stage_infos.append(
                _StageInfo(
                    stage=stage,
                    halos=halos,
                    flops_pp=stage.flops_per_point,
                    summary=summary,
                    reads=reads,
                    stores=stores,
                )
            )

    # -- register-model structural constants (mirrors registers.py) ------

    def _build_register_model(self, proto: KernelPlan) -> None:
        ir = self.ir
        self.expr_regs = max(
            expression_registers(s.instance) for s in self.stages
        )
        if self.retime and self.streaming:
            accumulators = 0
            for stage in self.stages:
                window = 1
                for array in stage.instance.arrays_read():
                    lo, hi = stream_window(
                        ir, stage.instance, array, self.stream_axis
                    )
                    window = max(window, lo + hi + 1)
                accumulators += len(stage.instance.arrays_written()) * window
            self.accumulators = accumulators
        else:
            outputs: set = set()
            for stage in self.stages:
                outputs.update(stage.instance.arrays_written())
            self.accumulators = len(outputs)
        # Prefetch staging: arrays fetched from global.  GMEM-placed
        # arrays always buffer (0, 0) planes, so the scalar condition
        # ``storage != GMEM or reg_planes > 0`` reduces to the storage
        # test — structural.
        fetched = sum(
            1
            for array in self.buffer_arrays
            if self.buffer_storage[array] != GMEM
        )
        self.prefetch_regs = max(fetched, 1) if self.prefetch else 0
        # Blocked-unroll live loads: the per-stage gmem (unbuffered)
        # read sets are structural; the load counts per lane are not.
        self.gmem_read_sets: List[List[Tuple[StencilInstance, str]]] = []
        for stage in self.stages:
            entries: List[Tuple[StencilInstance, str]] = []
            for array in stage.instance.arrays_read():
                if not self.buffered.get(array, False) and array in self.candidates:
                    entries.append((stage.instance, array))
                elif array not in self.candidates:
                    entries.append((stage.instance, array))
            self.gmem_read_sets.append(entries)

    # ------------------------------------------------------------------
    # lane-array computation
    # ------------------------------------------------------------------

    def _base(self, plans: Sequence[KernelPlan]) -> dict:
        """Per-lane geometry scalars.

        Replays ``tiling._launch_geometry`` over the lane axis: the
        domain, tiled-axis set, streaming sweep and perspective halo are
        structural constants, so only the block/unroll tuples need
        gathering per lane — everything downstream is exact int64 array
        arithmetic (products and ``-(-a // b)`` ceil-division match the
        scalar path bit for bit).
        """
        n = len(plans)
        ndim = self.ndim
        proto = plans[0]
        tiled = (
            tuple(a for a in range(ndim) if a != self.stream_axis)
            if self.streaming
            else tuple(range(ndim))
        )
        # -- gather the varying grid fields (the only python-level pass)
        unroll = np.ones((ndim, n), _I8)
        for axis in range(ndim):
            unroll[axis] = [
                p.unroll[axis] if axis < len(p.unroll) else 1 for p in plans
            ]
        bt = np.ones((len(tiled), n), _I8)  # threads per tiled position
        for pos in range(len(tiled)):
            bt[pos] = [
                p.block[pos] if pos < len(p.block) else 1 for p in plans
            ]
        # exact int products of the full tuples (may exceed the tiled
        # axis count; extra entries still count, as in the scalar code)
        tunroll = np.asarray(
            [math.prod(p.unroll) for p in plans], dtype=_I8
        )
        ublocked = np.asarray([p.unroll_blocked for p in plans], dtype=bool)
        maxreg = np.asarray([p.max_registers for p in plans], dtype=_I8)
        # -- tile extents and block decomposition
        tile = np.empty((ndim, n), _I8)
        blocks = np.ones(n, _I8)
        chunks = (
            proto.concurrent_chunks
            if proto.streaming == STREAM_CONCURRENT
            else 1
        )
        for pos, axis in enumerate(tiled):
            tile[axis] = bt[pos] * unroll[axis]
            blocks = blocks * (-(-self.domain[axis] // tile[axis]))
        if self.streaming:
            tile[self.stream_axis] = self.sweep_length
            blocks = blocks * chunks
        # -- threads per block (tiling._threads_per_block)
        if self.perspective == PERSPECTIVE_OUTPUT:
            threads = np.asarray(
                [math.prod(p.block) for p in plans], dtype=_I8
            )
        else:
            halo = self.stages[0].halo
            innermost = tiled[-1] if tiled else ndim - 1
            threads = np.ones(n, _I8)
            for pos, axis in enumerate(tiled):
                lo, hi = halo[axis]
                if self.perspective == PERSPECTIVE_INPUT:
                    threads = threads * (bt[pos] + (lo + hi))
                else:  # mixed: extend only the innermost axis
                    threads = threads * (
                        bt[pos] + ((lo + hi) if axis == innermost else 0)
                    )
        ilp = np.empty(n, _F8)
        for i in range(n):
            # math.log2 per lane: identical libm path to the scalar code
            # (np.log2 could round differently on exotic platforms).
            value = 1.0 + 0.4 * math.log2(max(1, int(tunroll[i])))
            if self.prefetch:
                value += 0.3
            ilp[i] = value
        return {
            "n": n,
            "tile": tile,
            "unroll": unroll,
            "blocks": blocks,
            "threads": threads,
            "tunroll": tunroll,
            "ublocked": ublocked,
            "maxreg": maxreg,
            "ilp": ilp,
            "pts": {},
            "foot": {},
            "plane": {},
            "tplanes": {},
            "lpp": {},
        }

    def _pts(self, base: dict, sidx: int) -> np.ndarray:
        cached = base["pts"].get(sidx)
        if cached is None:
            stage = self.stages[sidx]
            total = np.ones(base["n"], _I8)
            for axis in range(self.ndim):
                lo, hi = stage.expand[axis]
                total = total * (base["tile"][axis] + (lo + hi))
            base["pts"][sidx] = cached = total
        return cached

    def _footprint(self, base: dict, sidx: int, array: str) -> np.ndarray:
        key = (sidx, array)
        cached = base["foot"].get(key)
        if cached is None:
            info = self.stage_infos[sidx]
            halo = info.halos.get(array)
            if halo is None:
                cached = np.zeros(base["n"], _I8)
            else:
                arr_info = self.ir.array_map.get(array)
                total = np.ones(base["n"], _I8)
                for axis in range(self.ndim):
                    exp_lo, exp_hi = info.stage.expand[axis]
                    h_lo, h_hi = halo[axis]
                    if arr_info is not None and arr_info.ndim < self.ndim:
                        if not _array_indexes_axis(
                            self.ir, info.stage.instance, array, axis
                        ):
                            continue
                    span = base["tile"][axis] + (exp_lo + exp_hi + h_lo + h_hi)
                    total = total * np.minimum(
                        span, self.domain[axis] + (h_lo + h_hi)
                    )
                cached = total
            base["foot"][key] = cached
        return cached

    def _plane_elems(self, base: dict, sidx: int, array: str) -> np.ndarray:
        key = (sidx, array)
        cached = base["plane"].get(key)
        if cached is None:
            info = self.stage_infos[sidx]
            halo = info.halos[array]
            depth_axis = self.stream_axis if self.streaming else 0
            total = np.ones(base["n"], _I8)
            for axis in range(self.ndim):
                if axis == depth_axis:
                    continue
                exp_lo, exp_hi = info.stage.expand[axis]
                h_lo, h_hi = halo[axis]
                total = total * (
                    base["tile"][axis] + (exp_lo + exp_hi + h_lo + h_hi)
                )
            base["plane"][key] = cached = total
        return cached

    def _tile_planes(self, base: dict, sidx: int, array: str) -> np.ndarray:
        key = (sidx, array)
        cached = base["tplanes"].get(key)
        if cached is None:
            info = self.stage_infos[sidx]
            halo = info.halos[array]
            axis = self.stream_axis if self.streaming else 0
            exp_lo, exp_hi = info.stage.expand[axis]
            h_lo, h_hi = halo[axis]
            cached = base["tile"][axis] + (exp_lo + exp_hi + h_lo + h_hi)
            base["tplanes"][key] = cached
        return cached

    def _gmem_lpp(
        self, base: dict, instance: StencilInstance, array: str
    ) -> np.ndarray:
        """Vectorized :func:`tiling.gmem_loads_per_point`."""
        key = (id(instance), array)
        cached = base["lpp"].get(key)
        if cached is None:
            offsets = distinct_read_offsets(self.ir, instance, array)
            n = base["n"]
            if not offsets:
                cached = np.zeros(n, _F8)
            else:
                loads = float(len(offsets))
                factor_product = np.ones(n, _F8)
                for axis in range(self.ndim):
                    axis_offsets = sorted(
                        {o[axis] for o in offsets if o[axis] is not None}
                    )
                    if len(axis_offsets) <= 1:
                        continue
                    span = axis_offsets[-1] - axis_offsets[0] + 1
                    count = len(axis_offsets)
                    factor = base["unroll"][axis]
                    # factor == 1 lanes multiply by exactly 1.0 (merged
                    # == count), matching the scalar code's skip.
                    merged = np.minimum(factor * count, span + (factor - 1))
                    factor_product = factor_product * (
                        merged / (factor * count)
                    )
                blocked = loads * np.maximum(factor_product, 0.55)
                cached = np.where(base["ublocked"], blocked, loads)
            base["lpp"][key] = cached
        return cached

    def _winners(self, base: dict) -> Dict[str, dict]:
        """Per-lane buffer-winner selection (strict-greater, first wins)."""
        winners: Dict[str, dict] = {}
        for array in self.buffer_arrays:
            size = self.buffer_sizeof[array]
            win: Optional[dict] = None
            for cand in self.candidates[array]:
                plane = self._plane_elems(base, cand["stage"], array)
                if cand["shm"] == "const":
                    shm = np.full(base["n"], cand["shm_const"], _I8)
                elif cand["shm"] == "tile_planes":
                    shm = self._tile_planes(base, cand["stage"], array)
                else:
                    shm = np.zeros(base["n"], _I8)
                reg = np.full(base["n"], cand["reg"], _I8)
                spec_bytes = shm * plane * size + reg
                if win is None:
                    win = {
                        "shm": shm,
                        "reg": reg,
                        "plane": plane,
                        "bytes": spec_bytes,
                    }
                else:
                    better = spec_bytes > win["bytes"]
                    win = {
                        "shm": np.where(better, shm, win["shm"]),
                        "reg": np.where(better, reg, win["reg"]),
                        "plane": np.where(better, plane, win["plane"]),
                        "bytes": np.where(better, spec_bytes, win["bytes"]),
                    }
            assert win is not None
            winners[array] = win
        return winners

    def _inter_arrays(self, base: dict) -> List[dict]:
        """Per-lane shm_planes / plane_elements of inter-stage specs."""
        out = []
        for spec in self.inter_specs:
            consumer = self.stages[spec["consumer"]]
            halo = spec["halo"]
            plane = np.ones(base["n"], _I8)
            for axis in range(self.ndim):
                if self.streaming and axis == self.stream_axis:
                    continue
                exp_lo, exp_hi = consumer.expand[axis]
                h_lo, h_hi = halo[axis]
                plane = plane * (
                    base["tile"][axis] + (exp_lo + exp_hi + h_lo + h_hi)
                )
            if spec["shm"] == "const":
                shm = np.full(base["n"], spec["shm_const"], _I8)
            elif spec["shm"] == "depth0":
                exp_lo, exp_hi = consumer.expand[0]
                h_lo, h_hi = halo[0]
                shm = base["tile"][0] + (exp_lo + exp_hi + h_lo + h_hi)
            else:
                shm = np.zeros(base["n"], _I8)
            out.append({"spec": spec, "shm": shm, "plane": plane})
        return out

    def _register_demand(self, base: dict, winners: Dict[str, dict]) -> np.ndarray:
        reg_planes = np.zeros(base["n"], _I8)
        for array in self.buffer_arrays:
            reg_planes = reg_planes + winners[array]["reg"]
        reg_planes = reg_planes + self.inter_reg_planes
        demand = np.full(base["n"], BASE_REGISTERS + self.expr_regs, _I8)
        demand = demand + reg_planes * base["tunroll"]
        demand = demand + self.accumulators * base["tunroll"]
        demand = demand + self.prefetch_regs
        blocked_mask = (base["tunroll"] > 1) & base["ublocked"]
        if blocked_mask.any():
            live = np.zeros(base["n"], _F8)
            for entries in self.gmem_read_sets:
                stage_loads = np.zeros(base["n"], _F8)
                for instance, array in entries:
                    stage_loads = stage_loads + self._gmem_lpp(
                        base, instance, array
                    )
                live = np.maximum(live, stage_loads)
            extra = 2 * (base["tunroll"] - 1) + (
                live * base["tunroll"].astype(_F8) * 0.5
            ).astype(_I8)
            demand = demand + np.where(blocked_mask, extra, 0)
        return demand

    def _shmem(self, base: dict, winners: Dict[str, dict],
               inter_arrays: List[dict]) -> np.ndarray:
        total = np.zeros(base["n"], _I8)
        for array in self.buffer_arrays:
            win = winners[array]
            total = total + win["shm"] * win["plane"] * self.buffer_sizeof[array]
        for entry in inter_arrays:
            total = total + entry["shm"] * entry["plane"] * entry["spec"]["sizeof"]
        # intra-kernel staging (tiling._intra_staging_bytes)
        for info in self.stage_infos:
            stage = info.stage
            depth_axis = self.stream_axis if self.streaming else 0
            for array in stage.instance.arrays_written():
                halo = info.halos.get(array)
                if halo is None:
                    continue
                size = sizeof(
                    self.ir.array_map[array].dtype
                    if array in self.ir.array_map
                    else "double"
                )
                plane = np.ones(base["n"], _I8)
                for axis in range(self.ndim):
                    if axis == depth_axis:
                        continue
                    exp_lo, exp_hi = stage.expand[axis]
                    h_lo, h_hi = halo[axis]
                    plane = plane * (
                        base["tile"][axis] + (exp_lo + exp_hi + h_lo + h_hi)
                    )
                if self.streaming:
                    lo, hi = halo[self.stream_axis]
                    depth = np.full(base["n"], lo + hi + 1, _I8)
                else:
                    exp_lo, exp_hi = stage.expand[0]
                    h_lo, h_hi = halo[0]
                    depth = base["tile"][0] + (exp_lo + exp_hi + h_lo + h_hi)
                total = total + plane * depth * size
        return total

    def _live_bytes(self, base: dict, winners: Dict[str, dict]) -> np.ndarray:
        total = np.zeros(base["n"], _F8)
        first = self.stages[0]
        for array in first.instance.arrays_read():
            if array not in self.candidates:
                continue
            if self.buffered[array]:
                continue
            info = self.ir.array_map.get(array)
            arr_esize = sizeof(info.dtype) if info is not None else 8
            plane = winners[array]["plane"]
            total = total + (plane * arr_esize).astype(_F8)
        return total

    # ------------------------------------------------------------------
    # public lane APIs
    # ------------------------------------------------------------------

    def demand(self, plans: Sequence[KernelPlan]) -> np.ndarray:
        """Register demand per lane (== ``register_demand`` per plan)."""
        base = self._base(plans)
        winners = self._winners(base)
        return self._register_demand(base, winners)

    def price(
        self, plans: Sequence[KernelPlan], device: DeviceSpec = P100
    ) -> List[PricedLane]:
        """Price every lane; see :class:`PricedLane` for the contract."""
        global _PRICED_LANES
        if not plans:
            return []
        n = len(plans)
        _PRICED_LANES += n
        if _metrics_enabled():
            _obs_counter("pricing.family_calls").add()
            _obs_counter("pricing.lanes").add(n)
        with _span("price_family", lanes=n):
            return self._price(plans, device)

    def price_spill_free(
        self,
        plans: Sequence[KernelPlan],
        levels: Sequence[int],
        device: DeviceSpec = P100,
    ) -> Tuple[np.ndarray, np.ndarray, List[PricedLane]]:
        """Resolve the register ladder and price each chosen rung, in
        one pass over the family axis.

        The evaluation engine's spill-free escalation needs the register
        *demand* of every lane (to pick the first non-spilling rung) and
        then the price of each lane at its chosen rung.  Doing those as
        two separate calls rebuilds the per-lane geometry twice; here the
        base arrays are computed once, the rung is resolved vectorized,
        and the ``max_registers`` axis is overridden in the lane arrays
        before pricing — the plan objects are never copied.

        Returns ``(demands, positions, lanes)``: ``positions[i]`` is the
        index into ``levels`` of the first rung with ``demands[i] <=
        levels[positions[i]]`` (exactly ``levels.index(next(lv for lv in
        levels if demand <= lv))`` of the scalar path), or ``-1`` when
        every rung spills.  All-spill lanes are still priced (at their
        original cap) so indices stay aligned; callers discard them.
        """
        global _PRICED_LANES
        base = self._base(plans)
        winners = self._winners(base)
        demands = self._register_demand(base, winners)
        n = base["n"]
        positions = np.full(n, -1, dtype=_I8)
        resolved = base["maxreg"].copy()
        for j, lv in enumerate(levels):
            fresh = (positions < 0) & (demands <= lv)
            positions[fresh] = j
            resolved[fresh] = lv
        base = dict(base, maxreg=resolved)
        _PRICED_LANES += n
        if _metrics_enabled():
            _obs_counter("pricing.family_calls").add()
            _obs_counter("pricing.lanes").add(n)
        with _span("price_family", lanes=n):
            lanes = self._price(plans, device, base=base)
        return demands, positions, lanes

    def _price(
        self,
        plans: Sequence[KernelPlan],
        device: DeviceSpec,
        base: Optional[dict] = None,
    ) -> List[PricedLane]:
        if base is None:
            base = self._base(plans)
        n = base["n"]
        winners = self._winners(base)
        inter_arrays = self._inter_arrays(base)
        demand = self._register_demand(base, winners)
        compiled = np.minimum(demand, base["maxreg"])
        shmem = self._shmem(base, winners, inter_arrays)

        occ = self._occupancy_lanes(device, base["threads"], compiled, shmem)
        counters = self._counter_lanes(
            device, base, winners, demand, compiled, shmem, occ
        )
        timing = self._timing_lanes(device, base, counters, shmem, occ)

        lanes: List[PricedLane] = []
        limiter_names = ("threads", "blocks", "registers", "shmem")
        for i in range(n):
            lane_demand = int(demand[i])
            if occ["infeasible"][i]:
                message, context, code = self._scalar_reject(
                    device, int(base["threads"][i]), int(compiled[i]),
                    int(shmem[i]),
                )
                lanes.append(
                    PricedLane(
                        demand=lane_demand,
                        result=None,
                        occ_message=message,
                        occ_context=context,
                        occ_code=code,
                    )
                )
                continue
            occ_result = OccupancyResult(
                blocks_per_sm=int(occ["blocks_psm"][i]),
                active_warps=int(occ["warps"][i]),
                occupancy=float(occ["occ_frac"][i]),
                limiter=limiter_names[int(occ["limiter"][i])],
                warp_size=device.warp_size,
            )
            kc = KernelCounters(
                flops=float(counters["flops"][i]),
                useful_flops=counters["useful"],
                dram_read_bytes=float(counters["dram_read"][i]),
                dram_write_bytes=float(counters["dram_write"][i]),
                tex_bytes=float(counters["tex"][i]),
                shm_bytes=float(counters["shm"][i]),
                spill_bytes=float(counters["spill"][i]),
                blocks=int(base["blocks"][i]),
                threads_per_block=int(base["threads"][i]),
                regs_per_thread=int(compiled[i]),
                regs_demand=lane_demand,
                shmem_per_block=int(shmem[i]),
                syncs=float(counters["syncs"][i]),
            )
            tb = TimingBreakdown(
                compute_s=float(timing["compute"][i]),
                dram_s=float(timing["dram"][i]),
                tex_s=float(timing["tex"][i]),
                shm_s=float(timing["shm"][i]),
                sync_s=float(timing["sync"][i]),
                latency_s=float(timing["latency"][i]),
                launch_s=timing["launch"],
                bubble_s=float(timing["bubble"][i]),
            )
            lanes.append(
                PricedLane(
                    demand=lane_demand,
                    result=SimulationResult(
                        counters=kc, occupancy=occ_result, timing=tb
                    ),
                )
            )
        return lanes

    def _scalar_reject(
        self, device: DeviceSpec, threads: int, compiled: int, shmem: int
    ) -> Tuple[str, Dict[str, Any], str]:
        """Reproduce the scalar occupancy failure for one lane."""
        from ..lint.rules_plan import classify_occupancy_failure

        try:
            _scalar_occupancy(device, threads, compiled, shmem)
        except ValueError as exc:
            context = dict(getattr(exc, "context", None) or {})
            return str(exc), context, classify_occupancy_failure(exc)
        raise AssertionError(
            "vectorized occupancy flagged a lane the scalar model accepts"
        )  # pragma: no cover - parity guard

    # -- occupancy over lanes (mirrors occupancy.occupancy) --------------

    def _occupancy_lanes(
        self,
        device: DeviceSpec,
        threads: np.ndarray,
        compiled: np.ndarray,
        shmem: np.ndarray,
    ) -> dict:
        regs = np.maximum(compiled, 1)
        warp = device.warp_size
        warps_pb = -(-threads // warp)
        per_warp = regs * warp
        granularity = device.register_granularity
        per_warp = -(-per_warp // granularity) * granularity
        block_regs = warps_pb * per_warp

        lim_threads = device.max_threads_per_sm // np.maximum(threads, 1)
        lim_blocks = np.full(threads.shape, device.max_blocks_per_sm, _I8)
        lim_regs = np.where(
            block_regs > 0,
            device.registers_per_sm // np.maximum(block_regs, 1),
            device.max_blocks_per_sm,
        )
        big = np.iinfo(_I8).max
        lim_shm = np.where(
            shmem > 0,
            device.shared_mem_per_sm // np.maximum(shmem, 1),
            big,
        )
        limits = np.stack([lim_threads, lim_blocks, lim_regs, lim_shm])
        blocks_psm = limits.min(axis=0)
        limiter = limits.argmin(axis=0)  # first-min == dict-order min
        infeasible = (
            (threads < 1)
            | (threads > device.max_threads_per_block)
            | (shmem > device.shared_mem_per_block)
            | (regs > device.max_registers_per_thread)
            | (blocks_psm < 1)
        )
        limiter = np.where(
            (blocks_psm == device.max_blocks_per_sm) & (limiter != 1),
            1,
            limiter,
        )
        blocks_safe = np.where(infeasible, 1, blocks_psm)
        warps = np.minimum(blocks_safe * warps_pb, device.max_warps_per_sm)
        warps = np.where(infeasible, 1, warps)
        occ_frac = warps / device.max_warps_per_sm
        return {
            "infeasible": infeasible,
            "blocks_psm": blocks_psm,
            "blocks_safe": blocks_safe,
            "warps": warps,
            "occ_frac": occ_frac,
            "limiter": limiter,
        }

    # -- counters over lanes (mirrors simulator._count) ------------------

    def _counter_lanes(
        self,
        device: DeviceSpec,
        base: dict,
        winners: Dict[str, dict],
        demand: np.ndarray,
        compiled: np.ndarray,
        shmem: np.ndarray,
        occ: dict,
    ) -> dict:
        n = base["n"]
        blocks = base["blocks"]
        blocks_f = blocks.astype(_F8)

        active_blocks = np.maximum(1, occ["blocks_safe"] * device.sms)
        live = self._live_bytes(base, winners)
        working_set = active_blocks * np.maximum(live, 1.0)
        p_intra = np.minimum(1.0, device.l2_cache_bytes / working_set)
        p_inter = device.inter_block_l2_factor * p_intra

        flops_t: List[np.ndarray] = []
        tex_t: List[np.ndarray] = []
        dread_t: List[np.ndarray] = []
        dwrite_t: List[np.ndarray] = []
        shm_t: List[np.ndarray] = []
        useful = 0.0

        for sidx, info in enumerate(self.stage_infos):
            pts = self._pts(base, sidx)
            flops_t.append((info.flops_pp * pts * blocks).astype(_F8))
            useful += info.flops_pp * self.domain_points
            for item in info.reads:
                array = item["array"]
                esize = item["esize"]
                kind = item["kind"]
                if kind == "written_here":
                    shm_t.append(
                        (item["reads"] * pts * blocks * esize).astype(_F8)
                    )
                elif kind == "inter":
                    shm_t.append(
                        (item["served"] * pts * blocks * esize).astype(_F8)
                    )
                elif kind == "buffered":
                    footprint = self._footprint(base, sidx, array)
                    loads = footprint * blocks
                    coal = self._fill_coalescing(
                        base, item, device.dram_transaction_bytes
                    )
                    tex_t.append((loads * esize).astype(_F8) * coal)
                    fill = (loads * esize).astype(_F8)
                    dread_t.append(
                        _dram_read_vec(fill, fill, item["unique"],
                                       p_intra, p_inter)
                    )
                    shm_t.append(
                        self._buffered_shm(
                            base, winners[array], item, pts, blocks_f,
                            footprint, esize,
                        )
                    )
                else:  # gmem
                    per_point = self._gmem_lpp(base, item["instance"], array)
                    loads = per_point * pts.astype(_F8) * blocks_f
                    tex_t.append(loads * esize * item["gcoal"])
                    footprint = self._footprint(base, sidx, array)
                    p_touch = p_intra
                    if self.streaming:
                        p_touch = p_touch * device.stream_gmem_l2_capture
                    dread_t.append(
                        _dram_read_vec(
                            loads * esize,
                            (footprint * blocks * esize).astype(_F8),
                            item["unique"],
                            p_touch,
                            p_inter,
                        )
                    )
            for entry in info.stores:
                term = entry["writes"] * pts * blocks * entry["esize"]
                if entry["kind"] == "shm":
                    shm_t.append(term.astype(_F8))
                else:
                    dwrite_t.append(
                        np.full(
                            n,
                            float(
                                entry["writes"]
                                * self.domain_points
                                * entry["esize"]
                            ),
                            _F8,
                        )
                    )

        spilled = np.maximum(0, demand - compiled)
        total_points = np.zeros(n, _I8)
        for sidx in range(len(self.stages)):
            total_points = total_points + self._pts(base, sidx) * blocks
        spill = (
            spilled.astype(_F8)
            * device.spill_access_rate
            * 2
            * 8
            * total_points.astype(_F8)
        )
        tex_t.append(spill)

        per_step = 2.0 * len(self.stages)
        steps = self.sweep_length if self.streaming else 1
        syncs = np.where(shmem > 0, (per_step * steps) * blocks_f, 0.0)

        return {
            "flops": _acc(flops_t, n),
            "useful": useful,
            "tex": _acc(tex_t, n),
            "dram_read": _acc(dread_t, n),
            "dram_write": _acc(dwrite_t, n),
            "shm": _acc(shm_t, n),
            "spill": spill,
            "syncs": syncs,
            "p_intra": p_intra,
        }

    def _fill_coalescing(
        self, base: dict, item: dict, sector: int = 32
    ) -> np.ndarray:
        x_axis = self.ndim - 1
        row_elems = base["tile"][x_axis]
        lo, hi = item["halo_x"]
        row_bytes = (row_elems + (lo + hi)) * 8
        sectors = np.ceil(row_bytes.astype(_F8) / sector).astype(_I8)
        denom = np.maximum(
            1, np.ceil((row_elems * 8).astype(_F8) / sector).astype(_I8)
        )
        return (sectors + item["fill_extra"]) / denom

    def _buffered_shm(
        self,
        base: dict,
        win: dict,
        item: dict,
        pts: np.ndarray,
        blocks_f: np.ndarray,
        footprint: np.ndarray,
        esize: int,
    ) -> np.ndarray:
        n = base["n"]
        shm_planes = win["shm"]
        reg_planes = win["reg"]
        window = shm_planes + reg_planes
        # Pure register buffering (shm_planes == 0) is structural —
        # storage is uniform per array — but mask it anyway.
        zero_mask = shm_planes == 0
        window_safe = np.maximum(window, 1)
        fill_fraction = shm_planes / window_safe
        stores = footprint.astype(_F8) * fill_fraction * blocks_f
        if self.retime and self.streaming:
            reads = np.full(n, item["inplane"], _I8)
            rotation = np.zeros(n, _I8)
        elif self.streaming:
            reads = np.where(
                reg_planes > 0, item["center"], item["reads_distinct"]
            )
            rotation = np.where(reg_planes > 0, 2 * pts, 0)
        else:
            reads = np.full(n, item["reads_distinct"], _I8)
            rotation = np.zeros(n, _I8)
        loads = reads * pts
        blocks_i = base["blocks"]
        traffic = (stores + ((loads + rotation) * blocks_i).astype(_F8)) * esize
        return np.where(zero_mask, 0.0, traffic)

    # -- timing over lanes (mirrors simulator._time) ---------------------

    def _timing_lanes(
        self,
        device: DeviceSpec,
        base: dict,
        counters: dict,
        shmem: np.ndarray,
        occ: dict,
    ) -> dict:
        occ_frac = occ["occ_frac"]
        capacity = np.maximum(1, occ["blocks_safe"] * device.sms)
        concurrency = np.minimum(1.0, base["blocks"] / capacity)

        sustained = device.sustained_fraction
        eff_dram = sustained * np.minimum(
            1.0, occ_frac / device.dram_saturation_occupancy
        )
        eff_tex = device.tex_sustained_fraction * np.minimum(
            1.0, occ_frac / device.tex_saturation_occupancy
        )
        eff_shm = sustained * np.minimum(
            1.0, occ_frac / (device.dram_saturation_occupancy / 2)
        )
        eff_dram = eff_dram * concurrency
        eff_tex = eff_tex * concurrency
        eff_shm = eff_shm * concurrency

        dram_bytes = (
            counters["dram_read"] + counters["dram_write"]
        ) + counters["spill"]
        dram_s = dram_bytes / (
            (device.dram_bw_gbs * 1e9) * np.maximum(eff_dram, 1e-9)
        )
        tex_s = counters["tex"] / (
            (device.tex_bw_gbs * 1e9) * np.maximum(eff_tex, 1e-9)
        )
        shm_s = counters["shm"] / (
            (device.shm_bw_gbs * 1e9) * np.maximum(eff_shm, 1e-9)
        )
        compute_k = device.peak_gflops * 1e9 * sustained
        compute_s = counters["flops"] / (
            compute_k * np.maximum(concurrency, 1e-9)
        )

        thread_ops = counters["flops"] + 0.5 * (
            counters["shm"] / 8.0 + counters["tex"] / 8.0
        )
        warp_insts = thread_ops / device.warp_size
        covering = np.maximum(
            1.0, occ["warps"] * base["ilp"] / device.latency_cover_warps
        )
        stall = device.arith_latency_cycles / covering
        cycles = warp_insts * np.maximum(1.0, stall)
        rate = device.sms * device.warp_schedulers * device.clock_ghz * 1e9
        latency_s = cycles / (rate * np.maximum(concurrency, 1e-9))

        sync_s = np.where(
            counters["syncs"] != 0.0,
            counters["syncs"] / capacity * device.sync_cost_ns * 1e-9,
            0.0,
        )
        launch_s = device.launch_overhead_us * 1e-6

        if self.streaming and not self.prefetch:
            bubble_s = np.where(
                shmem > 0, 0.12 * np.maximum(tex_s, dram_s), 0.0
            )
        else:
            bubble_s = np.zeros(base["n"], _F8)

        return {
            "compute": compute_s,
            "dram": dram_s,
            "tex": tex_s,
            "shm": shm_s,
            "sync": sync_s,
            "latency": latency_s,
            "launch": launch_s,
            "bubble": bubble_s,
        }


# ---------------------------------------------------------------------------
# structural helpers
# ---------------------------------------------------------------------------


def _inter_shm_positive(spec: dict) -> bool:
    """Whether an inter-stage spec has ``shm_planes > 0`` — structural.

    Streaming specs carry constant plane counts; the non-streaming
    ``depth0`` shape is ``tile[0] + expand + halo >= 1`` for every lane.
    """
    if spec["shm"] == "const":
        return spec["shm_const"] > 0
    return spec["shm"] == "depth0"


def _consumer_read_counts(ir, instance, array, plan) -> Tuple[int, int]:
    from ..codegen.tiling import _consumer_read_counts as impl

    return impl(ir, instance, array, plan)


def _inplane_distinct_reads_const(ir, stage, array, stream_axis) -> int:
    from .simulator import _inplane_distinct_reads

    return _inplane_distinct_reads(ir, stage, array, stream_axis)


def _center_plane_reads_const(ir, plan, stage, array) -> int:
    from .simulator import _center_plane_reads

    return _center_plane_reads(ir, plan, stage, array)


def _gmem_coalescing_const(ir, instance, array) -> float:
    offsets = distinct_read_offsets(ir, instance, array)
    if not offsets:
        return 1.0
    x_axis = ir.ndim - 1
    misaligned = sum(
        1 for o in offsets if o[x_axis] not in (None, 0) and (o[x_axis] % 4) != 0
    )
    return 1.0 + 0.125 * (misaligned / len(offsets))


def _unique_bytes_const(ir, array, esize, plan) -> float:
    from .simulator import _unique_bytes

    return _unique_bytes(ir, array, esize, plan)


def _dram_read_vec(loaded, fill, unique_bytes, p_intra, p_inter):
    unique = np.minimum(unique_bytes, fill)
    inter_excess = np.maximum(0.0, fill - unique)
    intra_excess = np.maximum(0.0, loaded - fill)
    return (
        unique
        + inter_excess * (1.0 - p_inter)
        + intra_excess * (1.0 - p_intra)
    )


def _acc(terms: List[np.ndarray], n: int) -> np.ndarray:
    """Sequential f8 accumulation in scalar emission order."""
    total = np.zeros(n, _F8)
    for term in terms:
        total = total + term
    return total


# ---------------------------------------------------------------------------
# structure cache + public API
# ---------------------------------------------------------------------------


_STRUCT_CACHE: Dict[tuple, Tuple[ProgramIR, FamilyStructure]] = {}


def family_structure(ir: ProgramIR, plan: KernelPlan) -> FamilyStructure:
    """The (memoized) :class:`FamilyStructure` for a plan's family."""
    key = (id(ir), plan_structural_key(plan))
    hit = _STRUCT_CACHE.get(key)
    if hit is not None and hit[0] is ir:
        return hit[1]
    structure = FamilyStructure(ir, plan)
    _STRUCT_CACHE[key] = (ir, structure)
    return structure


def clear_structure_cache() -> None:
    _STRUCT_CACHE.clear()


def _expand_grid(family: KernelPlan, grid: Dict[str, Sequence]) -> List[KernelPlan]:
    for axis in grid:
        if axis not in GRID_AXES:
            raise UsageError(
                f"grid axis {axis!r} would change the plan family's "
                f"structure; sweepable axes are {GRID_AXES}"
            )
    axes = [axis for axis in GRID_AXES if axis in grid]
    plans: List[KernelPlan] = []
    for values in itertools.product(*(tuple(grid[a]) for a in axes)):
        plans.append(family.replace(**dict(zip(axes, values))))
    return plans


def price_family(
    ir: ProgramIR,
    family,
    grid: Optional[Dict[str, Sequence]] = None,
    device: DeviceSpec = P100,
) -> FamilyPricing:
    """Price a whole plan family in one vectorized shot.

    ``family`` is either a base :class:`KernelPlan` (combine with
    ``grid``, a mapping of :data:`GRID_AXES` names to value lists whose
    cross product is swept) or an explicit sequence of plans sharing one
    structural key.  Returns a :class:`FamilyPricing` whose ``lanes``
    bitwise-match a loop of scalar :func:`~repro.gpu.simulator.simulate`
    / :func:`~repro.gpu.simulator.plan_occupancy` calls and whose
    ``table`` is a structured array over the lane axis.
    """
    if isinstance(family, KernelPlan):
        plans = _expand_grid(family, grid or {})
        proto = family
    else:
        plans = list(family)
        if grid:
            raise UsageError("pass a grid with a base plan, not a plan list")
        if not plans:
            raise UsageError("price_family needs at least one plan")
        proto = plans[0]
    key = plan_structural_key(proto)
    for plan in plans:
        if plan_structural_key(plan) != key:
            raise UsageError(
                "price_family requires all lanes to share one structural "
                f"key; {plan.describe()!r} differs from the family's"
            )
    structure = family_structure(ir, proto)
    lanes = structure.price(plans, device)
    table = np.zeros(len(lanes), dtype=_TABLE_DTYPE)
    for i, lane in enumerate(lanes):
        row = table[i]
        row["feasible"] = lane.feasible
        row["reg_demand"] = lane.demand
        if lane.result is None:
            row["rejection"] = lane.occ_code or ""
            for field_name in (
                "occupancy", "flops", "dram_bytes", "tex_bytes",
                "shm_bytes", "spill_bytes", "time_s", "tflops",
            ):
                row[field_name] = math.nan
            continue
        result = lane.result
        row["regs_per_thread"] = result.counters.regs_per_thread
        row["blocks_per_sm"] = result.occupancy.blocks_per_sm
        row["occupancy"] = result.occupancy.occupancy
        row["flops"] = result.counters.flops
        row["dram_bytes"] = result.counters.dram_bytes
        row["tex_bytes"] = result.counters.tex_bytes
        row["shm_bytes"] = result.counters.shm_bytes
        row["spill_bytes"] = result.counters.spill_bytes
        row["time_s"] = result.time_s
        row["tflops"] = result.tflops
    return FamilyPricing(plans=tuple(plans), lanes=tuple(lanes), table=table)
