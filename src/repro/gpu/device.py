"""GPU device specifications.

The paper evaluates on an NVIDIA Pascal P100 and parameterizes its
profiling component with the device's theoretical peaks ("The user is
expected to provide these theoretical peak values for the GPU device to
ARTEMIS", Section IV).  The ratios the paper states for the P100 are
reproduced exactly: double-precision peak α = 4.7 TFLOPS and ridge
points α/β_dram = 6.42, α/β_tex = 2.35, α/β_shm = 0.49.

A device specification also carries the resource limits the occupancy
calculator and the resource-assignment algorithm need (shared memory per
SM/block, register file size, thread caps), plus the empirically derated
efficiency constants of the timing model (see :mod:`repro.gpu.simulator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU device for modeling purposes."""

    name: str
    sms: int
    #: double-precision peak, GFLOP/s (the paper's α)
    peak_gflops: float
    #: peak bandwidths, GB/s (the paper's β_M per memory level M)
    dram_bw_gbs: float
    tex_bw_gbs: float
    shm_bw_gbs: float
    #: resource limits
    shared_mem_per_sm: int
    shared_mem_per_block: int
    registers_per_sm: int
    max_registers_per_thread: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int = 32
    l2_cache_bytes: int = 4 * 1024 * 1024
    dram_transaction_bytes: int = 32
    #: register allocation granularity (registers are allocated per warp
    #: in multiples of this many registers)
    register_granularity: int = 256

    # -- empirical derates of the timing model --------------------------------
    # Real kernels do not reach theoretical rooflines; the paper's own
    # Table II/Figure 4 data implies sustained efficiency well below peak
    # (e.g. 7pt-smoother at OI_dram 0.97 measures ~0.28 TFLOPS where the
    # naive roofline predicts 0.71).  These constants derate each roof.
    #: occupancy at which DRAM bandwidth saturates
    dram_saturation_occupancy: float = 0.25
    #: occupancy at which the texture/L1 path saturates (a few warps per
    #: SM suffice) and the fraction of peak it sustains — the SW4
    #: kernels run near peak texture bandwidth at 12.5% occupancy
    tex_saturation_occupancy: float = 0.08
    tex_sustained_fraction: float = 0.92
    #: occupancy at which the compute pipes saturate (needs more warps)
    compute_saturation_occupancy: float = 0.5
    #: fraction of the theoretical roofline that tuned kernels sustain
    sustained_fraction: float = 0.62
    #: per-__syncthreads() cost in nanoseconds per block
    sync_cost_ns: float = 12.0
    #: kernel launch overhead in microseconds
    launch_overhead_us: float = 4.0
    #: core clock (GHz) and arithmetic pipe latency, for the issue-latency
    #: term of the timing model
    clock_ghz: float = 1.48
    arith_latency_cycles: float = 6.0
    #: L2 capture of re-touches when an array is read straight from
    #: global memory under streaming.  The paper observes (Section
    #: VIII-F) that "streaming ... results in poor L2 locality when
    #: shared memory is not used": the long pencil sweep keeps evicting
    #: re-touched planes.  This constant is the fraction of the normal
    #: L2 capture probability such reads retain; the working-set test
    #: (vs. L2 capacity) does the rest.
    stream_gmem_l2_capture: float = 0.65

    # -- ratios ---------------------------------------------------------------

    @property
    def ridge_dram(self) -> float:
        """α/β_dram: FLOPs per DRAM byte at the roofline ridge."""
        return self.peak_gflops / self.dram_bw_gbs

    @property
    def ridge_tex(self) -> float:
        return self.peak_gflops / self.tex_bw_gbs

    @property
    def ridge_shm(self) -> float:
        return self.peak_gflops / self.shm_bw_gbs

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def ridge(self, level: str) -> float:
        """Ridge point α/β for a memory level in {dram, tex, shm}."""
        return {
            "dram": self.ridge_dram,
            "tex": self.ridge_tex,
            "shm": self.ridge_shm,
        }[level]

    def bandwidth(self, level: str) -> float:
        return {
            "dram": self.dram_bw_gbs,
            "tex": self.tex_bw_gbs,
            "shm": self.shm_bw_gbs,
        }[level]

    def replace(self, **changes) -> "DeviceSpec":
        return replace(self, **changes)


#: NVIDIA Pascal P100 (the paper's evaluation platform).  Bandwidths are
#: derived from the ridge points the paper quotes: β_dram = 4700/6.42 ≈
#: 732 GB/s (matching the P100's HBM2), β_tex = 4700/2.35 = 2000 GB/s,
#: β_shm = 4700/0.49 ≈ 9592 GB/s.
P100 = DeviceSpec(
    name="P100",
    sms=56,
    peak_gflops=4700.0,
    dram_bw_gbs=4700.0 / 6.42,
    tex_bw_gbs=4700.0 / 2.35,
    shm_bw_gbs=4700.0 / 0.49,
    shared_mem_per_sm=64 * 1024,
    shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
)

#: NVIDIA Volta V100 — used by the retargeting example to show the model
#: is parametric in the device (ratios from the Volta microbenchmarking
#: study the paper cites [41]).
V100 = DeviceSpec(
    name="V100",
    sms=80,
    peak_gflops=7800.0,
    dram_bw_gbs=900.0,
    tex_bw_gbs=2700.0,
    shm_bw_gbs=13800.0,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_block=96 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    l2_cache_bytes=6 * 1024 * 1024,
)

#: Registry for lookup by name (used by examples and the CLI surface).
DEVICES: Dict[str, DeviceSpec] = {"P100": P100, "V100": V100}
