"""GPU device profiles and the device registry.

The paper evaluates on an NVIDIA Pascal P100 and parameterizes its
profiling component with the device's theoretical peaks ("The user is
expected to provide these theoretical peak values for the GPU device to
ARTEMIS", Section IV).  The ratios the paper states for the P100 are
reproduced exactly: double-precision peak α = 4.7 TFLOPS and ridge
points α/β_dram = 6.42, α/β_tex = 2.35, α/β_shm = 0.49.

A device profile carries everything the model needs to be retargeted:

* **resource limits** the occupancy calculator and the resource-
  assignment algorithm consume (shared memory per SM/block, register
  file size, thread caps, warp/wavefront width);
* **α/β bandwidth ratios** (peak compute and per-level bandwidths);
* **register/spill and latency model knobs** that were historically
  hard-coded P100 constants in :mod:`repro.gpu.simulator` — spill
  access rate, inter-block L2 capture, warp schedulers per SM, the
  latency-covering warp count and the DRAM transaction (sector) size;
* **empirical derates** of the timing model (saturation occupancies,
  sustained fractions, sync/launch overheads).

Profiles register themselves in :data:`DEVICES`; :func:`get_device`
resolves a (case-insensitive) name for the CLI and the examples, and
:func:`register_device` lets downstream code add its own profiles.  The
``DeviceProfile`` name is the public interface alias: every profile is a
frozen :class:`DeviceSpec`, so two profiles are interchangeable wherever
one is accepted, and a profile is hashable — the evaluation engine uses
the profile itself in its content-addressed memo keys, so the same plan
priced on two devices can never share a cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Tuple

from ..resilience.errors import UsageError


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a GPU device for modeling purposes."""

    name: str
    sms: int
    #: double-precision peak, GFLOP/s (the paper's α)
    peak_gflops: float
    #: peak bandwidths, GB/s (the paper's β_M per memory level M)
    dram_bw_gbs: float
    tex_bw_gbs: float
    shm_bw_gbs: float
    #: resource limits
    shared_mem_per_sm: int
    shared_mem_per_block: int
    registers_per_sm: int
    max_registers_per_thread: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int = 32
    l2_cache_bytes: int = 4 * 1024 * 1024
    dram_transaction_bytes: int = 32
    #: register allocation granularity (registers are allocated per warp
    #: in multiples of this many registers)
    register_granularity: int = 256

    # -- empirical derates of the timing model --------------------------------
    # Real kernels do not reach theoretical rooflines; the paper's own
    # Table II/Figure 4 data implies sustained efficiency well below peak
    # (e.g. 7pt-smoother at OI_dram 0.97 measures ~0.28 TFLOPS where the
    # naive roofline predicts 0.71).  These constants derate each roof.
    #: occupancy at which DRAM bandwidth saturates
    dram_saturation_occupancy: float = 0.25
    #: occupancy at which the texture/L1 path saturates (a few warps per
    #: SM suffice) and the fraction of peak it sustains — the SW4
    #: kernels run near peak texture bandwidth at 12.5% occupancy
    tex_saturation_occupancy: float = 0.08
    tex_sustained_fraction: float = 0.92
    #: occupancy at which the compute pipes saturate (needs more warps)
    compute_saturation_occupancy: float = 0.5
    #: fraction of the theoretical roofline that tuned kernels sustain
    sustained_fraction: float = 0.62
    #: per-__syncthreads() cost in nanoseconds per block
    sync_cost_ns: float = 12.0
    #: kernel launch overhead in microseconds
    launch_overhead_us: float = 4.0
    #: core clock (GHz) and arithmetic pipe latency, for the issue-latency
    #: term of the timing model
    clock_ghz: float = 1.48
    arith_latency_cycles: float = 6.0
    #: L2 capture of re-touches when an array is read straight from
    #: global memory under streaming.  The paper observes (Section
    #: VIII-F) that "streaming ... results in poor L2 locality when
    #: shared memory is not used": the long pencil sweep keeps evicting
    #: re-touched planes.  This constant is the fraction of the normal
    #: L2 capture probability such reads retain; the working-set test
    #: (vs. L2 capacity) does the rest.
    stream_gmem_l2_capture: float = 0.65

    # -- register/spill and latency model knobs -------------------------------
    #: spilled registers are stored and reloaded about this many times
    #: per computed point (local-memory traffic through the L1/tex path)
    spill_access_rate: float = 1.0
    #: L2 capture of cross-block halo reuse relative to same-block reuse
    inter_block_l2_factor: float = 0.5
    #: instruction issue slots per SM per cycle (warp schedulers)
    warp_schedulers: float = 2.0
    #: active warps (× ILP) needed per SM to fully hide arithmetic latency
    latency_cover_warps: float = 4.0
    #: vendor tag: "nvidia" | "amd" | "test" — informational (the model
    #: is vendor-agnostic; AMD semantics enter via wavefront width, LDS
    #: sizes and the knobs above)
    vendor: str = "nvidia"

    # -- ratios ---------------------------------------------------------------

    @property
    def ridge_dram(self) -> float:
        """α/β_dram: FLOPs per DRAM byte at the roofline ridge."""
        return self.peak_gflops / self.dram_bw_gbs

    @property
    def ridge_tex(self) -> float:
        return self.peak_gflops / self.tex_bw_gbs

    @property
    def ridge_shm(self) -> float:
        return self.peak_gflops / self.shm_bw_gbs

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def ridge(self, level: str) -> float:
        """Ridge point α/β for a memory level in {dram, tex, shm}."""
        return {
            "dram": self.ridge_dram,
            "tex": self.ridge_tex,
            "shm": self.ridge_shm,
        }[level]

    def bandwidth(self, level: str) -> float:
        return {
            "dram": self.dram_bw_gbs,
            "tex": self.tex_bw_gbs,
            "shm": self.shm_bw_gbs,
        }[level]

    def replace(self, **changes) -> "DeviceSpec":
        return replace(self, **changes)


#: The public interface name: any frozen :class:`DeviceSpec` is a device
#: profile.  Kept as an alias (not a subclass) so profiles stay plain
#: hashable value objects usable as memo-key components.
DeviceProfile = DeviceSpec


#: NVIDIA Pascal P100 (the paper's evaluation platform).  Bandwidths are
#: derived from the ridge points the paper quotes: β_dram = 4700/6.42 ≈
#: 732 GB/s (matching the P100's HBM2), β_tex = 4700/2.35 = 2000 GB/s,
#: β_shm = 4700/0.49 ≈ 9592 GB/s.
P100 = DeviceSpec(
    name="P100",
    sms=56,
    peak_gflops=4700.0,
    dram_bw_gbs=4700.0 / 6.42,
    tex_bw_gbs=4700.0 / 2.35,
    shm_bw_gbs=4700.0 / 0.49,
    shared_mem_per_sm=64 * 1024,
    shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
)

#: NVIDIA Volta V100 — used by the retargeting example to show the model
#: is parametric in the device (ratios from the Volta microbenchmarking
#: study the paper cites [41]).
V100 = DeviceSpec(
    name="V100",
    sms=80,
    peak_gflops=7800.0,
    dram_bw_gbs=900.0,
    tex_bw_gbs=2700.0,
    shm_bw_gbs=13800.0,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_block=96 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    l2_cache_bytes=6 * 1024 * 1024,
)

#: NVIDIA Ampere A100 (SXM, FP64 non-tensor peak): 108 SMs, 1.555 TB/s
#: HBM2e, 164 KiB configurable shared memory per SM (163 KiB usable per
#: block), a 40 MiB L2.  Texture/L1 and shared bandwidths follow the
#: published per-SM bytes/clock at the 1.41 GHz boost clock.
A100 = DeviceSpec(
    name="A100",
    sms=108,
    peak_gflops=9700.0,
    dram_bw_gbs=1555.0,
    tex_bw_gbs=4400.0,
    shm_bw_gbs=19400.0,
    shared_mem_per_sm=164 * 1024,
    shared_mem_per_block=163 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
    l2_cache_bytes=40 * 1024 * 1024,
    clock_ghz=1.41,
)

#: AMD CDNA-class profile (MI100-like): 120 compute units, 64-wide
#: wavefronts, 64 KiB LDS per CU (the whole LDS is addressable by one
#: workgroup), a 512 KiB-per-CU vector register file allocated in
#: 4-VGPR-per-lane blocks (256 registers per wavefront), and at most 40
#: waves / 16 workgroups resident per CU.  "Stencil Computations on AMD
#: and Nvidia Graphics Processors" (PAPERS.md) motivates the profile:
#: the tuning strategy shifts with wavefront width and LDS geometry,
#: which is exactly what this spec changes — the model arithmetic stays
#: vendor-agnostic.
MI100 = DeviceSpec(
    name="MI100",
    sms=120,
    peak_gflops=11500.0,
    dram_bw_gbs=1228.0,
    tex_bw_gbs=3500.0,
    shm_bw_gbs=23000.0,
    shared_mem_per_sm=64 * 1024,
    shared_mem_per_block=64 * 1024,
    registers_per_sm=131072,
    max_registers_per_thread=255,
    max_threads_per_sm=2560,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    warp_size=64,
    l2_cache_bytes=8 * 1024 * 1024,
    dram_transaction_bytes=64,
    register_granularity=256,
    clock_ghz=1.502,
    warp_schedulers=4.0,
    vendor="amd",
)

#: Deliberately tiny profile for fast tests: two SMs, a 256-thread block
#: cap (which shrinks the stage-1 block space), small register file and
#: L2.  Numbers are round so hand-computed expectations stay readable.
TOY = DeviceSpec(
    name="TOY",
    sms=2,
    peak_gflops=100.0,
    dram_bw_gbs=40.0,
    tex_bw_gbs=80.0,
    shm_bw_gbs=200.0,
    shared_mem_per_sm=16 * 1024,
    shared_mem_per_block=16 * 1024,
    registers_per_sm=16384,
    max_registers_per_thread=255,
    max_threads_per_sm=512,
    max_threads_per_block=256,
    max_blocks_per_sm=8,
    l2_cache_bytes=128 * 1024,
    clock_ghz=1.0,
    launch_overhead_us=1.0,
    vendor="test",
)


#: Registry for lookup by name (used by examples and the CLI surface).
#: Insertion order is presentation order (``repro devices``).
DEVICES: Dict[str, DeviceSpec] = {}


def register_device(spec: DeviceSpec, aliases: Iterable[str] = ()) -> DeviceSpec:
    """Add a profile to the registry (and optional lookup aliases).

    Re-registering the same name with an identical spec is a no-op;
    with a different spec it is a :class:`UsageError` — profiles are
    content-addressed into memo and journal keys, so silently changing
    what a name means would poison both.
    """
    for key in (spec.name, *aliases):
        existing = DEVICES.get(key)
        if existing is not None and existing != spec:
            raise UsageError(
                f"device {key!r} is already registered with a different "
                f"profile",
                device=key,
            )
        DEVICES[key] = spec
    return spec


def get_device(name: str) -> DeviceSpec:
    """Resolve a profile by (case-insensitive) name.

    Raises :class:`UsageError` (CLI exit code 2) for unknown names,
    listing what is available.
    """
    spec = DEVICES.get(name)
    if spec is not None:
        return spec
    folded = str(name).casefold()
    for key, value in DEVICES.items():
        if key.casefold() == folded:
            return value
    raise UsageError(
        f"unknown device {name!r}; available: {', '.join(device_names())}",
        device=name,
    )


def device_names() -> Tuple[str, ...]:
    """Canonical profile names, in registration order (aliases folded)."""
    seen = []
    for spec in DEVICES.values():
        if spec.name not in seen:
            seen.append(spec.name)
    return tuple(seen)


for _spec in (P100, V100, A100, MI100, TOY):
    register_device(_spec)
del _spec
