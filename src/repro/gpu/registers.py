"""Per-thread register demand estimation.

NVCC's allocator is not modeled instruction-by-instruction; instead the
estimate sums the structurally necessary register classes a generated
stencil kernel holds live:

* a base cost for thread/block indices and array base pointers;
* expression temporaries — scaling with the widest statement and the
  number of live scalar temporaries (the dominant cost for the paper's
  "complex" stencils, which is what makes them register-constrained);
* streaming window planes held in registers (Listing 2's
  ``in_reg_m1``/``in_reg_p1``), per unroll point;
* accumulators (one per output per unroll point; retiming widens this to
  the full stream window per output — that is the register/memory
  balance trade of Section III-B2);
* prefetch staging registers (Section III-A4).

Demand beyond ``maxrregcount`` spills to local memory; the simulator
charges the spill traffic.
"""

from __future__ import annotations

from typing import Dict

from ..codegen.plan import GMEM, KernelPlan
from ..codegen.tiling import (
    build_stages,
    buffer_requirements,
    intermediate_specs,
    stream_window,
)
from ..dsl.ast import array_accesses
from ..ir.analysis import access_summary
from ..ir.stencil import ProgramIR, StencilInstance

#: Fixed cost: threadIdx/blockIdx math, guards, base pointers, constants.
BASE_REGISTERS = 14

#: Cap on the expression-temporary estimate: beyond this the compiler
#: rematerializes rather than keeping everything live.  The cap sits
#: above the device's 255-register ceiling on purpose: kernels whose
#: demand exceeds it spill (the §VIII-D maxfuse case).
EXPR_TEMP_CAP = 320

#: Fraction of a kernel's distinct reads the allocator keeps live at
#: once: NVCC interleaves the sub-expressions of *all* statements, so
#: pressure grows with total statement volume, not just the widest one.
LIVE_READ_FRACTION = 0.45


def expression_registers(instance: StencilInstance) -> int:
    """Registers for live scalar temporaries and expression evaluation."""
    from ..ir.analysis import _memoized

    return _memoized(
        "expr_regs", instance, lambda: _expression_registers(instance)
    )


def _expression_registers(instance: StencilInstance) -> int:
    n_locals = len(instance.local_statements())
    widest = 0
    total_distinct = 0
    for stmt in instance.statements:
        distinct = {str(a) for a in array_accesses(stmt.rhs)}
        widest = max(widest, len(distinct))
        total_distinct += len(distinct)
    # The allocator keeps roughly half the widest statement's operands
    # live, or a fraction of the whole kernel's reads when the scheduler
    # interleaves many wide statements — whichever is larger — plus one
    # register per scalar temporary.
    pressure = max(widest // 2, int(LIVE_READ_FRACTION * total_distinct), 2)
    return min(n_locals + pressure, EXPR_TEMP_CAP)


def register_demand(ir: ProgramIR, plan: KernelPlan) -> int:
    """Estimated registers per thread for a plan, before capping.

    The estimate never reads ``plan.max_registers`` — demand is a
    property of the plan *family*, which is what lets the evaluation
    engine collapse the register-escalation ladder to a single
    simulation (the cap is applied afterwards by
    :func:`compiled_registers`).  Memoized per (IR, plan family).
    """
    from ..codegen.tiling import _plan_memoized

    return _plan_memoized(
        "reg_demand", ir, plan, lambda: _register_demand(ir, plan)
    )


def _register_demand(ir: ProgramIR, plan: KernelPlan) -> int:
    stages = build_stages(ir, plan)
    buffers = buffer_requirements(ir, plan)

    demand = BASE_REGISTERS
    demand += max(expression_registers(s.instance) for s in stages)

    # Unroll points computed by each thread on the tiled (non-stream) axes.
    unroll_points = plan.total_unroll()

    # Streaming window planes held in registers, per array, per unroll pt
    # — both external input windows and inter-stage value windows.
    reg_planes = sum(spec.reg_planes for spec in buffers.values())
    reg_planes += sum(spec.reg_planes for spec in intermediate_specs(ir, plan))
    demand += reg_planes * unroll_points

    # Accumulators: one per output array per unroll point.  Retiming
    # keeps a full stream-window of partial sums per output *per stage*
    # (every fused application is mid-flight simultaneously) — the
    # register/memory balance trade of Section III-B2.
    if plan.retime and plan.uses_streaming:
        accumulators = 0
        for stage in stages:
            window = 1
            for array in stage.instance.arrays_read():
                lo, hi = stream_window(ir, stage.instance, array, plan.stream_axis)
                window = max(window, lo + hi + 1)
            accumulators += len(stage.instance.arrays_written()) * window
        demand += accumulators * unroll_points
    else:
        outputs = set()
        for stage in stages:
            outputs.update(stage.instance.arrays_written())
        demand += len(outputs) * unroll_points

    # Prefetch staging registers: one per array fetched from global.
    if plan.prefetch:
        fetched = [
            name
            for name, spec in buffers.items()
            if spec.storage != GMEM or spec.reg_planes > 0
        ]
        demand += max(len(fetched), 1)

    # Blocked unrolling keeps neighbouring loads live for reuse.  For
    # buffered arrays that costs a couple of shuffle registers; for
    # *global-memory* arrays the merged load set of the whole unroll
    # group stays live in registers — this is exactly why "remedial loop
    # unrolling ... is impossible without incurring expensive spills"
    # for the register-constrained spatial stencils (Section VIII-C).
    if unroll_points > 1 and plan.unroll_blocked:
        demand += 2 * (unroll_points - 1)
        from ..codegen.tiling import gmem_loads_per_point

        live_loads = 0.0
        for stage in stages:
            stage_loads = 0.0
            for array in stage.instance.arrays_read():
                spec = buffers.get(array)
                if spec is None or (
                    spec.shm_planes == 0 and spec.reg_planes == 0
                ):
                    stage_loads += gmem_loads_per_point(
                        ir, plan, stage.instance, array
                    )
            live_loads = max(live_loads, stage_loads)
        demand += int(live_loads * unroll_points * 0.5)

    return demand


def compiled_registers(ir: ProgramIR, plan: KernelPlan) -> Dict[str, int]:
    """Demand and the post-cap register count ({'demand', 'compiled'})."""
    demand = register_demand(ir, plan)
    return {"demand": demand, "compiled": min(demand, plan.max_registers)}
