"""Live-observatory overhead: snapshot flush, merge, and exposition cost.

The live path (docs/observability.md, "Live metrics & `repro top`")
rides inside every distributed worker at ``flush_s`` cadence, so its
per-flush cost bounds the observability tax on a run.  This benchmark
prices the three moving parts against a realistically-sized registry —
build+atomic-write of one worker snapshot, the coordinator's N-way
merge, and one Prometheus text render — and demonstrates the
disabled-path contract: with metrics off, a full tuning run pays
nothing because the flusher is never even constructed.  Results land
in ``BENCH_obs_live.json``.
"""

import json
import os
import time

from repro.obs import MetricsRegistry, configure_metrics, metrics_enabled
from repro.obs.live import (
    build_snapshot,
    load_snapshots,
    merge_snapshots,
    write_snapshot,
)
from repro.obs.prom import prometheus_text
from repro.pipeline import optimize

from _cache import fmt, ir_of, print_table

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_obs_live.json")
WORKERS = 8
FLUSHES = 200

_results = {}


def _realistic_registry(worker=0):
    """A registry shaped like a worker's mid-run state."""
    registry = MetricsRegistry()
    registry.counter("eval.requests").add(5000 + worker)
    registry.counter("eval.hits").add(1200)
    registry.counter("eval.misses").add(3800)
    registry.counter("simulate.calls").add(2600)
    registry.counter("distrib.shards_claimed").add(40)
    registry.gauge("eval.inflight").set(8)
    wall = registry.histogram("eval.wall_s")
    for i in range(500):
        wall.observe(0.0001 * (i % 37 + 1))
    for tag in ("sf", "tf", "fission"):
        registry.counter(f"analysis.cache_miss.{tag}").add(90)
    return registry


def test_flush_and_merge_cost(tmp_path):
    (tmp_path / "obs").mkdir()
    registry = _realistic_registry()

    start = time.perf_counter()
    for seq in range(FLUSHES):
        snap = build_snapshot(0, registry=registry, seq=seq)
        write_snapshot(str(tmp_path / "obs" / "worker-00.metrics.json"), snap)
    flush_ms = (time.perf_counter() - start) / FLUSHES * 1e3

    for worker in range(WORKERS):
        snap = build_snapshot(worker, registry=_realistic_registry(worker))
        write_snapshot(
            str(tmp_path / "obs" / f"worker-{worker:02d}.metrics.json"), snap
        )
    start = time.perf_counter()
    merged = merge_snapshots(load_snapshots(str(tmp_path / "obs")))
    merge_ms = (time.perf_counter() - start) * 1e3
    snapshot = merged.snapshot()
    assert snapshot["eval.requests"]["value"] == sum(
        5000 + w for w in range(WORKERS)
    )

    start = time.perf_counter()
    for _ in range(FLUSHES):
        text = prometheus_text(merged)
    render_ms = (time.perf_counter() - start) / FLUSHES * 1e3
    assert "repro_eval_requests_total" in text

    # Generous ceilings: a flush at the default 0.5 s cadence must not
    # itself cost a meaningful slice of the interval, even on a noisy
    # CI machine.
    assert flush_ms < 50.0, f"snapshot flush too slow: {flush_ms:.2f} ms"
    assert merge_ms < 250.0, f"{WORKERS}-way merge too slow: {merge_ms:.2f} ms"
    assert render_ms < 50.0, f"exposition render too slow: {render_ms:.2f} ms"

    _results["per_op_ms"] = {
        "snapshot_flush": round(flush_ms, 4),
        "merge_8_workers": round(merge_ms, 4),
        "prometheus_render": round(render_ms, 4),
    }
    print_table(
        "live observatory per-operation cost",
        ["operation", "ms"],
        [
            ["snapshot build + atomic write", fmt(flush_ms)],
            [f"merge ({WORKERS} workers)", fmt(merge_ms)],
            ["prometheus text render", fmt(render_ms)],
        ],
    )


def test_disabled_path_is_free():
    # With metrics off no flusher thread exists, no snapshot is ever
    # built, and the only residue at each instrumentation site is the
    # single flag check — so a full tuning run with the live machinery
    # importable costs the same as one without.  Timed to report, not
    # to gate (CI wall clocks are noisy); the structural claim is the
    # assert on metrics_enabled().
    configure_metrics(False, reset=True)
    assert not metrics_enabled()
    ir = ir_of("7pt-smoother")
    optimize(ir, top_k=1)  # warm every memo cache first
    start = time.perf_counter()
    outcome = optimize(ir, top_k=1)
    off_wall = time.perf_counter() - start
    assert outcome.eval_stats is not None

    _results["disabled_run_wall_s"] = round(off_wall, 4)
    print_table(
        "disabled-path run (metrics off, live machinery loaded)",
        ["quantity", "value"],
        [["optimize() wall (s)", fmt(off_wall)], ["flusher threads", 0]],
    )


def test_write_bench_json():
    from repro.resilience import atomic_write_json

    assert {"per_op_ms", "disabled_run_wall_s"} <= set(_results)
    atomic_write_json(OUT_PATH, _results, indent=2, sort_keys=True)
