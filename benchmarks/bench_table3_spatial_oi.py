"""Table III — nvprof metrics and OI for the spatial stencils.

For the tuned global-memory version of every spatial benchmark, per
kernel: theoretical OI, FLOPs, DRAM bytes, OI_dram, texture bytes,
OI_tex.  The paper's headline: every global version is severely
bandwidth-bound at the texture cache (OI_tex far below the 2.35 ridge).
"""

import pytest

from repro.gpu import P100, simulate
from repro.ir import theoretical_oi
from repro.profiling import profile
from repro.suite import SPATIAL_BENCHMARKS
from repro.tuning import trivial_fission

from _cache import baseline, fmt, ir_of, print_table

#: Table III of the paper (per kernel rows).
PAPER = {
    "miniflux": [
        dict(oit=0.67, flop=3.53e9, bdram=6.5e9, oidram=0.54, btex=1.56e10,
             oitex=0.22),
        dict(oit=0.67, flop=9.77e8, bdram=6.92e9, oidram=0.14, btex=9.15e9,
             oitex=0.10),
    ],
    "hypterm": [
        dict(oit=3.44, flop=1.08e10, bdram=5.27e9, oidram=2.06,
             btex=3.58e10, oitex=0.30),
    ],
    "diffterm": [
        dict(oit=4.71, flop=3.28e9, bdram=3.73e9, oidram=0.87,
             btex=1.79e10, oitex=0.18),
        dict(oit=4.71, flop=9.02e9, bdram=6.75e9, oidram=1.33,
             btex=3.92e10, oitex=0.23),
    ],
    "addsgd4": [
        dict(oit=4.66, flop=9.37e9, bdram=4.48e9, oidram=2.08,
             btex=2.63e10, oitex=0.35),
    ],
    "addsgd6": [
        dict(oit=7.82, flop=1.67e10, bdram=5.32e9, oidram=3.13,
             btex=3.81e10, oitex=0.43),
    ],
    "rhs4center": [
        dict(oit=10.4, flop=1.93e10, bdram=3.39e9, oidram=5.69,
             btex=4.19e10, oitex=0.46),
    ],
    "rhs4sgcurv": [
        dict(oit=20.4, flop=2.44e10, bdram=4.65e9, oidram=5.26,
             btex=4.88e10, oitex=0.50),
        dict(oit=20.4, flop=2.47e10, bdram=5.81e9, oidram=4.25,
             btex=4.88e10, oitex=0.50),
        dict(oit=20.4, flop=1.99e10, bdram=4.82e9, oidram=4.14,
             btex=3.86e10, oitex=0.51),
    ],
}


def _program_for(name):
    """The per-kernel view matching the paper's rows: rhs4sgcurv appears
    as its trivial-fission kernels ('Each entry corresponds to a
    distinct kernel')."""
    ir = ir_of(name)
    if name == "rhs4sgcurv":
        return ir.replace(kernels=trivial_fission(ir, ir.kernels[0]))
    return ir


def test_table3_global_versions(benchmark):
    def regenerate():
        out = {}
        for name in SPATIAL_BENCHMARKS:
            result = baseline(name, "global")
            out[name] = result
        return out

    benchmark.pedantic(regenerate, rounds=1, iterations=1, warmup_rounds=0)

    rows = []
    tex_bound_everywhere = True
    for name in SPATIAL_BENCHMARKS:
        ir = _program_for(name)
        oit = theoretical_oi(ir)
        result = baseline(name, "global")
        # Per-kernel metrics: re-simulate each tuned per-kernel plan on
        # the per-kernel program view.
        from repro.baselines.naive import run_global

        per_kernel = run_global(ir)
        for index, plan in enumerate(per_kernel.schedule.plans):
            sim = simulate(ir, plan, P100)
            counters = sim.counters
            paper_rows = PAPER.get(name, [])
            paper = paper_rows[index] if index < len(paper_rows) else {}
            rows.append(
                [
                    name if index == 0 else "",
                    fmt(oit, 2) + "/" + fmt(paper.get("oit"), 2),
                    f"{counters.flops:.2e}",
                    f"{counters.dram_bytes:.2e}",
                    fmt(counters.oi("dram"), 2)
                    + "/"
                    + fmt(paper.get("oidram"), 2),
                    f"{counters.tex_bytes:.2e}",
                    fmt(counters.oi("tex"), 2)
                    + "/"
                    + fmt(paper.get("oitex"), 2),
                ]
            )
            if counters.oi("tex") >= P100.ridge_tex:
                tex_bound_everywhere = False
    print_table(
        "Table III: global versions of the spatial stencils "
        "(measured/paper)",
        ["bench", "OI_T", "FLOP", "B_dram", "OIdram", "B_tex", "OItex"],
        rows,
    )

    # Headline shape: every global kernel is texture-bandwidth-bound.
    assert tex_bound_everywhere
