"""Benchmark harness configuration.

Every module regenerates one of the paper's tables or figures and
prints the reproduced rows (paper value next to measured where the paper
states one).  ``pytest benchmarks/ --benchmark-only`` runs them all.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
